#!/usr/bin/env python3
"""A realistic four-enterprise process: insurance claim handling.

Ten activities across an insurer, a hospital, a fraud assessor, and a
bank — XOR triage, AND-split assessments, a re-filing loop, and strict
field-level confidentiality (the bank never sees the medical report;
nobody but the payments desk sees the bank account).  Runs under the
advanced model so the TFC monitoring records tell the business where
claims spend their time.

Run:  python examples/insurance_claim.py
"""

from repro import TfcServer, build_initial_document, build_world, verify_document
from repro.core import InMemoryRuntime, WorkflowMonitor
from repro.core.state import VariableView
from repro.model.render import to_ascii
from repro.workloads.insurance import (
    DESIGNER,
    PARTICIPANTS,
    insurance_definition,
    insurance_responders,
)

TFC = "tfc@cloud.example"


def main() -> None:
    definition = insurance_definition()
    definition.policy.require_timestamps = True
    print(to_ascii(definition))
    print()

    world = build_world(sorted({DESIGNER, *PARTICIPANTS.values(), TFC}))
    tfc = TfcServer(world.keypair(TFC), world.directory)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc)

    initial = build_initial_document(definition, world.keypair(DESIGNER))
    trace = runtime.run(initial, definition, insurance_responders(),
                        mode="advanced")

    print("execution path:")
    print("  " + " -> ".join(
        f"{s.activity_id}^{s.iteration}" for s in trace.steps
    ))
    report = verify_document(trace.final_document, world.directory,
                             tfc_identities={tfc.identity})
    print(f"final document: {trace.final_size} bytes, "
          f"{report.signatures_verified} signatures verified\n")

    # Confidentiality boundaries, demonstrated with real keys:
    bank = world.keypair(PARTICIPANTS["PAY"])
    bank_view = VariableView.for_reader(trace.final_document,
                                        bank.identity, bank.private_key)
    print(f"the bank can read     : {sorted(bank_view.raw)}")
    physician = world.keypair(PARTICIPANTS["MEDICAL"])
    med_view = VariableView.for_reader(trace.final_document,
                                       physician.identity,
                                       physician.private_key)
    print(f"the physician can read: {sorted(med_view.raw)}")
    assert "medical_report" not in bank_view
    assert "bank_account" not in med_view

    # Business monitoring from the TFC records:
    monitor = WorkflowMonitor(tfc=tfc)
    process_id = monitor.processes()[0]
    print("\nwhere the claim spent its time (handoff gaps):")
    for (activity_id, iteration), gap in \
            monitor.activity_gaps(process_id).items():
        print(f"  {activity_id}^{iteration}: {gap * 1000:.1f} ms")


if __name__ == "__main__":
    main()
