#!/usr/bin/env python3
"""The full Fig. 7 cloud deployment on the simulated substrate.

Builds a DRA4WfMS cloud — portal servers in front of a document pool
stored in the simulated HBase over replicated simulated HDFS — and runs
the Fig. 9B process through it exactly as the paper's numbered arrows
describe: search TO-DO list → retrieve → execute in the local AEA →
submit → TFC verifies/timestamps/stores → next participants notified.

Then it exercises the cloud-side features of §4.2: version history,
MapReduce statistics, replay rejection, rollback rejection, and
datanode-failure durability.

Run:  python examples/cloud_deployment.py
"""

from repro import build_initial_document, build_world, verify_document
from repro.cloud import CloudSystem, run_process_in_cloud
from repro.errors import PortalError, TamperDetected
from repro.workloads.figure9 import (
    DESIGNER,
    PARTICIPANTS,
    figure9_responders,
    figure_9b_definition,
)

TFC = "tfc@cloud.example"


def main() -> None:
    definition = figure_9b_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values(), TFC])

    system = CloudSystem(
        world.directory, world.keypair(TFC),
        portals=3, region_servers=2, datanodes=4,
    )
    print("cloud: 3 portals, 2 region servers, 4 datanodes "
          "(replication 3)\n")

    initial = build_initial_document(definition, world.keypair(DESIGNER))
    final = run_process_in_cloud(
        system, definition, initial, world.keypair(DESIGNER),
        world.keypairs, figure9_responders(1),
    )
    print(f"process {final.process_id[:8]}… completed: "
          f"{len(final.cers(include_definition=False))} CERs, "
          f"{final.size_bytes} bytes")
    verify_document(final, world.directory,
                    tfc_identities={system.tfc.identity})
    print(f"simulated cloud time: {system.clock.now():.3f} s; "
          f"notifications sent: {system.notifier.sent}")

    # --- §4.2 features ----------------------------------------------------
    history = system.pool.history(final.process_id)
    print(f"\npool keeps the full version history: "
          f"{len(history)} versions, "
          f"{history[0].size_bytes} -> {history[-1].size_bytes} bytes")

    stats, job = system.activity_statistics()
    print(f"MapReduce statistics over the pool: {stats} "
          f"({job.map_tasks} map tasks, "
          f"makespan {job.simulated_makespan_seconds:.4f}s)")

    # Replay: re-uploading the same initial document is rejected.
    client = system.client(world.keypair(DESIGNER))
    try:
        client.upload_initial(initial)
    except PortalError as exc:
        print(f"replayed initial document rejected: {str(exc)[:60]}…")

    # Rollback: storing a truncated (but validly signed!) document is
    # rejected by the pool's monotonicity guard.
    truncated = final.clone()
    cers = truncated.results_section.findall("CER")
    for node in cers[-2:]:
        truncated.results_section.remove(node)
    try:
        system.pool.store(truncated)
    except TamperDetected as exc:
        print(f"rollback attack rejected: {str(exc)[:60]}…")

    # Durability: kill a datanode AND a region server; every document
    # stays readable (block re-replication + WAL replay).
    system.hdfs.kill_node("dn0")
    replayed = system.hbase.kill_server("rs0")
    system.pool.latest(final.process_id)
    print(f"dn0 + rs0 killed: documents still readable, "
          f"{system.hdfs.stats['rereplications']} blocks re-replicated, "
          f"{replayed} WAL entries replayed, "
          f"{system.hdfs.under_replicated_blocks()} under-replicated")

    # Portal load spread (round-robin "load balancer").
    submissions = {p.portal_id: p.stats['submissions']
                   for p in system.portals}
    print(f"portal submissions: {submissions}")


if __name__ == "__main__":
    main()
