#!/usr/bin/env python3
"""Quickstart: a two-activity cross-enterprise workflow in ~60 lines.

Alice at ACME asks a question; Bob at MegaCorp answers it.  No server
executes anything — the DRA4WfMS *document* is the process instance,
and it protects itself: Alice's AEA signs her input, Bob's AEA verifies
the whole history before answering and countersigns, and any third
party can audit the final document offline.

Run:  python examples/quickstart.py
"""

from repro import (
    InMemoryRuntime,
    WorkflowBuilder,
    build_initial_document,
    build_world,
    covers_whole_document,
    nonrepudiation_scope,
    verify_document,
)
from repro.model import END


def main() -> None:
    # 1. The workflow designer models the process (and signs it later).
    workflow = (
        WorkflowBuilder("quickstart", designer="designer@acme.example")
        .activity("ask", "alice@acme.example",
                  name="Ask the question", responses=["question"])
        .activity("answer", "bob@megacorp.example",
                  name="Answer it", requests=["question"],
                  responses=["reply"])
        .transition("ask", "answer")
        .transition("answer", END)
        .build()
    )

    # 2. A PKI world: each enterprise gets its own CA; all mutually
    #    trusted for this workflow.
    world = build_world([
        "designer@acme.example",
        "alice@acme.example",
        "bob@megacorp.example",
    ])

    # 3. The designer creates and signs the initial document.
    initial = build_initial_document(
        workflow, world.keypair("designer@acme.example")
    )
    print(f"initial document: {initial.size_bytes} bytes, "
          f"process id {initial.process_id[:8]}…")

    # 4. Route it through the participants (the runtime is just a
    #    postman — it holds no authority).
    runtime = InMemoryRuntime(world.directory, world.keypairs)
    trace = runtime.run(initial, workflow, {
        "ask": {"question": "Can we ship the Q3 release this week?"},
        "answer": {"reply": "Yes - pending the security review."},
    })
    final = trace.final_document
    print(f"executed {len(trace.steps)} activities; final document "
          f"{final.size_bytes} bytes")

    # 5. Anyone with the PKI directory can audit the result offline.
    report = verify_document(final, world.directory)
    print(f"offline audit: {report.signatures_verified} signatures "
          f"verified, tampering: none")

    # 6. Nonrepudiation: Bob's signature transitively covers everything
    #    he saw — he cannot deny having received Alice's question.
    bob_cer = final.find_cer("answer", 0)
    scope = nonrepudiation_scope(final, bob_cer)
    print(f"Bob's nonrepudiation scope: "
          f"{[cer.cer_id for cer in scope]}")
    assert covers_whole_document(final, bob_cer)
    print("Bob's signature covers the entire document - "
          "repudiation is impossible.")


if __name__ == "__main__":
    main()
