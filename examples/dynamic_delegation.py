#!/usr/bin/env python3
"""Dynamic flow control and dynamic security policy at run time.

The paper lists among DRA4WfMS's features: "It can support dynamic flow
control and a dynamic security policy in its run-time environment."
This example exercises all three run-time amendment kinds on a live
Fig. 9A instance:

1. the approver **delegates** their activity to a deputy (and the
   original approver is afterwards *rejected* by every AEA);
2. the designer **inserts an ad-hoc audit activity** between C and D;
3. the submitter **grants a new reader** for future iterations of their
   field — without rewriting history.

Every amendment is itself a signed CER: ordered, tamper-evident, and
inside the nonrepudiation cascade.

Run:  python examples/dynamic_delegation.py
"""

from repro import build_initial_document, build_world, verify_document
from repro.core import ActivityExecutionAgent, render_trail
from repro.document.amendments import (
    AddActivity,
    DelegateActivity,
    GrantReader,
    effective_definition,
)
from repro.errors import AuthorizationError
from repro.model.activity import Activity, FieldSpec
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS, figure_9a_definition

DEPUTY = "deputy@megacorp.example"
AUDITOR = "auditor@regulator.example"


def main() -> None:
    definition = figure_9a_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values(), DEPUTY,
                         AUDITOR])

    def agent(identity: str) -> ActivityExecutionAgent:
        return ActivityExecutionAgent(world.keypair(identity),
                                      world.directory)

    document = build_initial_document(definition, world.keypair(DESIGNER))
    document = agent(PARTICIPANTS["A"]).execute_activity(
        document, "A", {"attachment": "grant application v1"}).document

    # -- 1. delegation -----------------------------------------------------
    document = agent(PARTICIPANTS["D"]).amend(
        document, DelegateActivity("D", DEPUTY, reason="annual leave"))
    effective = effective_definition(document)
    print(f"after delegation, activity D belongs to: "
          f"{effective.activity('D').participant}")

    # -- 2. ad-hoc activity (designer only) ---------------------------------
    document = agent(DESIGNER).amend(document, AddActivity(
        Activity("AUDIT", AUDITOR, requests=("summary",),
                 responses=(FieldSpec("audit_note"),),
                 name="Regulator spot check"),
        after="C", before="D", reason="regulator request",
    ))
    effective = effective_definition(document)
    print(f"control flow after C is now: "
          f"{effective.successors('C')} -> "
          f"{effective.successors('AUDIT')}")

    # -- 3. dynamic reader grant --------------------------------------------
    document = agent(PARTICIPANTS["A"]).amend(
        document, GrantReader("A", "attachment", AUDITOR,
                              reason="regulator needs the application"))

    # -- run the (amended) process to completion ------------------------------
    branch1 = agent(PARTICIPANTS["B1"]).execute_activity(
        document.clone(), "B1", {"review1": "adequate"}).document
    branch2 = agent(PARTICIPANTS["B2"]).execute_activity(
        document.clone(), "B2", {"review2": "plausible"}).document
    document = agent(PARTICIPANTS["C"]).execute_activity(
        branch1.merge(branch2), "C", {"summary": "both reviews positive"}
    ).document
    document = agent(AUDITOR).execute_activity(
        document, "AUDIT", {"audit_note": "no objection"}).document

    # The ORIGINAL approver is now rejected...
    try:
        agent(PARTICIPANTS["D"]).execute_activity(
            document, "D", {"decision": "accept"})
        raise SystemExit("BUG: pre-delegation approver accepted")
    except AuthorizationError as exc:
        print(f"original approver rejected: {str(exc)[:70]}…")

    # ...and the deputy finishes the process.
    result = agent(DEPUTY).execute_activity(
        document, "D", {"decision": "accept"})
    report = verify_document(result.document, world.directory)
    print(f"deputy approved; offline audit verified "
          f"{report.signatures_verified} signatures\n")

    print(render_trail(result.document))

    # The grant applies to FUTURE encryptions only — past ciphertexts
    # were never rewritten (the auditor cannot read iteration 0 of the
    # attachment, because it was sealed before the grant).
    field = result.document.find_cer("A", 0).encrypted_field("attachment")
    print(f"\nattachment^0 readers (sealed before the grant): "
          f"{field.recipients}")
    assert AUDITOR not in field.recipients


if __name__ == "__main__":
    main()
