#!/usr/bin/env python3
"""The paper's security argument, executed: attack all three systems.

Runs the same Fig. 9A purchase workflow on

* a centralized engine-based WfMS (Fig. 1A),
* a distributed engine-based WfMS (Fig. 1B), with and without SSL,
* DRA4WfMS,

then mounts the §1 threat catalogue against each: storage tampering by
a superuser, in-transit alteration and eavesdropping, replay, rollback,
and participant repudiation.  The printed matrix is the paper's claim:
engine-based systems cannot guarantee nonrepudiation; the
document-routing architecture detects or rebuts every attack.

Run:  python examples/attack_demo.py
"""

from repro import KeyPair, build_initial_document, build_world
from repro.baselines import CentralizedWfms, DistributedWfms
from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.core import InMemoryRuntime
from repro.security import AttackSuite
from repro.workloads.figure9 import (
    DESIGNER,
    PARTICIPANTS,
    figure9_responders,
    figure_9a_definition,
)


def main() -> None:
    definition = figure_9a_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values()])

    # Produce the DRA4WfMS artefact to attack.
    initial = build_initial_document(definition, world.keypair(DESIGNER))
    runtime = InMemoryRuntime(world.directory, world.keypairs)
    final = runtime.run(initial, definition,
                        figure9_responders(0)).final_document

    pool = DocumentPool(SimHBase(region_servers=1))
    pool.register_process(final.process_id)
    pool.store(final)

    # And the engine-based victims.
    centralized = CentralizedWfms(definition)
    process_id, _ = centralized.run(figure9_responders(0))

    outsider = KeyPair.generate("eve@evil.example")

    suite = AttackSuite.run(
        dra_document=final,
        directory=world.directory,
        outsider_identity=outsider.identity,
        outsider_private_key=outsider.private_key,
        centralized=centralized,
        centralized_process=process_id,
        repudiated_activity="D",
        distributed_plain=DistributedWfms(definition, engines=3,
                                          use_ssl=False),
        distributed_ssl=DistributedWfms(definition, engines=3,
                                        use_ssl=True),
        responders=figure9_responders(0),
        pool=pool,
    )

    print(f"{'system':28s} {'attack':30s} {'outcome':12s} detected")
    print("-" * 84)
    for outcome in suite.outcomes:
        verdict = "RESISTED" if outcome.secure else "COMPROMISED"
        print(f"{outcome.system:28s} {outcome.attack:30s} "
              f"{verdict:12s} {'yes' if outcome.detected else 'no'}")

    print()
    for outcome in suite.outcomes:
        if not outcome.secure:
            print(f"[{outcome.system}] {outcome.attack}: "
                  f"{outcome.detail[:90]}")

    print()
    print(f"DRA4WfMS resisted every attack:      "
          f"{suite.dra_all_secure()}")
    print(f"every engine baseline fell at least once: "
          f"{suite.baselines_all_vulnerable()}")


if __name__ == "__main__":
    main()
