#!/usr/bin/env python3
"""The Fig. 4 Chinese-wall scenario: conditional routing Tony can't see.

Peter inputs the engagement target X (for Amy's eyes only).  Tony
submits a proposal Y — but the workflow branches on Func(X), which Tony
is forbidden to evaluate, and Y must be encrypted for John *or* Mary
depending on that branch.  Tony can neither route nor encrypt.

The basic operational model therefore *refuses* this workflow (shown
first), and the advanced model solves it: Tony's AEA encrypts his raw
result to the TFC server, which evaluates the guard, re-encrypts Y for
exactly the right bank, timestamps, countersigns, and forwards.

Run:  python examples/chinese_wall.py
"""

from repro import TfcServer, build_initial_document, build_world
from repro.core import InMemoryRuntime
from repro.errors import PolicyError
from repro.workloads.chinese_wall import (
    DESIGNER,
    GUARD,
    PARTICIPANTS,
    chinese_wall_definition,
    chinese_wall_responders,
)

TFC = "tfc@cloud.example"


def main() -> None:
    definition = chinese_wall_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values(), TFC])
    print(f"routing guard (hidden from Tony): Func(X) := {GUARD!r}\n")

    # --- the basic model provably cannot run this policy ----------------
    initial = build_initial_document(definition, world.keypair(DESIGNER))
    basic_runtime = InMemoryRuntime(world.directory, world.keypairs)
    try:
        basic_runtime.run(initial.clone(), definition,
                          chinese_wall_responders(), mode="basic")
        raise SystemExit("BUG: the basic model should have refused")
    except PolicyError as exc:
        print(f"basic model refused (as §2.2 argues): {exc}\n")

    # --- the advanced model routes through the TFC server ----------------
    tfc = TfcServer(world.keypair(TFC), world.directory)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc)

    for target, label in [("bank-a-engagement", "Func(X) = True"),
                          ("other-engagement", "Func(X) = False")]:
        document = build_initial_document(definition,
                                          world.keypair(DESIGNER))
        trace = runtime.run(document, definition,
                            chinese_wall_responders(target),
                            mode="advanced")
        path = " -> ".join(step.activity_id for step in trace.steps)
        print(f"{label}: executed {path}")

        y_field = trace.final_document.find_cer("A2", 0, "tfc") \
            .encrypted_field("Y")
        readers = [r for r in y_field.recipients
                   if not r.startswith(("tfc", "tony"))]
        print(f"  Y (Tony's proposal) re-encrypted by TFC for: {readers}")

        x_field = trace.final_document.find_cer("A1", 0, "tfc") \
            .encrypted_field("X")
        print(f"  X readable by: {x_field.recipients} "
              f"(note: Tony is excluded)")
        assert PARTICIPANTS["A2"] not in x_field.recipients
        print()

    # Monitoring came for free: the TFC witnessed every finish time.
    from repro.core import WorkflowMonitor

    monitor = WorkflowMonitor(tfc=tfc)
    print("TFC monitoring records (activity @ witnessed time):")
    for process_id in monitor.processes():
        history = [
            f"{record.activity_id}@{record.timestamp:.2f}"
            for record in monitor.history(process_id)
        ]
        print(f"  {process_id[:8]}…: {', '.join(history)}")


if __name__ == "__main__":
    main()
