#!/usr/bin/env python3
"""The paper's Fig. 9A workflow as a cross-enterprise purchase review.

Five activities across three enterprises with every control-flow
pattern the paper evaluates: sequence, AND-split/AND-join (two parallel
reviews), and a loop (the approver sends insufficient applications back
to the submitter).  Prints the per-step measurements — the same rows
Table 1 of the paper reports — and demonstrates tamper detection on the
final document.

Run:  python examples/purchase_order.py
"""

from repro import build_initial_document, build_world, verify_document
from repro.core import InMemoryRuntime
from repro.errors import ReproError
from repro.workloads.figure9 import (
    DESIGNER,
    PARTICIPANTS,
    figure9_responders,
    figure_9a_definition,
)


def main() -> None:
    definition = figure_9a_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values()])

    print("participants:")
    for activity_id, identity in PARTICIPANTS.items():
        activity = definition.activity(activity_id)
        print(f"  {activity_id:3s} {activity.name:22s} -> {identity}")

    initial = build_initial_document(definition, world.keypair(DESIGNER))
    runtime = InMemoryRuntime(world.directory, world.keypairs)

    # One loop pass: the approver first rejects ("attachment is
    # insufficient"), then accepts — ten activity executions in total.
    trace = runtime.run(initial, definition, figure9_responders(1))

    print(f"\n{'step':10s} {'#sigs':>5s} {'alpha(s)':>9s} "
          f"{'beta(s)':>8s} {'size(B)':>8s}")
    print(f"{'initial':10s} {'-':>5s} {'-':>9s} {'-':>8s} "
          f"{initial.size_bytes:>8d}")
    for step in trace.steps:
        print(f"{step.label:10s} {step.signatures_verified:>5d} "
              f"{step.alpha:>9.4f} {step.beta:>8.4f} "
              f"{step.size_bytes:>8d}")

    final = trace.final_document
    report = verify_document(final, world.directory)
    print(f"\nfinal audit: {report.signatures_verified} signatures OK")

    # Now play the malicious cloud administrator: silently edit the
    # approver's stored decision...
    tampered = final.clone()
    node = tampered.root.find(
        ".//CER[@Id='cer-D-1']/ExecutionResult/EncryptedData/"
        "CipherData/CipherValue"
    )
    node.text = "QUJD" + (node.text or "")[4:]
    try:
        verify_document(tampered, world.directory)
        raise SystemExit("BUG: tampering went undetected")
    except ReproError as exc:
        print(f"tampered copy rejected: {type(exc).__name__}: "
              f"{str(exc)[:70]}…")

    # Confidentiality: the submitter cannot read the reviews, which the
    # policy routes only to the consolidator.
    from repro.core import VariableView

    submitter = world.keypair(PARTICIPANTS["A"])
    view = VariableView.for_reader(final, submitter.identity,
                                   submitter.private_key)
    print(f"submitter's readable variables: {sorted(view.raw)}")
    assert "review1" not in view


if __name__ == "__main__":
    main()
