#!/usr/bin/env python3
"""Closed-loop load test: 200 Figure-9B instances over one cloud.

The fleet fabric keeps 16 instances in flight at all times — every
completion immediately submits a replacement, the classic closed-loop
load-generation regime — until 200 instances have run end to end
through the shared portals, TFC notary, document pool and notification
fan-out.  Every hop performs the real cryptography (signature cascade
verification, CER signing); the queueing between hops is simulated
deterministically, so the printed report is byte-for-byte reproducible
for a given seed.

Along the way an auditor cold-verifies every 40th completed document's
full signature cascade, straight from the pool.

Run:  python examples/load_test.py
"""

from repro.core.monitor import WorkflowMonitor
from repro.fleet import ClosedLoop, FleetConfig, build_fleet, workload_from_spec

INSTANCES = 200
CONCURRENCY = 16
SEED = 42


def main() -> None:
    workload = workload_from_spec("fig9")
    config = FleetConfig(
        arrivals=ClosedLoop(instances=INSTANCES, concurrency=CONCURRENCY),
        seed=SEED,
        think_seconds=0.5,      # participants hesitate a little
        audit_every=40,
    )
    fleet = build_fleet(workload, config, portals=3)
    monitor = WorkflowMonitor(tfc=fleet.system.tfc, fleet=fleet)

    print(f"closed loop: {INSTANCES} Fig. 9B instances, "
          f"{CONCURRENCY} in flight, seed {SEED}\n")
    report = fleet.run()
    print(report.render())

    util = monitor.utilization()
    bottleneck = max(util, key=util.get)
    print(f"\nbottleneck station: {bottleneck} "
          f"at {util[bottleneck]:.0%} utilization")
    depths = monitor.queue_depths()[bottleneck]
    peak = max(depths, key=lambda point: point[1], default=(0.0, 0))
    print(f"its queue peaked at {peak[1]} waiting jobs "
          f"(t={peak[0]:.1f} sim-s)")

    assert report.instances_completed == INSTANCES
    assert report.audit_failures == 0
    print(f"\nall {INSTANCES} instances completed; "
          f"{report.instances_audited} audited cold with 0 failures")


if __name__ == "__main__":
    main()
