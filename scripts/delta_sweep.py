#!/usr/bin/env python
"""Payload-scaling sweep: full vs delta routing through the fleet CLI.

Runs the same seeded closed-loop fleet at several chain lengths in both
routing modes and fails (exit 1) if delta routing ever moves more bytes
than full routing — the CI guard against the delta path silently
regressing into negative savings (e.g. manifest overhead outgrowing the
chunk dedup on some workload shape).  Results land in
``BENCH_delta_sweep.json`` for the artifact upload.

Usage: PYTHONPATH=src python scripts/delta_sweep.py
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

# The sweep persists through the benchmark suite's single emitter, so
# root artifacts and benchmarks/results/ copies never drift apart.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent
                       / "benchmarks"))
from conftest import emit_bench  # noqa: E402

SPECS = ["chain:10:5", "chain:25:5", "chain:50:5"]
SEED = 7


def run_fleet(spec: str, delta: bool) -> dict:
    command = [
        sys.executable, "-m", "repro", "loadtest",
        "--workflow", spec, "--mode", "closed",
        "--instances", "2", "--concurrency", "2",
        "--seed", str(SEED), "--audit-every", "1", "--json",
    ]
    if delta:
        command.append("--delta")
    out = subprocess.run(command, check=True, capture_output=True,
                         text=True)
    return json.loads(out.stdout)


def main() -> int:
    sweep = {}
    failed = False
    for spec in SPECS:
        point = {}
        for mode in ("full", "delta"):
            report = run_fleet(spec, delta=(mode == "delta"))
            if report["audit_failures"]:
                print(f"FAIL {spec} [{mode}]: "
                      f"{report['audit_failures']} audit failures")
                failed = True
            point[mode] = {
                "bytes_on_wire": (report["bytes_to_cloud"]
                                  + report["bytes_from_cloud"]),
                "makespan_seconds": report["makespan_seconds"],
                "instances_completed": report["instances_completed"],
            }
        ratio = (point["delta"]["bytes_on_wire"]
                 / point["full"]["bytes_on_wire"])
        point["ratio"] = round(ratio, 4)
        sweep[spec] = point
        verdict = "ok" if ratio < 1.0 else "REGRESSION"
        print(f"{spec}: full {point['full']['bytes_on_wire']:,} B, "
              f"delta {point['delta']['bytes_on_wire']:,} B "
              f"(ratio {ratio:.4f}) {verdict}")
        if ratio >= 1.0:
            failed = True
    emit_bench("delta_sweep", sweep)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
