#!/usr/bin/env python
"""Aggregate every ``BENCH_*.json`` into one markdown trajectory table.

Each benchmark emitted through ``benchmarks/conftest.py::emit_bench``
carries a ``bench_meta`` provenance stamp (name, stamp schema version,
git SHA, cpu count).  This script sweeps the repo root (or ``--root``)
for BENCH files and renders one row per file, so a sequence of commits
— each re-running the benches — reads as a trajectory: which tree
produced which numbers on how many cores.

Legacy files written before the stamp existed are kept in the table
with ``-`` placeholders rather than skipped or failed on; the
checked-in seeds predate the stamp and must still aggregate cleanly
(CI runs this script on them).

Usage::

    python scripts/bench_trajectory.py                # table to stdout
    python scripts/bench_trajectory.py --out docs/BENCH_TRAJECTORY.md
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

COLUMNS = ("bench", "schema", "git sha", "cpus", "result keys")


def _row(path: pathlib.Path) -> list[str]:
    """One table row; never raises — unreadable files become a row too."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return [path.name, "-", "-", "-", "(unreadable)"]
    if not isinstance(payload, dict):
        return [path.name, "-", "-", "-", "(not an object)"]
    meta = payload.get("bench_meta")
    if not isinstance(meta, dict):
        meta = {}
    keys = sorted(k for k in payload if k != "bench_meta")
    shown = ", ".join(keys[:6]) + (", …" if len(keys) > 6 else "")
    return [
        str(meta.get("name") or path.stem.removeprefix("BENCH_")),
        str(meta.get("schema_version", "-")),
        str(meta.get("git_sha", "-")),
        str(meta.get("cpu_count", "-")),
        shown or "(empty)",
    ]


def render(root: pathlib.Path) -> str:
    """The markdown trajectory table for every BENCH file under *root*."""
    paths = sorted(root.glob("BENCH_*.json"))
    rows = [_row(path) for path in paths]
    lines = [
        "# Benchmark trajectory",
        "",
        f"{len(rows)} benchmark file(s) under `{root}`.",
        "",
        "| " + " | ".join(COLUMNS) + " |",
        "|" + "|".join(" --- " for _ in COLUMNS) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    if not rows:
        lines.append("| (none found) |" + " |" * (len(COLUMNS) - 1))
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=str(pathlib.Path(__file__).parent.parent),
        help="directory swept for BENCH_*.json (default: repo root)")
    parser.add_argument(
        "--out", default=None,
        help="also write the table to this file")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    table = render(root)
    print(table, end="")
    if args.out:
        pathlib.Path(args.out).write_text(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
