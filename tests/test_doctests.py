"""The package docstring's quick-tour example must actually run."""

from __future__ import annotations

import doctest

import repro


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 5
    assert results.failed == 0
