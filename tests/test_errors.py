"""Error hierarchy: one catchable base, sensible subtyping."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    value for value in vars(errors).values()
    if isinstance(value, type) and issubclass(value, Exception)
]


def test_everything_derives_from_repro_error():
    for cls in ALL_ERRORS:
        assert issubclass(cls, errors.ReproError), cls


@pytest.mark.parametrize("child,parent", [
    (errors.SignatureError, errors.CryptoError),
    (errors.DecryptionError, errors.CryptoError),
    (errors.CertificateError, errors.CryptoError),
    (errors.XmlSignatureError, errors.XmlSecError),
    (errors.XmlSignatureError, errors.SignatureError),
    (errors.XmlEncryptionError, errors.XmlSecError),
    (errors.CanonicalizationError, errors.XmlSecError),
    (errors.DefinitionError, errors.ModelError),
    (errors.ExpressionError, errors.ModelError),
    (errors.PolicyError, errors.ModelError),
    (errors.TamperDetected, errors.VerificationError),
    (errors.ReplayDetected, errors.VerificationError),
    (errors.VerificationError, errors.DocumentError),
    (errors.AuthorizationError, errors.RuntimeFault),
    (errors.JoinNotReady, errors.RoutingError),
    (errors.RegionError, errors.StorageError),
    (errors.StorageError, errors.CloudError),
    (errors.PortalError, errors.CloudError),
])
def test_hierarchy(child, parent):
    assert issubclass(child, parent)


def test_catching_the_base_catches_a_deep_leaf():
    with pytest.raises(errors.ReproError):
        raise errors.JoinNotReady("nested four levels down")


def test_xml_signature_error_catchable_as_crypto_error():
    # Cross-cutting: an XML signature failure IS a signature failure.
    with pytest.raises(errors.CryptoError):
        raise errors.XmlSignatureError("bad cascade")
