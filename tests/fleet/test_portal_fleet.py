"""Sharded portal tier through the fleet: stations, reports, real mode."""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    ClosedLoop,
    FleetConfig,
    RealFleetConfig,
    build_fleet,
    run_real_fleet,
    workload_from_spec,
)
from repro.fleet.fleet import TFC_IDENTITY
from repro.workloads.participants import build_world

SPEC = "chain:3:2"


def ring_fleet(instances: int = 8, portals: int = 2, seed: int = 11,
               **kwargs):
    workload = workload_from_spec(SPEC)
    config = FleetConfig(
        arrivals=ClosedLoop(instances=instances, concurrency=4),
        seed=seed, audit_every=4,
    )
    return build_fleet(workload, config, portals=portals,
                       placement="ring", **kwargs)


class TestRingStations:
    def test_one_station_per_portal(self):
        fleet = ring_fleet(portals=3)
        portal_stations = [name for name in fleet.stations
                           if name.startswith("portal")]
        assert sorted(portal_stations) == [
            "portal:portal0", "portal:portal1", "portal:portal2"]
        assert all(fleet.stations[name].workers == 1
                   for name in portal_stations)

    def test_round_robin_keeps_pooled_station(self):
        workload = workload_from_spec(SPEC)
        config = FleetConfig(
            arrivals=ClosedLoop(instances=4, concurrency=2), seed=1)
        fleet = build_fleet(workload, config, portals=3)
        assert "portal" in fleet.stations
        assert fleet.stations["portal"].workers == 3


class TestRingReport:
    def test_report_sections(self):
        report = ring_fleet().run()
        assert report.audit_failures == 0
        assert report.placement["scheme"] == "ring"
        assert sum(report.placement["portals"].values()) == 8
        assert set(report.storage) == {
            "region_splits", "region_moves", "memstore_flushes",
            "regions"}
        assert set(report.portal_utilization()) == {
            "portal0", "portal1"}
        payload = json.loads(report.to_json())
        assert payload["placement"]["scheme"] == "ring"
        assert "storage" in payload

    def test_round_robin_report_has_no_sharding_sections(self):
        # Golden safety: pre-sharding reports must serialise to the
        # exact same bytes, so the new sections are omitted, not empty.
        workload = workload_from_spec(SPEC)
        config = FleetConfig(
            arrivals=ClosedLoop(instances=4, concurrency=2), seed=1,
            audit_every=2)
        report = build_fleet(workload, config, portals=2).run()
        payload = json.loads(report.to_json())
        assert "placement" not in payload
        assert "storage" not in payload
        assert report.portal_utilization() == {}

    def test_ring_run_deterministic(self):
        assert ring_fleet().run().to_json() == ring_fleet().run().to_json()

    def test_every_instance_placed_once(self):
        fleet = ring_fleet(instances=10)
        report = fleet.run()
        assert sum(report.placement["portals"].values()) == 10
        served = {name for name, metrics in report.stations.items()
                  if name.startswith("portal:") and metrics.jobs > 0}
        busy_portals = {f"portal:{pid}" for pid, count
                        in report.placement["portals"].items()
                        if count > 0}
        assert served == busy_portals


class TestRingRealMode:
    @pytest.fixture(scope="class")
    def world(self):
        workload = workload_from_spec(SPEC)
        return build_world([*workload.identities, TFC_IDENTITY],
                           bits=1024)

    def test_worker_count_independent_with_placement(self, world):
        def run(workers):
            return run_real_fleet(
                RealFleetConfig(spec=SPEC, instances=4, seed=11,
                                workers=workers, audit_every=2,
                                placement="ring"),
                world=world,
            )
        solo, pooled = run(1), run(2)
        assert solo.deterministic_dict() == pooled.deterministic_dict()
        assert solo.audit_failures == 0
        assert sum(solo.portals.values()) == 4

    def test_round_robin_real_has_no_portals_dict(self, world):
        report = run_real_fleet(
            RealFleetConfig(spec=SPEC, instances=2, seed=11,
                            audit_every=0),
            world=world,
        )
        assert report.portals == {}
        assert "portals" not in report.deterministic_dict()

    def test_real_ring_with_replication(self, world):
        report = run_real_fleet(
            RealFleetConfig(spec=SPEC, instances=2, seed=3,
                            audit_every=1, placement="ring",
                            delta_routing=True, chunk_replicas=2),
            world=world,
        )
        assert report.audit_failures == 0
        assert report.routing == "delta"
        assert sum(report.portals.values()) == 2
