"""Fleet fabric behavior: open/closed loops, joins, audits, reports."""

from __future__ import annotations

import pytest

from repro.core.monitor import WorkflowMonitor
from repro.fleet import (
    ClosedLoop,
    CryptoCostModel,
    FleetConfig,
    OpenLoop,
    build_fleet,
    percentile,
    workload_from_spec,
)


@pytest.fixture(scope="module")
def fig9_report():
    """A small open-loop Figure-9 fleet, run once for the module."""
    fleet = build_fleet(
        workload_from_spec("fig9"),
        FleetConfig(arrivals=OpenLoop(instances=12, rate_per_second=4.0),
                    seed=11, audit_every=5),
    )
    return fleet, fleet.run()


@pytest.fixture(scope="module")
def closed_report():
    fleet = build_fleet(
        workload_from_spec("chain:3"),
        FleetConfig(arrivals=ClosedLoop(instances=9, concurrency=3),
                    seed=2, audit_every=4),
    )
    return fleet, fleet.run()


class TestOpenLoopRun:
    def test_all_instances_complete(self, fig9_report):
        _, report = fig9_report
        assert report.instances_started == 12
        assert report.instances_completed == 12

    def test_hops_match_workflow_shape(self, fig9_report):
        # fig9 advanced: A, B1, B2, C, D per instance
        _, report = fig9_report
        assert report.hops_executed == 12 * 5

    def test_and_join_retries_counted(self, fig9_report):
        # C is an AND-join of B1/B2: the first branch to finish parks.
        _, report = fig9_report
        assert report.join_retries == 12

    def test_audit_hook_re_verified_cold(self, fig9_report):
        _, report = fig9_report
        # every-5th sampling starting at the first completion: 1, 6, 11
        assert report.instances_audited == 3
        assert report.audit_failures == 0

    def test_throughput_and_latency_populated(self, fig9_report):
        _, report = fig9_report
        assert report.makespan_seconds > 0
        assert report.throughput_per_second > 0
        assert len(report.latencies) == 12
        assert 0 < report.latency_p50 <= report.latency_p95 \
            <= report.latency_p99 <= report.latency_max

    def test_station_roster_covers_components(self, fig9_report):
        _, report = fig9_report
        names = set(report.stations)
        assert {"portal", "pool", "notify", "tfc"} <= names
        assert any(n.startswith("aea:") for n in names)

    def test_every_hop_visits_portal_and_pool(self, fig9_report):
        _, report = fig9_report
        assert report.stations["portal"].jobs >= report.hops_executed
        assert report.stations["pool"].jobs >= report.hops_executed
        assert report.stations["tfc"].jobs == report.hops_executed

    def test_utilization_rollup(self, fig9_report):
        _, report = fig9_report
        util = report.utilization()
        assert "aea" in util
        assert not any(k.startswith("aea:") for k in util)
        assert all(0.0 <= v <= 1.0 for v in util.values())

    def test_documents_land_in_pool(self, fig9_report):
        fleet, _ = fig9_report
        assert len(fleet.system.pool.process_ids()) == 12

    def test_render_is_textual(self, fig9_report):
        _, report = fig9_report
        text = report.render()
        assert "fig9" in text and "throughput" in text

    def test_queue_depths_accessor(self, fig9_report):
        fleet, _ = fig9_report
        depths = fleet.queue_depths()
        assert set(depths) == set(fleet.stations)
        for series in depths.values():
            times = [t for t, _ in series]
            assert times == sorted(times)

    def test_monitor_surfaces_fleet_metrics(self, fig9_report):
        fleet, report = fig9_report
        monitor = WorkflowMonitor(tfc=fleet.system.tfc, fleet=fleet)
        assert monitor.utilization() == fleet.utilization()
        assert monitor.queue_depths() == fleet.queue_depths()
        # and the TFC witnessed every hop
        assert len(monitor.records) == report.hops_executed


class TestClosedLoopRun:
    def test_all_instances_complete(self, closed_report):
        _, report = closed_report
        assert report.instances_started == 9
        assert report.instances_completed == 9
        assert report.mode == "closed"

    def test_relaunch_keeps_concurrency(self, closed_report):
        # 9 instances at concurrency 3 → completions trigger relaunches,
        # so arrivals are spread over the run rather than all at t=0.
        fleet, report = closed_report
        arrivals = sorted(i.arrival for i in fleet.instances.values())
        assert arrivals[0] == arrivals[1] == arrivals[2]
        assert arrivals[3] > arrivals[2]

    def test_no_join_retries_in_a_chain(self, closed_report):
        _, report = closed_report
        assert report.join_retries == 0


class TestConfigValidation:
    def test_unknown_workload_spec(self):
        with pytest.raises(ValueError):
            workload_from_spec("ring:4")

    def test_chain_spec_requires_numeric_arg(self):
        with pytest.raises(ValueError):
            workload_from_spec("chain:x")

    def test_cost_model_rejects_negative(self):
        with pytest.raises(ValueError):
            CryptoCostModel(sign_seconds=-1.0)

    def test_cost_model_scales_with_signatures(self):
        costs = CryptoCostModel()
        assert costs.tfc_process(10, 1000) > costs.tfc_process(2, 1000)
        assert costs.aea_execute(5, 2000) > costs.aea_execute(5, 100)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_median_and_extremes(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile(samples, 0.5) == pytest.approx(50.0, abs=1.0)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
