"""True-parallel (``--real``) mode: determinism and sim-report stability.

Two guarantees anchor the multiprocess execution path:

1. **Worker-count independence.**  Each instance runs in its own
   per-instance cloud with a seed-derived process id, so the
   deterministic aggregates (hops, wire bytes, audits, merged
   simulated seconds) are identical whether one worker process runs
   all instances or several split them.  Only host measurements
   (wall seconds, cpu count) may differ.

2. **The simulated fleet is untouched.**  Real mode, batched
   verification and the chunker memoisation must not change a single
   byte of the discrete-event :class:`FleetReport` — pinned here
   against committed golden files from the run that introduced them.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.fleet import (
    ClosedLoop,
    FleetConfig,
    RealFleetConfig,
    build_fleet,
    run_real_fleet,
    workload_from_spec,
)
from repro.fleet.fleet import TFC_IDENTITY
from repro.workloads.participants import build_world

GOLDENS = pathlib.Path(__file__).parent / "goldens"

SPEC = "chain:3:2"
INSTANCES = 4


@pytest.fixture(scope="module")
def real_world():
    """One PKI world shared by every run under comparison (fresh key
    generation between runs would change nothing deterministic, but
    reusing the world is what the CLI's repeated benches do — and it
    makes the runs directly byte-comparable *and* fast)."""
    workload = workload_from_spec(SPEC)
    return build_world([*workload.identities, TFC_IDENTITY], bits=1024)


def run_real(workers: int, world, **overrides):
    config = RealFleetConfig(
        spec=SPEC, instances=INSTANCES, seed=11, workers=workers,
        audit_every=2, **overrides,
    )
    return run_real_fleet(config, world=world)


class TestWorkerCountIndependence:
    @pytest.fixture(scope="class")
    def serial_and_pooled(self, real_world):
        return run_real(1, real_world), run_real(3, real_world)

    def test_deterministic_aggregates_identical(self, serial_and_pooled):
        serial, pooled = serial_and_pooled
        assert serial.deterministic_dict() == pooled.deterministic_dict()
        # ... and byte-identical once serialised.
        assert (json.dumps(serial.deterministic_dict(), sort_keys=True)
                == json.dumps(pooled.deterministic_dict(), sort_keys=True))

    def test_expected_shape(self, serial_and_pooled):
        serial, _ = serial_and_pooled
        assert serial.instances == INSTANCES
        assert serial.hops_executed == INSTANCES * 3
        assert serial.instances_audited == 2  # indices 0 and 2
        assert serial.audit_failures == 0
        assert serial.bytes_to_cloud > 0
        assert serial.bytes_from_cloud > 0
        # Tagged simulated charges survived the process boundary.
        assert serial.sim_seconds.get("portal", 0.0) > 0.0
        assert serial.sim_seconds.get("notify", 0.0) > 0.0

    def test_host_measurements_reported_not_compared(self,
                                                     serial_and_pooled):
        serial, pooled = serial_and_pooled
        for report in (serial, pooled):
            assert report.wall_seconds > 0.0
            assert report.cpu_count >= 1
            assert len(report.host_seconds_per_instance) == INSTANCES
            assert report.throughput_per_wall_second > 0.0
        assert serial.workers == 1
        assert pooled.workers == 3

    def test_delta_routing_independent_too(self, real_world):
        serial = run_real(1, real_world, delta_routing=True)
        pooled = run_real(2, real_world, delta_routing=True)
        assert serial.deterministic_dict() == pooled.deterministic_dict()
        assert serial.routing == "delta"

    def test_batched_verification_same_aggregates(self, real_world,
                                                  serial_and_pooled):
        """Batched RSA verification changes no deterministic quantity."""
        serial, _ = serial_and_pooled
        batched = run_real(2, real_world, verify_workers=2,
                           verify_batch=True)
        assert batched.deterministic_dict() == serial.deterministic_dict()


class TestRealModeValidation:
    def test_zero_workers_rejected(self, real_world):
        with pytest.raises(ValueError):
            run_real(0, real_world)

    def test_empty_run(self, real_world):
        report = run_real_fleet(
            RealFleetConfig(spec=SPEC, instances=0, seed=1),
            world=real_world,
        )
        assert report.instances == 0
        assert report.hops_executed == 0
        assert report.throughput_per_wall_second == 0.0


class TestSimModeGoldens:
    """The event-driven fleet still reports byte-for-byte what it did
    before batching/memoisation/real mode existed."""

    def run_sim(self, delta: bool):
        fleet = build_fleet(
            workload_from_spec("chain:6:3"),
            FleetConfig(
                arrivals=ClosedLoop(instances=8, concurrency=3),
                seed=7, audit_every=2,
            ),
            delta_routing=delta,
        )
        return fleet.run()

    @pytest.mark.parametrize("routing", ["full", "delta"])
    def test_report_matches_golden(self, routing):
        golden = (GOLDENS / f"sim_chain6x3_seed7_{routing}.json").read_text()
        report = self.run_sim(delta=routing == "delta")
        assert json.loads(report.to_json()) == json.loads(golden)
        # Byte-level: canonical serialisation of both sides agrees.
        assert report.to_json() == json.dumps(
            json.loads(golden), sort_keys=True, separators=(",", ":"))
