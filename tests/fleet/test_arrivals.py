"""Open-loop and closed-loop arrival processes."""

from __future__ import annotations

import random

import pytest

from repro.fleet import ClosedLoop, OpenLoop, think_time


class TestOpenLoop:
    def test_arrival_times_are_increasing(self):
        times = OpenLoop(instances=100, rate_per_second=5.0) \
            .arrival_times(random.Random(1))
        assert times == sorted(times)
        assert len(times) == 100
        assert all(t > 0 for t in times)

    def test_same_seed_same_times(self):
        loop = OpenLoop(instances=50, rate_per_second=2.0)
        assert loop.arrival_times(random.Random(7)) == \
            loop.arrival_times(random.Random(7))

    def test_rate_scales_density(self):
        slow = OpenLoop(instances=200, rate_per_second=1.0) \
            .arrival_times(random.Random(3))
        fast = OpenLoop(instances=200, rate_per_second=10.0) \
            .arrival_times(random.Random(3))
        assert fast[-1] < slow[-1]

    def test_start_offset(self):
        times = OpenLoop(instances=5, rate_per_second=5.0) \
            .arrival_times(random.Random(0), start=100.0)
        assert all(t > 100.0 for t in times)

    def test_mode(self):
        assert OpenLoop(instances=1).mode == "open"

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoop(instances=0)
        with pytest.raises(ValueError):
            OpenLoop(instances=1, rate_per_second=0)


class TestClosedLoop:
    def test_initial_batch_caps_at_instances(self):
        assert ClosedLoop(instances=3, concurrency=8).initial_batch() == 3
        assert ClosedLoop(instances=100, concurrency=8).initial_batch() == 8

    def test_mode(self):
        assert ClosedLoop(instances=1).mode == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoop(instances=0)
        with pytest.raises(ValueError):
            ClosedLoop(instances=1, concurrency=0)


class TestThinkTime:
    def test_zero_mean_is_zero(self):
        assert think_time(random.Random(1), 0.0) == 0.0

    def test_positive_mean_positive_sample(self):
        assert think_time(random.Random(1), 2.0) > 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            think_time(random.Random(1), -1.0)

    def test_mean_roughly_matches(self):
        rng = random.Random(5)
        samples = [think_time(rng, 3.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.1)
