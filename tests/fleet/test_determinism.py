"""Same seed ⇒ byte-identical reports — the fleet's core guarantee.

Everything the fleet reports derives from simulated quantities:
process ids, document timestamps, crypto costs, network costs and the
arrival/think-time draws are all functions of the seed alone.  Two
runs with the same seed must therefore serialise to the same bytes;
two runs with different seeds must not.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetConfig,
    OpenLoop,
    build_fleet,
    workload_from_spec,
)


def run_once(seed: int, think: float = 0.0):
    fleet = build_fleet(
        workload_from_spec("fig9"),
        FleetConfig(arrivals=OpenLoop(instances=8, rate_per_second=6.0),
                    seed=seed, think_seconds=think, audit_every=4),
    )
    report = fleet.run()
    return fleet, report


class TestDeterminism:
    @pytest.fixture(scope="class")
    def twin_runs(self):
        return run_once(seed=13, think=0.5), run_once(seed=13, think=0.5)

    def test_reports_serialise_byte_identical(self, twin_runs):
        (_, a), (_, b) = twin_runs
        assert a.to_json() == b.to_json()

    def test_queue_series_identical(self, twin_runs):
        (fa, _), (fb, _) = twin_runs
        assert fa.queue_depths() == fb.queue_depths()

    def test_latency_samples_identical(self, twin_runs):
        (_, a), (_, b) = twin_runs
        assert a.latencies == b.latencies

    def test_process_ids_deterministic(self, twin_runs):
        (fa, _), (fb, _) = twin_runs
        assert sorted(fa.instances) == sorted(fb.instances)
        assert all(pid.startswith("fleet13-") for pid in fa.instances)

    def test_different_seed_different_report(self, twin_runs):
        (_, a), _ = twin_runs
        _, c = run_once(seed=14, think=0.5)
        assert a.to_json() != c.to_json()
        # but the workload shape is unchanged
        assert c.instances_completed == a.instances_completed
        assert c.hops_executed == a.hops_executed
