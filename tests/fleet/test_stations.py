"""FIFO multi-server station semantics."""

from __future__ import annotations

import pytest

from repro.fleet import Station


def test_idle_station_serves_immediately():
    station = Station("s", workers=1)
    assert station.submit(1.0, 0.5) == 1.5
    assert station.wait_seconds == 0.0


def test_busy_single_server_queues_fifo():
    station = Station("s", workers=1)
    assert station.submit(0.0, 1.0) == 1.0
    assert station.submit(0.0, 1.0) == 2.0
    assert station.submit(0.5, 1.0) == 3.0
    # jobs 2 and 3 waited 1.0 and 1.5 seconds respectively
    assert station.wait_seconds == pytest.approx(2.5)


def test_two_workers_serve_in_parallel():
    station = Station("s", workers=2)
    assert station.submit(0.0, 1.0) == 1.0
    assert station.submit(0.0, 1.0) == 1.0
    assert station.submit(0.0, 1.0) == 2.0
    assert station.wait_seconds == pytest.approx(1.0)


def test_zero_service_time_allowed():
    station = Station("s")
    assert station.submit(2.0, 0.0) == 2.0


def test_negative_service_time_rejected():
    with pytest.raises(ValueError):
        Station("s").submit(0.0, -0.1)


def test_zero_workers_rejected():
    with pytest.raises(ValueError):
        Station("s", workers=0)


def test_queue_depth_series_tracks_waiting_jobs():
    station = Station("s", workers=1)
    station.submit(0.0, 2.0)        # served at once
    station.submit(0.5, 1.0)        # waits 0.5 → 2.0
    station.submit(1.0, 1.0)        # waits 1.0 → 3.0
    series = station.queue_depth_series()
    assert series == [(0.5, 1), (1.0, 2), (2.0, 1), (3.0, 0)]


def test_metrics_utilization_and_mean_depth():
    station = Station("s", workers=1)
    station.submit(0.0, 2.0)
    station.submit(0.0, 2.0)
    m = station.metrics(horizon=4.0)
    assert m.utilization == pytest.approx(1.0)
    assert m.jobs == 2
    assert m.busy_seconds == pytest.approx(4.0)
    assert m.max_queue_depth == 1
    # one job waiting during [0, 2) over a 4-second horizon
    assert m.mean_queue_depth == pytest.approx(0.5)


def test_metrics_zero_horizon():
    m = Station("s").metrics(horizon=0.0)
    assert m.utilization == 0.0
    assert m.mean_queue_depth == 0.0


def test_metrics_to_dict_roundtrips_keys():
    station = Station("s", workers=3)
    station.submit(0.0, 1.0)
    d = station.metrics(horizon=2.0).to_dict()
    assert d["name"] == "s"
    assert d["workers"] == 3
    assert d["utilization"] == pytest.approx(1.0 / 6.0)
