"""Fleet runs under delta routing: determinism, accounting, the win.

Delta routing must not cost the fleet its core guarantee (same seed ⇒
byte-identical report), must keep the audit green (reassembled
documents still verify cold), and must actually reduce bytes on the
wire for revisit-heavy workloads — the acceptance bar of the routing
design.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    ClosedLoop,
    FleetConfig,
    build_fleet,
    workload_from_spec,
)


def run_once(spec: str, *, delta: bool, seed: int = 13, instances: int = 2):
    fleet = build_fleet(
        workload_from_spec(spec),
        FleetConfig(arrivals=ClosedLoop(instances=instances, concurrency=2),
                    seed=seed, audit_every=1),
        delta_routing=delta,
    )
    return fleet.run()


class TestDeltaDeterminism:
    @pytest.fixture(scope="class")
    def twin_reports(self):
        return (run_once("chain:8:3", delta=True),
                run_once("chain:8:3", delta=True))

    def test_same_seed_byte_identical(self, twin_reports):
        a, b = twin_reports
        assert a.to_json() == b.to_json()

    def test_report_declares_delta_routing(self, twin_reports):
        a, _ = twin_reports
        assert a.routing == "delta"
        assert a.chunk_store["unique_chunks"] > 0

    def test_audit_green(self, twin_reports):
        a, _ = twin_reports
        assert a.instances_completed == 2
        assert a.instances_audited == 2
        assert a.audit_failures == 0


class TestDeltaVsFull:
    @pytest.fixture(scope="class")
    def pair(self):
        return (run_once("chain:12:3", delta=False),
                run_once("chain:12:3", delta=True))

    def test_same_work_performed(self, pair):
        full, delta = pair
        assert delta.instances_completed == full.instances_completed
        assert delta.hops_executed == full.hops_executed
        assert full.routing == "full"

    def test_delta_moves_fewer_bytes(self, pair):
        full, delta = pair
        full_wire = full.bytes_to_cloud + full.bytes_from_cloud
        delta_wire = delta.bytes_to_cloud + delta.bytes_from_cloud
        assert delta_wire < full_wire / 2

    def test_chunk_store_dedups(self, pair):
        _, delta = pair
        stats = delta.chunk_store
        assert stats["dedup_hits"] > 0
        assert stats["unique_bytes"] < stats["logical_bytes"]

    def test_full_report_has_no_chunk_store(self, pair):
        full, _ = pair
        assert full.chunk_store == {}
        assert full.bytes_to_cloud > 0
