"""Observability integration: tracing the cloud + fleet end to end.

Four guarantees anchor the tracer's integration:

1. **Span-tree invariants.**  Parents strictly enclose children; the
   cursor is monotone; every charged microsecond is a leaf under some
   span — the exported Chrome trace passes structural validation.
2. **CostCapture agreement.**  Per-tag sim-time totals equal the
   corresponding capture sums *to the microsecond* — tracing is an
   observer of the charge stream, never a second bookkeeper.
3. **Determinism.**  Same seed ⇒ byte-identical exported trace, and
   worker-count-independent traces in real mode.
4. **Strict no-op when off.**  A traced run's report (minus the opt-in
   ``metrics`` section) is byte-identical to the untraced golden.
"""

from __future__ import annotations

import json
import pathlib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.simclock import SimClock
from repro.cloud.system import CloudSystem, run_process_in_cloud
from repro.document.builder import build_initial_document
from repro.document.vcache import VerificationCache
from repro.fleet import (
    ClosedLoop,
    FleetConfig,
    RealFleetConfig,
    build_fleet,
    run_real_fleet,
    workload_from_spec,
)
from repro.fleet.fleet import TFC_IDENTITY, Fleet
from repro.obs import (
    Tracer,
    capture_totals_us,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.workloads.generator import participant_pool
from repro.workloads.participants import build_world

GOLDENS = pathlib.Path(__file__).parent / "goldens"

#: The committed-golden fleet configuration (see test_real_mode.py).
GOLDEN_SPEC = "chain:6:3"


def golden_config(**extra) -> FleetConfig:
    return FleetConfig(arrivals=ClosedLoop(instances=8, concurrency=3),
                       seed=7, audit_every=2, **extra)


def run_traced(tracer: Tracer | None = None, **config_extra):
    fleet = build_fleet(workload_from_spec(GOLDEN_SPEC),
                        golden_config(tracer=tracer, **config_extra))
    return fleet, fleet.run()


class TestSpanTreeInvariants:
    def trace_fleet(self) -> Tracer:
        tracer = Tracer()
        run_traced(tracer)
        return tracer

    def test_parents_enclose_children(self):
        tracer = self.trace_fleet()
        events = sorted(
            [(s.seq_open, "open", s) for s in tracer.spans]
            + [(s.seq_close, "close", s) for s in tracer.spans],
            key=lambda item: item[0],
        )
        stack = []
        for _, kind, span in events:
            if kind == "open":
                if stack:
                    parent = stack[-1]
                    assert parent.start_us <= span.start_us
                    assert span.end_us <= parent.end_us
                stack.append(span)
            else:
                assert stack.pop() is span
        assert stack == []

    def test_leaves_account_for_every_cursor_tick(self):
        tracer = self.trace_fleet()
        assert sum(c.dur_us for c in tracer.charges
                   if c.phase == "X") == tracer.now_us
        assert sum(tracer.tag_totals().values()) == tracer.now_us
        assert sum(tracer.component_totals().values()) == tracer.now_us

    def test_exported_trace_validates_with_all_components(self):
        tracer = self.trace_fleet()
        payload = to_chrome_trace(tracer)
        counts = validate_chrome_trace(payload)
        assert counts["spans"] > 0 and counts["leaves"] > 0
        categories = {e["cat"] for e in payload["traceEvents"]
                      if e["ph"] in ("B", "X")}
        assert {"portal", "tfc", "hbase", "hdfs", "notify",
                "crypto", "fleet"} <= categories


class TestCostCaptureAgreement:
    def test_single_instance_capture_equals_tracer_exactly(self):
        """One full cloud process under one capture: the tracer's
        per-tag totals equal the capture's, to the microsecond."""
        workload = workload_from_spec("chain:3:2")
        world = build_world([*workload.identities, TFC_IDENTITY],
                            bits=1024)
        system = CloudSystem(world.directory,
                             world.keypair(TFC_IDENTITY),
                             backend=world.backend)
        tracer = Tracer()
        system.attach_tracer(tracer)
        designer = world.keypair(workload.designer)
        initial = build_initial_document(workload.definition, designer,
                                         backend=world.backend)
        keypairs = {identity: world.keypair(identity)
                    for identity in workload.identities}
        with system.clock.capture() as captured:
            run_process_in_cloud(system, workload.definition, initial,
                                 designer, keypairs,
                                 workload.responders)
        assert captured.charges  # the run actually charged something
        assert tracer.tag_totals() == capture_totals_us(captured)

    def test_fleet_totals_match_shadowed_charge_stream(self, monkeypatch):
        """Every charge the clock hands the tracer sums to what a
        shadow CostCapture of the same stream sums to."""
        tracer = Tracer()
        fleet = build_fleet(workload_from_spec(GOLDEN_SPEC),
                            golden_config(tracer=tracer))
        clock = fleet.clock
        shadow: list[tuple[str, float]] = []
        original = SimClock.advance

        def spy(seconds, component=None):
            if clock.tracer is not None:  # mirrors the tracing hook
                if clock._capture is not None:
                    shadow.append((component or "misc", seconds))
                elif component is not None:
                    shadow.append((component, seconds))
            return original(clock, seconds, component=component)

        monkeypatch.setattr(clock, "advance", spy)
        fleet.run()

        class _Shadow:
            charges = shadow

        expected = capture_totals_us(_Shadow())
        totals = tracer.tag_totals()
        # The tracer additionally carries the fleet's explicit crypto
        # leaves (names the clock never charges) — compare the shared
        # tags only.
        assert {tag: totals[tag] for tag in expected} == expected
        crypto_only = set(totals) - set(expected)
        assert crypto_only <= {"crypto.initial_sign",
                               "crypto.aea_execute",
                               "crypto.tfc_process"}


class TestDeterminism:
    def test_same_seed_byte_identical_export(self):
        def export() -> str:
            tracer = Tracer()
            run_traced(tracer)
            return json.dumps(to_chrome_trace(tracer), sort_keys=True,
                              separators=(",", ":"))

        assert export() == export()

    def test_real_mode_trace_worker_count_independent(self):
        workload = workload_from_spec("chain:3:2")
        world = build_world([*workload.identities, TFC_IDENTITY],
                            bits=1024)

        def export(workers: int) -> str:
            tracer = Tracer()
            run_real_fleet(
                RealFleetConfig(spec="chain:3:2", instances=2, seed=1,
                                workers=workers, audit_every=2),
                world=world, tracer=tracer)
            payload = to_chrome_trace(tracer)
            validate_chrome_trace(payload)
            return json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))

        assert export(1) == export(2)


class TestStrictNoOp:
    def test_traced_report_equals_golden_minus_metrics(self):
        """Tracing changes no reported byte: strip the opt-in metrics
        section and the traced report IS the committed golden."""
        golden = json.loads(
            (GOLDENS / "sim_chain6x3_seed7_full.json").read_text())
        _, report = run_traced(Tracer())
        traced = report.to_dict()
        assert traced.pop("metrics", None) is not None
        assert traced == golden

    def test_metrics_only_run_equals_golden_minus_metrics(self):
        golden = json.loads(
            (GOLDENS / "sim_chain6x3_seed7_full.json").read_text())
        fleet, report = run_traced(None, collect_metrics=True)
        snapshot = report.to_dict()
        metrics = snapshot.pop("metrics")
        assert snapshot == golden
        counters = metrics["counters"]
        assert counters["hops_total"] == golden["hops_executed"]
        assert counters["instances_completed_total"] == 8
        assert fleet.metrics is not None

    def test_untraced_run_is_byte_identical_to_golden(self):
        golden_text = (GOLDENS / "sim_chain6x3_seed7_full.json").read_text()
        _, report = run_traced(None)
        assert report.to_json() == json.dumps(
            json.loads(golden_text), sort_keys=True,
            separators=(",", ":"))


class TestTopologySweep:
    """Every executed hop of any chain/diamond shape yields exactly one
    portal submission span, attributed to its (instance, activity)."""

    _world = None

    @classmethod
    def world(cls):
        if cls._world is None:
            cls._world = build_world(
                ["designer@enterprise.example", *participant_pool(3),
                 TFC_IDENTITY],
                bits=1024)
        return cls._world

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kind=st.sampled_from(["chain", "diamond"]),
           activities=st.integers(min_value=2, max_value=5),
           participants=st.integers(min_value=1, max_value=3))
    def test_one_submit_span_per_hop(self, kind, activities,
                                     participants):
        workload = workload_from_spec(
            f"{kind}:{activities}:{participants}")
        world = self.world()
        system = CloudSystem(world.directory,
                             world.keypair(TFC_IDENTITY),
                             backend=world.backend,
                             verify_cache=VerificationCache())
        tracer = Tracer()
        fleet = Fleet(system, workload, world.keypairs,
                      FleetConfig(
                          arrivals=ClosedLoop(instances=2, concurrency=2),
                          seed=3, audit_every=0, tracer=tracer))
        report = fleet.run()
        submits: dict[tuple[str, str], int] = {}
        for span in tracer.spans:
            if span.name in ("portal.submit", "portal.submit_delta"):
                key = (span.instance, span.hop)
                submits[key] = submits.get(key, 0) + 1
        assert sum(submits.values()) == report.hops_executed
        assert set(submits.values()) == {1}
        # Every hop span carries instance + activity attribution.
        assert all(instance and hop for instance, hop in submits)
        uploads = [s for s in tracer.spans
                   if s.name == "portal.upload_initial"]
        assert len(uploads) == 2  # one launch per instance
