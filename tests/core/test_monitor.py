"""Workflow monitoring from TFC records and documents."""

from __future__ import annotations

import pytest

from repro.core.monitor import WorkflowMonitor
from repro.core.tfc import TfcRecord


@pytest.fixture()
def monitor(fig9b_run):
    _, tfc = fig9b_run
    return WorkflowMonitor(tfc=tfc)


class TestMonitor:
    def test_requires_a_source(self):
        with pytest.raises(ValueError):
            WorkflowMonitor()

    def test_processes(self, monitor, fig9b_run):
        trace, _ = fig9b_run
        assert monitor.processes() == [trace.process_id]

    def test_history_ordered(self, monitor, fig9b_run):
        trace, _ = fig9b_run
        history = monitor.history(trace.process_id)
        assert [(r.activity_id, r.iteration) for r in history] == [
            ("A", 0), ("B1", 0), ("B2", 0), ("C", 0), ("D", 0),
            ("A", 1), ("B1", 1), ("B2", 1), ("C", 1), ("D", 1),
        ]

    def test_status(self, monitor, fig9b_run, fig9b):
        trace, _ = fig9b_run
        status = monitor.status(trace.process_id, fig9b)
        assert status is not None
        assert status.finished
        assert status.executions == 10

    def test_status_unknown_process(self, monitor):
        assert monitor.status("no-such-process") is None

    def test_activity_gaps(self, monitor, fig9b_run):
        trace, _ = fig9b_run
        gaps = monitor.activity_gaps(trace.process_id)
        # Every step after the first has a gap, and gaps are >= 0.
        assert len(gaps) == 9
        assert all(gap >= 0 for gap in gaps.values())

    def test_statistics(self, monitor):
        stats = monitor.statistics()
        assert set(stats) == {"A", "B1", "B2", "C", "D"}
        assert stats["A"].executions == 2
        assert stats["A"].participants == ("submitter@acme.example",)
        assert stats["B1"].mean_gap_seconds is not None

    def test_status_of_document(self, fig9a_trace, fig9a):
        status = WorkflowMonitor.status_of(fig9a_trace.final_document,
                                           fig9a)
        assert status.finished


class TestVerificationCacheStats:
    def test_no_cache_attached(self, monitor):
        assert monitor.verification_cache_stats() is None

    def test_stats_from_incremental_tfc(self, world, fig9b, backend):
        from repro.core import InMemoryRuntime, TfcServer
        from repro.document import build_initial_document
        from repro.document.vcache import VerificationCache
        from repro.workloads.figure9 import DESIGNER, figure9_responders

        cache = VerificationCache()
        tfc = TfcServer(world.keypair("tfc@cloud.example"), world.directory,
                        backend=backend, verify_cache=cache)
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc,
                                  backend=backend)
        runtime.run(initial, fig9b, figure9_responders(1), mode="advanced")

        # The monitor picks the cache up from the TFC automatically.
        monitor = WorkflowMonitor(tfc=tfc)
        stats = monitor.verification_cache_stats()
        assert stats is not None
        # From the second hop on, the TFC answered the unchanged
        # cascade prefix from its cache.
        assert stats["hits"] > 0
        assert stats["stores"] > 0
        assert stats["invalidations"] == 0
        assert 0.0 < stats["hit_rate"] <= 1.0

    def test_explicit_cache_wins(self, fig9b_run):
        from repro.document.vcache import VerificationCache

        _, tfc = fig9b_run
        cache = VerificationCache()
        monitor = WorkflowMonitor(tfc=tfc, verify_cache=cache)
        assert monitor.verification_cache_stats() == cache.stats.snapshot()


class TestRecordListMonitor:
    def test_from_raw_records(self):
        records = [
            TfcRecord("p1", "A", 0, "alice@x", 1.0),
            TfcRecord("p1", "B", 0, "bob@x", 3.5),
            TfcRecord("p2", "A", 0, "alice@x", 4.0),
        ]
        monitor = WorkflowMonitor(records=records)
        assert monitor.processes() == ["p1", "p2"]
        assert monitor.activity_gaps("p1") == {("B", 0): 2.5}
        stats = monitor.statistics()
        assert stats["A"].executions == 2
        assert stats["A"].mean_gap_seconds is None
        assert monitor.status("p1") is None  # no TFC, no documents


class TestDurations:
    def test_process_duration(self, monitor, fig9b_run):
        trace, tfc = fig9b_run
        duration = monitor.process_duration(trace.process_id)
        records = tfc.records
        assert duration == pytest.approx(
            records[-1].timestamp - records[0].timestamp
        )
        assert duration >= 0

    def test_duration_needs_two_records(self):
        monitor = WorkflowMonitor(records=[
            TfcRecord("p1", "A", 0, "a@x", 5.0),
        ])
        assert monitor.process_duration("p1") is None
        assert monitor.process_duration("ghost") is None

    def test_slowest_handoff(self):
        monitor = WorkflowMonitor(records=[
            TfcRecord("p1", "A", 0, "a@x", 0.0),
            TfcRecord("p1", "B", 0, "b@x", 1.0),
            TfcRecord("p1", "C", 0, "c@x", 9.0),
            TfcRecord("p1", "D", 0, "d@x", 9.5),
        ])
        key, gap = monitor.slowest_handoff("p1")
        assert key == ("C", 0)
        assert gap == 8.0

    def test_slowest_handoff_empty(self):
        monitor = WorkflowMonitor(records=[])
        assert monitor.slowest_handoff("p1") is None
