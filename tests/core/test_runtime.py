"""Full process execution traces — the paper's Table 1/2 invariants."""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import build_initial_document, verify_document
from repro.errors import RuntimeFault
from repro.workloads.figure9 import DESIGNER, figure9_responders


class TestBasicModelTrace:
    """The exact shape the paper's Table 1 reports."""

    def test_ten_steps(self, fig9a_trace):
        assert len(fig9a_trace.steps) == 10

    def test_execution_order(self, fig9a_trace):
        assert [s.activity_id for s in fig9a_trace.steps] == \
            ["A", "B1", "B2", "C", "D"] * 2

    def test_signature_counts_match_paper_table1(self, fig9a_trace):
        # Paper Table 1, "Number of signatures to verify" column.
        assert [s.signatures_verified for s in fig9a_trace.steps] == \
            [1, 2, 2, 4, 5, 6, 7, 7, 9, 10]

    def test_cer_counts_match_paper_table1(self, fig9a_trace):
        # Paper Table 1, "Number of CERs" column.
        assert [s.num_cers for s in fig9a_trace.steps] == \
            [1, 2, 2, 4, 5, 6, 7, 7, 9, 10]

    def test_document_grows_monotonically(self, fig9a_trace):
        sizes = [fig9a_trace.initial_size] + \
            [s.size_bytes for s in fig9a_trace.steps]
        # B2 runs on a sibling branch of B1 (same base size), so compare
        # against the running maximum of its own branch lineage instead
        # of strict monotonicity.
        assert sizes[-1] == max(sizes)
        assert sizes[-1] > 3 * sizes[0]

    def test_final_document_verifies(self, fig9a_trace, world, backend):
        report = verify_document(fig9a_trace.final_document,
                                 world.directory, backend)
        assert report.signatures_verified == 11

    def test_totals(self, fig9a_trace):
        assert fig9a_trace.total_alpha > 0
        assert fig9a_trace.total_beta > 0
        assert fig9a_trace.final_size == \
            fig9a_trace.steps[-1].size_bytes

    def test_labels(self, fig9a_trace):
        assert fig9a_trace.steps[0].label == "X''_A^0"
        assert fig9a_trace.steps[-1].label == "X''_D^1"


class TestAdvancedModelTrace:
    """The shape of the paper's Table 2."""

    def test_ten_steps_with_gamma(self, fig9b_run):
        trace, _ = fig9b_run
        assert len(trace.steps) == 10
        assert all(s.gamma is not None and s.gamma > 0
                   for s in trace.steps)

    def test_cer_counts_match_paper_table2_final(self, fig9b_run):
        # Each completed step adds one intermediate + one TFC CER; the
        # paper's Table 2 ends at 20 CERs.
        trace, _ = fig9b_run
        assert [s.num_cers for s in trace.steps] == \
            [2, 4, 4, 8, 10, 12, 14, 14, 18, 20]

    def test_advanced_documents_are_larger(self, fig9a_trace, fig9b_run):
        trace_b, _ = fig9b_run
        # Paper: 22,910 B basic vs 47,406 B advanced final (≈2×).
        ratio = trace_b.final_size / fig9a_trace.final_size
        assert 1.5 < ratio < 3.0

    def test_final_document_verifies(self, fig9b_run, world, backend):
        trace, tfc = fig9b_run
        report = verify_document(trace.final_document, world.directory,
                                 backend, tfc_identities={tfc.identity})
        assert report.signatures_verified == 21

    def test_tfc_not_bottleneck(self, fig9b_run):
        # Paper §4.1: "the TFC was not the bottleneck" — its per-step
        # processing time stays below the AEA's total handling time.
        trace, _ = fig9b_run
        total_gamma = sum(s.gamma for s in trace.steps)
        total_alpha = sum(s.alpha for s in trace.steps)
        assert total_gamma < total_alpha


class TestRuntimeErrors:
    def test_missing_responder(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="no responder"):
            runtime.run(initial, fig9a, {"A": {"attachment": "x"}},
                        mode="basic")

    def test_missing_keypair(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, {}, backend=backend)
        with pytest.raises(RuntimeFault, match="no key pair"):
            runtime.run(initial, fig9a, figure9_responders(0),
                        mode="basic")

    def test_advanced_requires_tfc(self, world, fig9b, backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="TFC"):
            runtime.run(initial, fig9b, figure9_responders(0),
                        mode="advanced")

    def test_runaway_loop_capped(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        never_accept = figure9_responders(10**9)
        with pytest.raises(RuntimeFault, match="exceeded"):
            runtime.run(initial, fig9a, never_accept, mode="basic",
                        max_steps=12)


class TestLoopDepths:
    @pytest.mark.parametrize("loops,expected_steps", [(0, 5), (2, 15)])
    def test_configurable_loop_count(self, world, fig9a, backend, loops,
                                     expected_steps):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        trace = runtime.run(initial, fig9a, figure9_responders(loops),
                            mode="basic")
        assert len(trace.steps) == expected_steps


class TestResumableExecution:
    """ProcessExecution: one hop per step(), interleavable instances."""

    def test_step_by_step_matches_run(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        execution = runtime.start(initial, fig9a, figure9_responders(0),
                                  mode="basic")
        steps = []
        while (step := execution.step()) is not None:
            steps.append(step)
        assert execution.done
        assert [s.activity_id for s in steps] == ["A", "B1", "B2", "C", "D"]
        assert execution.trace.steps == steps
        assert execution.trace.final_document is steps[-1].document

    def test_pending_shows_queued_activities(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        execution = runtime.start(initial, fig9a, figure9_responders(0),
                                  mode="basic")
        assert execution.pending() == ["A"]
        assert not execution.done
        execution.step()                       # A → AND-split to B1, B2
        assert execution.pending() == ["B1", "B2"]

    def test_interleaved_instances_share_a_runtime(self, world, fig9a,
                                                   backend):
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        executions = []
        for _ in range(3):
            initial = build_initial_document(
                fig9a, world.keypair(DESIGNER), backend=backend)
            executions.append(runtime.start(
                initial, fig9a, figure9_responders(0), mode="basic"))
        # round-robin one hop at a time across all three instances
        progressed = True
        while progressed:
            progressed = False
            for execution in executions:
                if execution.step() is not None:
                    progressed = True
        assert all(e.done for e in executions)
        process_ids = {e.trace.process_id for e in executions}
        assert len(process_ids) == 3
        for execution in executions:
            assert [s.activity_id for s in execution.trace.steps] == \
                ["A", "B1", "B2", "C", "D"]

    def test_interleaved_documents_stay_verifiable(self, world, fig9a,
                                                   backend):
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        initials = [
            build_initial_document(fig9a, world.keypair(DESIGNER),
                                   backend=backend)
            for _ in range(2)
        ]
        a = runtime.start(initials[0], fig9a, figure9_responders(0))
        b = runtime.start(initials[1], fig9a, figure9_responders(0))
        while a.step() is not None or b.step() is not None:
            pass
        for execution in (a, b):
            report = verify_document(execution.trace.final_document,
                                     world.directory, backend)
            assert report.signatures_verified == 6

    def test_step_after_done_is_none(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        execution = runtime.start(initial, fig9a, figure9_responders(0))
        while execution.step() is not None:
            pass
        assert execution.step() is None
        assert execution.done

    def test_advanced_mode_requires_tfc_at_start(self, world, fig9b,
                                                 backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="TFC"):
            runtime.start(initial, fig9b, figure9_responders(0),
                          mode="advanced")
