"""ThreadedRuntime: parallel branches, identical semantics."""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.core.parallel import ThreadedRuntime
from repro.document import build_initial_document, verify_document
from repro.errors import RuntimeFault
from repro.workloads.figure9 import DESIGNER, figure9_responders
from repro.workloads.generator import (
    auto_responders,
    diamond_definition,
    participant_pool,
)

GENERIC_DESIGNER = "designer@enterprise.example"


@pytest.fixture(scope="module", autouse=True)
def enroll_pool(world):
    for identity in [GENERIC_DESIGNER, *participant_pool(6)]:
        if identity not in world.directory:
            world.add_participant(identity)


class TestEquivalence:
    def test_fig9a_same_shape_as_sequential(self, world, fig9a, backend,
                                            fig9a_trace):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend, max_workers=4)
        trace = runtime.run(initial, fig9a, figure9_responders(1),
                            mode="basic")
        assert len(trace.steps) == len(fig9a_trace.steps)
        assert sorted((s.activity_id, s.iteration)
                      for s in trace.steps) == \
            sorted((s.activity_id, s.iteration)
                   for s in fig9a_trace.steps)
        verify_document(trace.final_document, world.directory, backend)

    def test_signature_counts_preserved(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend)
        trace = runtime.run(initial, fig9a, figure9_responders(1),
                            mode="basic")
        by_step = {(s.activity_id, s.iteration): s.signatures_verified
                   for s in trace.steps}
        # Branch steps see 2 signatures, the joins 4/9 etc. — same
        # values as the sequential Table 1 run.
        assert by_step[("A", 0)] == 1
        assert by_step[("B1", 0)] == 2
        assert by_step[("C", 0)] == 4
        assert by_step[("D", 1)] == 10

    def test_advanced_mode(self, world, fig9b, backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        tfc = TfcServer(world.keypair("tfc@cloud.example"),
                        world.directory, backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  tfc=tfc, backend=backend)
        trace = runtime.run(initial, fig9b, figure9_responders(1),
                            mode="advanced")
        assert trace.steps[-1].num_cers == 20
        verify_document(trace.final_document, world.directory, backend,
                        tfc_identities={tfc.identity})
        assert len(tfc.records) == 10


class TestWideDiamonds:
    @pytest.mark.parametrize("width", [2, 6])
    def test_wide_fanout(self, world, backend, width):
        definition = diamond_definition(width, participant_pool(6),
                                        designer=GENERIC_DESIGNER)
        initial = build_initial_document(
            definition, world.keypair(GENERIC_DESIGNER), backend=backend
        )
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend, max_workers=width)
        trace = runtime.run(initial, definition,
                            auto_responders(definition), mode="basic")
        assert len(trace.steps) == width + 2
        final = trace.final_document
        for i in range(width):
            assert final.execution_count(f"P{i}") == 1
        verify_document(final, world.directory, backend)

    def test_matches_sequential_result(self, world, backend):
        definition = diamond_definition(4, participant_pool(6),
                                        designer=GENERIC_DESIGNER)
        responders = auto_responders(definition)

        def run(runtime_cls):
            initial = build_initial_document(
                definition, world.keypair(GENERIC_DESIGNER),
                backend=backend,
            )
            runtime = runtime_cls(world.directory, world.keypairs,
                                  backend=backend)
            return runtime.run(initial, definition, responders,
                               mode="basic")

        sequential = run(InMemoryRuntime)
        threaded = run(ThreadedRuntime)
        # Same CER population (ids), even if branch order may differ.
        assert {c.cer_id
                for c in sequential.final_document.cers()} == \
            {c.cer_id for c in threaded.final_document.cers()}


class TestErrors:
    def test_missing_responder(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="no responder"):
            runtime.run(initial, fig9a, {}, mode="basic")

    def test_step_budget(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="exceeded"):
            runtime.run(initial, fig9a, figure9_responders(10**9),
                        mode="basic", max_steps=8)

    def test_advanced_needs_tfc(self, world, fig9b, backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        runtime = ThreadedRuntime(world.directory, world.keypairs,
                                  backend=backend)
        with pytest.raises(RuntimeFault, match="TFC"):
            runtime.run(initial, fig9b, figure9_responders(0),
                        mode="advanced")
