"""Audit trails and dispute evidence extraction."""

from __future__ import annotations

import pytest

from repro.core.audit import audit_trail, extract_evidence, render_trail
from repro.errors import DocumentError
from repro.workloads.figure9 import PARTICIPANTS


class TestEvidence:
    def test_bundle_for_valid_document(self, fig9a_trace, world, backend):
        bundle = extract_evidence(fig9a_trace.final_document,
                                  world.directory, "D", 1, backend)
        assert bundle.participant == PARTICIPANTS["D"]
        assert bundle.document_valid
        assert bundle.cer_id == "cer-D-1"
        assert len(bundle.scope_cer_ids) == 11
        assert bundle.certificate.subject == PARTICIPANTS["D"]
        assert "BOUND" in bundle.verdict()

    def test_report_renders(self, fig9a_trace, world, backend):
        bundle = extract_evidence(fig9a_trace.final_document,
                                  world.directory, "C", 0, backend)
        report = bundle.render_report()
        assert "dispute evidence" in report
        assert "cer-C-0" in report
        assert PARTICIPANTS["C"] in report

    def test_tampered_document_is_inconclusive(self, fig9a_trace, world,
                                               backend):
        altered = fig9a_trace.final_document.clone()
        node = altered.root.find(".//CER/Signature/SignatureValue")
        node.text = "AAAA" + (node.text or "")[4:]
        bundle = extract_evidence(altered, world.directory, "D", 1,
                                  backend)
        assert not bundle.document_valid
        assert "INCONCLUSIVE" in bundle.verdict()

    def test_missing_cer_rejected(self, fig9a_trace, world, backend):
        with pytest.raises(DocumentError, match="no CER"):
            extract_evidence(fig9a_trace.final_document, world.directory,
                             "D", 9, backend)

    def test_advanced_model_evidence_has_timestamp(self, fig9b_run,
                                                   world, backend):
        trace, tfc = fig9b_run
        bundle = extract_evidence(trace.final_document, world.directory,
                                  "A", 0, backend)
        assert bundle.timestamp is not None
        assert "TFC witnessed" in bundle.render_report()


class TestTrail:
    def test_basic_trail(self, fig9a_trace):
        trail = audit_trail(fig9a_trace.final_document)
        assert trail[0].kind == "definition"
        executions = [e for e in trail if e.kind == "execution"]
        assert [(e.activity_id, e.iteration) for e in executions] == [
            ("A", 0), ("B1", 0), ("B2", 0), ("C", 0), ("D", 0),
            ("A", 1), ("B1", 1), ("B2", 1), ("C", 1), ("D", 1),
        ]

    def test_advanced_trail_has_tfc_entries(self, fig9b_run):
        trace, _ = fig9b_run
        trail = audit_trail(trace.final_document)
        tfc_entries = [e for e in trail if e.kind == "tfc"]
        assert len(tfc_entries) == 10
        assert all(e.timestamp is not None for e in tfc_entries)

    def test_trail_includes_amendments(self, world, fig9a, backend):
        from repro.core import ActivityExecutionAgent
        from repro.document import build_initial_document
        from repro.document.amendments import DelegateActivity
        from repro.workloads.figure9 import DESIGNER

        deputy = "deputy2@megacorp.example"
        if deputy not in world.directory:
            world.add_participant(deputy)
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        approver = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["D"]), world.directory, backend)
        amended = approver.amend(
            initial, DelegateActivity("D", deputy, reason="audit season"))
        trail = audit_trail(amended)
        amendment_entries = [e for e in trail if e.kind == "amendment"]
        assert len(amendment_entries) == 1
        assert "audit season" in amendment_entries[0].description

    def test_render_trail(self, fig9a_trace):
        text = render_trail(fig9a_trace.final_document)
        assert fig9a_trace.final_document.process_id in text
        assert "[execution]" in text
