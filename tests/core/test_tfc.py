"""TFC server: finalisation, timestamps, policy re-encryption, records."""

from __future__ import annotations

import pytest

from repro.core.aea import ActivityExecutionAgent
from repro.core.tfc import TfcServer
from repro.document import build_initial_document
from repro.document.sections import KIND_TFC
from repro.errors import RuntimeFault
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


@pytest.fixture()
def tfc(world, backend):
    ticks = iter(range(1, 1000))
    return TfcServer(world.keypair("tfc@cloud.example"), world.directory,
                     backend=backend, clock=lambda: float(next(ticks)))


@pytest.fixture()
def after_a_intermediate(world, fig9b, backend, tfc):
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                   world.directory, backend)
    result = agent.execute_activity(
        initial, "A", {"attachment": "form"},
        mode="advanced", tfc_identity=tfc.identity,
        tfc_public_key=tfc.public_key,
    )
    assert result.routing is None  # the TFC routes, not the AEA
    return result.document


class TestProcessing:
    def test_finalise(self, tfc, after_a_intermediate):
        outcome = tfc.process(after_a_intermediate)
        assert outcome.activity_id == "A"
        assert outcome.iteration == 0
        assert outcome.timestamp == 1.0
        assert outcome.routing.next_activities == ("B1", "B2")
        document = outcome.document
        assert document.find_cer("A", 0, KIND_TFC) is not None
        assert document.pending_intermediate() == []

    def test_tfc_cer_carries_timestamp(self, tfc, after_a_intermediate):
        document = tfc.process(after_a_intermediate).document
        cer = document.find_cer("A", 0, KIND_TFC)
        assert cer.timestamp == 1.0
        assert cer.participant == tfc.identity

    def test_policy_reencryption_grants_requesters(self, world, tfc,
                                                   after_a_intermediate):
        document = tfc.process(after_a_intermediate).document
        field = document.find_cer("A", 0, KIND_TFC).encrypted_field(
            "attachment")
        # The reviewers request 'attachment' → they can read it now.
        assert PARTICIPANTS["B1"] in field.recipients
        assert PARTICIPANTS["B2"] in field.recipients
        assert tfc.identity in field.recipients
        assert PARTICIPANTS["D"] not in field.recipients

    def test_records_kept(self, tfc, after_a_intermediate):
        tfc.process(after_a_intermediate)
        assert len(tfc.records) == 1
        record = tfc.records[0]
        assert record.activity_id == "A"
        assert record.participant == PARTICIPANTS["A"]
        assert record.timestamp == 1.0

    def test_document_log_kept(self, tfc, after_a_intermediate):
        outcome = tfc.process(after_a_intermediate)
        logged = tfc.latest_document(outcome.document.process_id)
        assert logged is not None
        assert logged.to_bytes() == outcome.document.to_bytes()

    def test_no_pending_intermediate_rejected(self, tfc, world, fig9b,
                                              backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        with pytest.raises(RuntimeFault, match="no pending"):
            tfc.process(initial)

    def test_double_processing_rejected(self, tfc, after_a_intermediate):
        once = tfc.process(after_a_intermediate)
        with pytest.raises(RuntimeFault, match="no pending"):
            tfc.process(once.document)

    def test_timings_measured(self, tfc, after_a_intermediate):
        outcome = tfc.process(after_a_intermediate)
        assert outcome.verify_seconds > 0
        assert outcome.sign_seconds > 0

    def test_keep_copies_disabled(self, world, backend,
                                  after_a_intermediate):
        quiet = TfcServer(world.keypair("tfc@cloud.example"),
                          world.directory, backend=backend,
                          keep_copies=False)
        outcome = quiet.process(after_a_intermediate)
        assert quiet.document_log == []
        assert quiet.latest_document(outcome.document.process_id) is None
        assert len(quiet.records) == 1


class TestMonotoneTimestamps:
    def test_timestamps_increase_along_process(self, fig9b_run):
        trace, tfc = fig9b_run
        times = [record.timestamp for record in tfc.records]
        assert times == sorted(times)
        assert len(times) == 10
