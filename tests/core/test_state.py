"""Variable views and execution status reconstruction."""

from __future__ import annotations

import pytest

from repro.core.state import VariableView, execution_status
from repro.document import build_initial_document
from repro.model.builder import WorkflowBuilder
from repro.model.controlflow import END
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


class TestVariableView:
    def test_reader_sees_permitted_fields(self, world, backend,
                                          fig9a_trace):
        document = fig9a_trace.final_document
        reviewer = world.keypair(PARTICIPANTS["B1"])
        view = VariableView.for_reader(document, reviewer.identity,
                                       reviewer.private_key, backend)
        assert "attachment" in view
        assert "review1" in view  # own production

    def test_latest_iteration_wins(self, world, backend, fig9a_trace):
        document = fig9a_trace.final_document
        reviewer = world.keypair(PARTICIPANTS["B1"])
        view = VariableView.for_reader(document, reviewer.identity,
                                       reviewer.private_key, backend)
        assert "v2" in view["attachment"]  # second loop pass value

    def test_non_reader_sees_nothing(self, backend, fig9a_trace,
                                     outsider_keypair):
        document = fig9a_trace.final_document
        view = VariableView.for_reader(document, outsider_keypair.identity,
                                       outsider_keypair.private_key,
                                       backend)
        assert len(view) == 0

    def test_merged_with_overrides(self):
        view = VariableView({"a": "1", "b": "2"})
        merged = view.merged_with({"b": "20", "c": "3"})
        assert merged.raw == {"a": "1", "b": "20", "c": "3"}
        assert view.raw == {"a": "1", "b": "2"}  # original untouched

    def test_typed_conversion(self):
        definition = (
            WorkflowBuilder("typed", designer="d@x")
            .activity("A", "p@x", responses=[])
            .transition("A", END)
            .build()
        )
        from repro.model.activity import Activity, FieldSpec

        definition.activities["A"] = Activity(
            "A", "p@x",
            responses=(FieldSpec("n", "int"), FieldSpec("r", "float"),
                       FieldSpec("ok", "bool"), FieldSpec("s", "string")),
        )
        view = VariableView({"n": "42", "r": "2.5", "ok": "true",
                             "s": "text", "unknown": "kept"})
        typed = view.typed(definition)
        assert typed == {"n": 42, "r": 2.5, "ok": True, "s": "text",
                         "unknown": "kept"}

    def test_bool_parsing(self):
        view = VariableView({})
        for text, expected in [("true", True), ("1", True), ("YES", True),
                               ("false", False), ("0", False),
                               ("no", False)]:
            definition = (
                WorkflowBuilder("b", designer="d@x")
                .activity("A", "p@x", responses=[])
                .transition("A", END).build()
            )
            from repro.model.activity import Activity, FieldSpec

            definition.activities["A"] = Activity(
                "A", "p@x", responses=(FieldSpec("flag", "bool"),)
            )
            assert VariableView({"flag": text}).typed(definition)["flag"] \
                is expected

    def test_getitem_missing(self):
        with pytest.raises(KeyError):
            VariableView({})["nothing"]


class TestExecutionStatus:
    def test_initial_document(self, world, fig9a, backend):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        status = execution_status(initial, fig9a)
        assert status.completed == []
        assert not status.finished
        assert status.executions == 0

    def test_finished_process(self, fig9a_trace, fig9a):
        status = execution_status(fig9a_trace.final_document, fig9a)
        assert status.finished
        assert status.executions == 10
        assert ("D", 1) in status.completed

    def test_advanced_status_has_timestamps(self, fig9b_run, fig9b):
        trace, _ = fig9b_run
        status = execution_status(trace.final_document, fig9b)
        assert len(status.timestamps) == 10
        assert status.pending_tfc == []

    def test_pending_tfc_tracked(self, world, fig9b, backend):
        from repro.core import ActivityExecutionAgent, TfcServer

        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        tfc = TfcServer(world.keypair("tfc@cloud.example"),
                        world.directory, backend=backend)
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        mid = agent.execute_activity(
            initial, "A", {"attachment": "x"}, mode="advanced",
            tfc_identity=tfc.identity, tfc_public_key=tfc.public_key,
        ).document
        status = execution_status(mid, fig9b)
        assert status.pending_tfc == [("A", 0)]
        assert status.completed == []
