"""Routing: cascade targets and join readiness."""

from __future__ import annotations

import pytest

from repro.core.aea import ActivityExecutionAgent
from repro.core.router import cascade_targets, check_join_ready, route_after
from repro.document import build_initial_document
from repro.errors import JoinNotReady, RoutingError
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


@pytest.fixture()
def initial(world, fig9a, backend):
    return build_initial_document(fig9a, world.keypair(DESIGNER),
                                  backend=backend)


def run_activity(world, backend, document, activity_id, values,
                 merge_with=None):
    participant = {
        "A": PARTICIPANTS["A"], "B1": PARTICIPANTS["B1"],
        "B2": PARTICIPANTS["B2"], "C": PARTICIPANTS["C"],
        "D": PARTICIPANTS["D"],
    }[activity_id]
    agent = ActivityExecutionAgent(world.keypair(participant),
                                   world.directory, backend)
    return agent.execute_activity(document, activity_id, values,
                                  merge_with=merge_with or []).document


class TestCascadeTargets:
    def test_start_activity_signs_designer(self, initial, fig9a):
        targets = cascade_targets(initial, fig9a, "A")
        assert [t.get("Id") for t in targets] == ["sig-def"]

    def test_sequence_signs_predecessor(self, world, backend, initial,
                                        fig9a):
        after_a = run_activity(world, backend, initial, "A",
                               {"attachment": "x"})
        targets = cascade_targets(after_a, fig9a, "B1")
        assert [t.get("Id") for t in targets] == ["sig-A-0"]

    def test_and_join_signs_all_branches(self, world, backend, initial,
                                         fig9a):
        after_a = run_activity(world, backend, initial, "A",
                               {"attachment": "x"})
        branch1 = run_activity(world, backend, after_a.clone(), "B1",
                               {"review1": "r"})
        merged = run_activity(world, backend, after_a.clone(), "B2",
                              {"review2": "r"}).merge(branch1)
        targets = cascade_targets(merged, fig9a, "C")
        assert sorted(t.get("Id") for t in targets) == \
            ["sig-B1-0", "sig-B2-0"]

    def test_loop_reentry_signs_latest(self, fig9a_trace, fig9a):
        # After D^0 (loop back), A's targets are D's latest signature.
        document = fig9a_trace.final_document
        targets = cascade_targets(document, fig9a, "A")
        assert [t.get("Id") for t in targets] == ["sig-D-1"]

    def test_pending_intermediate_blocks_routing(self, world, fig9b,
                                                 backend):
        from repro.core import TfcServer

        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        tfc = TfcServer(world.keypair("tfc@cloud.example"),
                        world.directory, backend=backend)
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        pending = agent.execute_activity(
            initial, "A", {"attachment": "x"}, mode="advanced",
            tfc_identity=tfc.identity, tfc_public_key=tfc.public_key,
        ).document
        with pytest.raises(RoutingError, match="unfinalised"):
            cascade_targets(pending, fig9b, "B1")


class TestJoinReadiness:
    def test_start_always_ready(self, initial, fig9a):
        check_join_ready(initial, fig9a, "A")

    def test_sequence_requires_predecessor(self, initial, fig9a):
        with pytest.raises(JoinNotReady):
            check_join_ready(initial, fig9a, "B1")

    def test_and_join_requires_all_branches(self, world, backend, initial,
                                            fig9a):
        after_a = run_activity(world, backend, initial, "A",
                               {"attachment": "x"})
        branch1 = run_activity(world, backend, after_a.clone(), "B1",
                               {"review1": "r"})
        with pytest.raises(JoinNotReady, match="missing branches"):
            check_join_ready(branch1, fig9a, "C")
        merged = branch1.merge(
            run_activity(world, backend, after_a.clone(), "B2",
                         {"review2": "r"})
        )
        check_join_ready(merged, fig9a, "C")

    def test_sibling_consumption_does_not_block(self, world, backend,
                                                initial, fig9a):
        # B1 executed on a document that already carries B2's result
        # (pool-serialised flow): B2's CER consumed A's frontier, but B1
        # must still be runnable.
        after_a = run_activity(world, backend, initial, "A",
                               {"attachment": "x"})
        after_b2 = run_activity(world, backend, after_a, "B2",
                                {"review2": "r"})
        check_join_ready(after_b2, fig9a, "B1")


class TestRouteAfter:
    def test_and_split(self, fig9a):
        decision = route_after(fig9a, "A", {})
        assert decision.next_activities == ("B1", "B2")
        assert decision.next_participants == (PARTICIPANTS["B1"],
                                              PARTICIPANTS["B2"])
        assert not decision.terminal

    def test_termination(self, fig9a):
        decision = route_after(fig9a, "D", {"decision": "accept"})
        assert decision.terminal
        assert decision.next_activities == ()

    def test_loop_back(self, fig9a):
        decision = route_after(fig9a, "D", {"decision": "nope"})
        assert decision.next_activities == ("A",)
