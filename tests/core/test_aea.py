"""Activity Execution Agent behaviour."""

from __future__ import annotations

import pytest

from repro.core.aea import ActivityExecutionAgent
from repro.document import build_initial_document
from repro.errors import (
    AuthorizationError,
    JoinNotReady,
    PolicyError,
    RuntimeFault,
)
from repro.workloads.chinese_wall import chinese_wall_definition
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


@pytest.fixture()
def initial(world, fig9a, backend):
    return build_initial_document(fig9a, world.keypair(DESIGNER),
                                  backend=backend)


def agent_for(world, backend, identity):
    return ActivityExecutionAgent(world.keypair(identity), world.directory,
                                  backend)


class TestExecution:
    def test_first_activity(self, world, fig9a, backend, initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        result = agent.execute_activity(initial, "A",
                                        {"attachment": "the form"})
        assert result.iteration == 0
        assert result.routing is not None
        assert result.routing.next_activities == ("B1", "B2")
        assert result.document.execution_count("A") == 1
        assert result.timings.verify_seconds > 0
        assert result.timings.sign_seconds > 0

    def test_accepts_serialized_bytes(self, world, backend, initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        result = agent.execute_activity(initial.to_bytes(), "A",
                                        {"attachment": "x"})
        assert result.document.execution_count("A") == 1

    def test_responder_callable_sees_context(self, world, backend, initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        seen = {}

        def responder(context):
            seen["activity"] = context.activity_id
            seen["iteration"] = context.iteration
            seen["expected"] = context.expected_responses
            return {"attachment": "payload"}

        agent.execute_activity(initial, "A", responder)
        assert seen == {"activity": "A", "iteration": 0,
                        "expected": {"attachment": "string"}}

    def test_requests_decrypted_for_participant(self, world, backend,
                                                initial):
        first = agent_for(world, backend, PARTICIPANTS["A"])
        after_a = first.execute_activity(
            initial, "A", {"attachment": "secret form"}
        ).document

        reviewer = agent_for(world, backend, PARTICIPANTS["B1"])
        captured = {}

        def responder(context):
            captured.update(context.requests)
            return {"review1": "ok"}

        reviewer.execute_activity(after_a, "B1", responder)
        assert captured == {"attachment": "secret form"}

    def test_wrong_participant_rejected(self, world, backend, initial):
        impostor = agent_for(world, backend, PARTICIPANTS["D"])
        with pytest.raises(AuthorizationError, match="designated"):
            impostor.execute_activity(initial, "A", {"attachment": "x"})

    def test_response_fields_must_match_declaration(self, world, backend,
                                                    initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        with pytest.raises(RuntimeFault, match="must produce"):
            agent.execute_activity(initial, "A", {"wrong_field": "x"})
        with pytest.raises(RuntimeFault, match="must produce"):
            agent.execute_activity(initial, "A",
                                   {"attachment": "x", "extra": "y"})

    def test_join_not_ready(self, world, backend, initial):
        # C cannot run before B1/B2.
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        after_a = agent.execute_activity(initial, "A",
                                         {"attachment": "x"}).document
        joiner = agent_for(world, backend, PARTICIPANTS["C"])
        with pytest.raises(JoinNotReady):
            joiner.execute_activity(after_a, "C", {"summary": "premature"})

    def test_unknown_mode(self, world, backend, initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        with pytest.raises(RuntimeFault, match="unknown AEA mode"):
            agent.execute_activity(initial, "A", {"attachment": "x"},
                                   mode="turbo")

    def test_advanced_mode_needs_tfc(self, world, backend, initial):
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        with pytest.raises(RuntimeFault, match="TFC"):
            agent.execute_activity(initial, "A", {"attachment": "x"},
                                   mode="advanced")


class TestPolicyEnforcement:
    def test_basic_mode_refuses_tfc_policies(self, world, backend):
        definition = chinese_wall_definition()
        # Enroll the chinese-wall participants on the fly.
        from repro.workloads.chinese_wall import DESIGNER as CW_DESIGNER
        from repro.workloads.chinese_wall import PARTICIPANTS as CW_WHO

        for identity in [CW_DESIGNER, *CW_WHO.values()]:
            if identity not in world.directory:
                world.add_participant(identity)
        initial = build_initial_document(
            definition, world.keypair(CW_DESIGNER), backend=backend
        )
        peter = ActivityExecutionAgent(world.keypair(CW_WHO["A1"]),
                                       world.directory, backend)
        with pytest.raises(PolicyError, match="advanced"):
            peter.execute_activity(initial, "A1", {"X": "target"})

    def test_unreadable_request_rejected(self, world, backend):
        # B2 requests a field the policy hides from them.
        from repro.model.builder import WorkflowBuilder
        from repro.model.controlflow import END

        definition = (
            WorkflowBuilder("hide", designer=DESIGNER)
            .activity("A", PARTICIPANTS["A"], responses=["secret"])
            .activity("B", PARTICIPANTS["B1"], requests=["secret"])
            .transition("A", "B").transition("B", END)
            .readers("A", "secret", [PARTICIPANTS["D"]])
            .build()
        )
        initial = build_initial_document(
            definition, world.keypair(DESIGNER), backend=backend
        )
        producer = agent_for(world, backend, PARTICIPANTS["A"])
        after_a = producer.execute_activity(initial, "A",
                                            {"secret": "x"}).document
        reader = agent_for(world, backend, PARTICIPANTS["B1"])
        with pytest.raises(AuthorizationError, match="cannot decrypt"):
            reader.execute_activity(after_a, "B", {})


class TestIterations:
    def test_loop_produces_new_iteration(self, world, fig9a, backend,
                                         fig9a_trace):
        document = fig9a_trace.final_document
        assert document.find_cer("A", 1) is not None
        cer0 = document.find_cer("A", 0)
        cer1 = document.find_cer("A", 1)
        assert cer0.cer_id != cer1.cer_id

    def test_encrypted_definition_flow(self, world, fig9a, backend):
        readers = {
            identity: world.directory.public_key_of(identity)
            for identity in (*fig9a.participants, DESIGNER)
        }
        initial = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for=readers, backend=backend,
        )
        agent = agent_for(world, backend, PARTICIPANTS["A"])
        result = agent.execute_activity(initial, "A", {"attachment": "x"})
        assert result.routing.next_activities == ("B1", "B2")
