"""Multiple TFC servers in one process (one notary per enterprise).

Fig. 6 draws a TFC box per routing hop; nothing in the model requires a
single server.  Each enterprise can operate its own TFC: the AEA
encrypts its intermediate bundle to *its* TFC, that TFC finalises and
countersigns, and the successor — possibly in another enterprise —
routes through a different TFC.  Verification accepts the set of
expected TFC identities.
"""

from __future__ import annotations

import pytest

from repro.core import ActivityExecutionAgent, TfcServer
from repro.document import build_initial_document, verify_document
from repro.document.nonrepudiation import nonrepudiation_scope_ids
from repro.errors import VerificationError
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

TFC_ACME = "tfc@acme.example"
TFC_PARTNER = "tfc@partner.example"


@pytest.fixture(scope="module", autouse=True)
def enroll_tfcs(world):
    for identity in (TFC_ACME, TFC_PARTNER):
        if identity not in world.directory:
            world.add_participant(identity)


@pytest.fixture()
def two_tfcs(world, backend):
    # A two-member federation: each server trusts the other's CERs.
    federation = {TFC_ACME, TFC_PARTNER}
    return (
        TfcServer(world.keypair(TFC_ACME), world.directory,
                  backend=backend, trusted_tfcs=federation),
        TfcServer(world.keypair(TFC_PARTNER), world.directory,
                  backend=backend, trusted_tfcs=federation),
    )


def run_with(world, backend, fig9b, tfc_for):
    """Drive Fig. 9B manually, choosing the TFC per activity."""
    document = build_initial_document(fig9b, world.keypair(DESIGNER),
                                      backend=backend)
    order = ["A", "B1", "B2", "C", "D"]
    branch_docs = {}
    for activity_id in order:
        tfc = tfc_for(activity_id)
        agent = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS[activity_id]), world.directory,
            backend,
        )
        source = document if activity_id != "C" else branch_docs["B1"]
        merge = [branch_docs["B2"]] if activity_id == "C" else []
        values = {
            "A": {"attachment": "x"}, "B1": {"review1": "r"},
            "B2": {"review2": "r"}, "C": {"summary": "s"},
            "D": {"decision": "accept"},
        }[activity_id]
        result = agent.execute_activity(
            source.clone(), activity_id, values, mode="advanced",
            tfc_identity=tfc.identity, tfc_public_key=tfc.public_key,
            merge_with=merge,
        )
        finalized = tfc.process(result.document).document
        if activity_id in ("B1", "B2"):
            branch_docs[activity_id] = finalized
        else:
            document = finalized
    return document


class TestTwoTfcs:
    def test_alternating_tfcs_verify(self, world, backend, fig9b,
                                     two_tfcs):
        acme_tfc, partner_tfc = two_tfcs
        # Acme activities use acme's TFC, the rest use the partner's.
        by_enterprise = {
            "A": acme_tfc, "B1": acme_tfc,
            "B2": partner_tfc, "C": partner_tfc, "D": partner_tfc,
        }
        final = run_with(world, backend, fig9b, by_enterprise.__getitem__)
        report = verify_document(
            final, world.directory, backend,
            tfc_identities={acme_tfc.identity, partner_tfc.identity},
        )
        assert report.cers_checked == 11

        # Each TFC recorded exactly its own activities.
        assert sorted(r.activity_id for r in acme_tfc.records) == \
            ["A", "B1"]
        assert sorted(r.activity_id for r in partner_tfc.records) == \
            ["B2", "C", "D"]

    def test_cascade_crosses_tfc_boundaries(self, world, backend, fig9b,
                                            two_tfcs):
        acme_tfc, partner_tfc = two_tfcs
        final = run_with(
            world, backend, fig9b,
            lambda a: acme_tfc if a in ("A", "B1") else partner_tfc,
        )
        # D's scope reaches back through BOTH notaries to the designer.
        final_cer = final.find_cer("D", 0, "tfc")
        scope = nonrepudiation_scope_ids(final, final_cer)
        assert "cer-def" in scope
        participants = {
            cer.participant for cer in final.cers()
            if cer.cer_id in scope
        }
        assert {acme_tfc.identity, partner_tfc.identity} <= participants

    def test_unexpected_tfc_rejected(self, world, backend, fig9b,
                                     two_tfcs):
        acme_tfc, partner_tfc = two_tfcs
        final = run_with(world, backend, fig9b, lambda a: acme_tfc)
        with pytest.raises(VerificationError, match="unexpected"):
            verify_document(final, world.directory, backend,
                            tfc_identities={partner_tfc.identity})

    def test_untrusted_tfc_refused_by_peer(self, world, backend, fig9b):
        # Without federation config, the partner's TFC refuses to
        # extend a document finalised by acme's TFC.
        from repro.errors import VerificationError as VE

        acme = TfcServer(world.keypair(TFC_ACME), world.directory,
                         backend=backend)
        partner = TfcServer(world.keypair(TFC_PARTNER), world.directory,
                            backend=backend)
        document = build_initial_document(
            fig9b, world.keypair(DESIGNER), backend=backend)
        agent_a = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["A"]), world.directory, backend)
        after_a = acme.process(agent_a.execute_activity(
            document, "A", {"attachment": "x"}, mode="advanced",
            tfc_identity=acme.identity, tfc_public_key=acme.public_key,
        ).document).document
        agent_b1 = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["B1"]), world.directory, backend)
        pending = agent_b1.execute_activity(
            after_a, "B1", {"review1": "r"}, mode="advanced",
            tfc_identity=partner.identity,
            tfc_public_key=partner.public_key,
        ).document
        with pytest.raises(VE, match="unexpected"):
            partner.process(pending)
