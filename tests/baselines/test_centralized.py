"""The centralized engine-based baseline."""

from __future__ import annotations

import pytest

from repro.baselines.centralized import CentralizedWfms
from repro.errors import AuthorizationError
from repro.workloads.figure9 import (
    PARTICIPANTS,
    figure9_responders,
    figure_9a_definition,
)


@pytest.fixture()
def engine():
    return CentralizedWfms(figure_9a_definition())


class TestExecution:
    def test_full_run_matches_workflow(self, engine):
        process_id, steps = engine.run(figure9_responders(1))
        assert [s.activity_id for s in steps] == \
            ["A", "B1", "B2", "C", "D"] * 2
        assert [s.iteration for s in steps] == [0] * 5 + [1] * 5

    def test_engine_sees_all_variables_in_plaintext(self, engine):
        # This is the confidentiality gap: the engine (and its admin)
        # read everything.
        process_id, _ = engine.run(figure9_responders(0))
        variables = engine.variables_of(process_id)
        assert set(variables) == {"attachment", "review1", "review2",
                                  "summary", "decision"}
        assert variables["decision"] == "accept"

    def test_stored_result(self, engine):
        process_id, _ = engine.run(figure9_responders(0))
        assert engine.stored_result(process_id, "D")["decision"] == "accept"

    def test_authorization_checked(self, engine):
        process_id = engine.start_process()
        with pytest.raises(AuthorizationError):
            engine.execute(process_id, "A", "mallory@evil.example",
                           {"attachment": "x"})

    def test_two_processes_isolated(self, engine):
        p1, _ = engine.run(figure9_responders(0))
        p2, _ = engine.run(figure9_responders(0))
        assert p1 != p2
        assert engine.stored_result(p1, "A") is not None
        assert engine.stored_result(p2, "A") is not None


class TestSecurityGap:
    def test_cannot_prove_results(self, engine):
        process_id, _ = engine.run(figure9_responders(0))
        assert not engine.can_prove_result(process_id, "D")

    def test_tampering_undetectable(self, engine):
        process_id, _ = engine.run(figure9_responders(0))
        admin = engine.superuser()
        admin.silent_update(
            "activity_results", f"{process_id}/D/0",
            {"values": '{"decision": "reject"}'},
        )
        assert engine.stored_result(process_id, "D")["decision"] == "reject"
        assert not engine.detect_tampering(process_id)
