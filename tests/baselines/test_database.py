"""The engine database and its superuser."""

from __future__ import annotations

import pytest

from repro.baselines.database import EngineDatabase
from repro.errors import StorageError


@pytest.fixture()
def db():
    database = EngineDatabase("test-db")
    database.create_table("t")
    return database


class TestRegularOperations:
    def test_insert_get(self, db):
        db.insert("t", "r1", {"a": "1"})
        assert db.get("t", "r1") == {"a": "1"}

    def test_duplicate_insert_rejected(self, db):
        db.insert("t", "r1", {"a": "1"})
        with pytest.raises(StorageError):
            db.insert("t", "r1", {"a": "2"})

    def test_update(self, db):
        db.insert("t", "r1", {"a": "1", "b": "2"})
        db.update("t", "r1", {"a": "10"})
        assert db.get("t", "r1") == {"a": "10", "b": "2"}

    def test_missing_row(self, db):
        with pytest.raises(StorageError):
            db.get("t", "ghost")

    def test_missing_table(self, db):
        with pytest.raises(StorageError):
            db.get("ghost", "r")

    def test_duplicate_table(self, db):
        with pytest.raises(StorageError):
            db.create_table("t")

    def test_select_all(self, db):
        db.insert("t", "r1", {"a": "1"})
        db.insert("t", "r2", {"a": "2"})
        assert set(db.select("t")) == {"r1", "r2"}

    def test_operations_are_audited(self, db):
        db.insert("t", "r1", {"a": "1"})
        db.update("t", "r1", {"a": "2"})
        operations = [(e.operation, e.row_id) for e in db.audit_log]
        assert operations == [("insert", "r1"), ("update", "r1")]
        sequences = [e.sequence for e in db.audit_log]
        assert sequences == sorted(sequences)


class TestSuperuser:
    def test_silent_update_leaves_no_audit_trace(self, db):
        db.insert("t", "r1", {"value": "genuine"})
        log_before = list(db.audit_log)
        db.superuser().silent_update("t", "r1", {"value": "forged"})
        assert db.get("t", "r1")["value"] == "forged"
        assert db.audit_log == log_before  # nothing recorded

    def test_rewrite_log_selective(self, db):
        db.insert("t", "r1", {"a": "1"})
        db.insert("t", "r2", {"a": "2"})
        removed = db.superuser().rewrite_log(drop_row_id="r1")
        assert removed == 1
        assert all(e.row_id != "r1" for e in db.audit_log)

    def test_rewrite_log_total(self, db):
        db.insert("t", "r1", {"a": "1"})
        assert db.superuser().rewrite_log() == 1
        assert db.audit_log == []

    def test_forge_log_entry(self, db):
        db.superuser().forge_log_entry("insert", "t", "phantom",
                                       "never happened")
        assert db.audit_log[-1].row_id == "phantom"
