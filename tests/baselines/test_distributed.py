"""The distributed engine-based baseline."""

from __future__ import annotations

import pytest

from repro.baselines.distributed import DistributedWfms
from repro.errors import RuntimeFault
from repro.workloads.figure9 import figure9_responders, figure_9a_definition


@pytest.fixture()
def plain():
    return DistributedWfms(figure_9a_definition(), engines=3, use_ssl=False)


@pytest.fixture()
def ssl():
    return DistributedWfms(figure_9a_definition(), engines=3, use_ssl=True)


class TestExecution:
    def test_full_run(self, ssl):
        process_id, migrations = ssl.run(figure9_responders(1))
        variables = ssl.stored_variables(process_id)
        assert variables["decision"] == "accept"

    def test_activities_spread_over_engines(self, ssl):
        engines_used = {ssl.engine_for(a).engine_id
                        for a in ("A", "B1", "B2", "C", "D")}
        assert len(engines_used) == 3

    def test_instance_migrates(self, ssl):
        _, migrations = ssl.run(figure9_responders(0))
        assert migrations  # engines differ → at least one hop
        assert all(m.protected for m in migrations)

    def test_single_engine_never_migrates(self):
        system = DistributedWfms(figure_9a_definition(), engines=1)
        _, migrations = system.run(figure9_responders(0))
        assert migrations == []

    def test_coherence_single_owner(self, ssl):
        process_id, _ = ssl.run(figure9_responders(0))
        owners = [e for e in ssl.engines if process_id in e.owned]
        assert len(owners) == 1

    def test_step_budget(self, ssl):
        with pytest.raises(RuntimeFault):
            ssl.run(figure9_responders(10**9), max_steps=12)

    def test_needs_engines(self):
        with pytest.raises(RuntimeFault):
            DistributedWfms(figure_9a_definition(), engines=0)


class TestTransitExposure:
    def test_plaintext_wire_capturable(self, plain):
        plain.run(figure9_responders(0))
        assert plain.wire_captures
        # The captures contain actual variable plaintext.
        assert any(c["state"]["variables"] for c in plain.wire_captures)

    def test_ssl_wire_opaque(self, ssl):
        ssl.run(figure9_responders(0))
        assert ssl.wire_captures == []

    def test_mitm_alters_unprotected_instance(self, plain):
        def hook(source, target, payload):
            for name in payload["variables"]:
                payload["variables"][name] = "FORGED"
            return payload

        plain.install_transit_hook(hook)
        process_id, _ = plain.run(figure9_responders(0))
        values = plain.stored_variables(process_id)
        assert "FORGED" in values.values()
        assert not plain.detect_tampering(process_id)

    def test_mitm_blocked_by_ssl(self, ssl):
        called = []

        def hook(source, target, payload):
            called.append(True)
            return payload

        ssl.install_transit_hook(hook)
        ssl.run(figure9_responders(0))
        assert called == []


class TestSecurityGap:
    def test_cannot_prove_results(self, ssl):
        process_id, _ = ssl.run(figure9_responders(0))
        assert not ssl.can_prove_result(process_id, "D")

    def test_any_engine_superuser_can_tamper(self, ssl):
        process_id, _ = ssl.run(figure9_responders(0))
        owner = next(e for e in ssl.engines if process_id in e.owned)
        state = owner.load_instance(process_id)
        state["variables"]["decision"] = "reject"
        import json

        owner.superuser().silent_update(
            "instances", process_id,
            {"state": json.dumps(state, sort_keys=True)},
        )
        assert ssl.stored_variables(process_id)["decision"] == "reject"
        assert not ssl.detect_tampering(process_id)
