"""Byzantine TFC analysis — the advanced model's trust boundary.

The paper models the TFC as "analogous to a notary public" and trusts
it.  What if the notary cheats?  A malicious TFC can substitute the
participant's result while re-encrypting (it holds the plaintext!), and
**online verification cannot catch that** — the substituted result is
validly signed by the TFC.  This is an inherent consequence of the
Fig. 4 requirement (the TFC must see and re-encrypt plaintext), not an
implementation bug.

What the cascade *does* guarantee is after-the-fact accountability: the
participant's intermediate CER — countersigned by the TFC itself! —
still carries the original result sealed to the TFC's key.  In a
dispute, producing the TFC's decryption shows the mismatch, and the
TFC's own signature over the intermediate CER makes the substitution
undeniable.  Both halves are asserted here and recorded as the honest
trust-model statement in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core import ActivityExecutionAgent
from repro.core.tfc import TfcServer
from repro.document import (
    INTERMEDIATE_BUNDLE_FIELD,
    build_initial_document,
    parse_result_bundle,
    verify_document,
)
from repro.document.sections import KIND_INTERMEDIATE, KIND_TFC
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

EVIL_TFC = "tfc-mallory@cloud.example"


class MaliciousTfc(TfcServer):
    """A notary that rewrites every result it re-encrypts."""

    def process(self, data):
        # Intercept by wrapping the bundle parser for this call only:
        # decrypt → substitute → continue as normal.
        original_parse = parse_result_bundle

        def forge(payload: bytes) -> dict[str, str]:
            values = original_parse(payload)
            return {name: "FORGED BY TFC" for name in values}

        import repro.core.tfc as tfc_module

        tfc_module.parse_result_bundle = forge
        try:
            return super().process(data)
        finally:
            tfc_module.parse_result_bundle = original_parse


@pytest.fixture(scope="module", autouse=True)
def enroll(world):
    if EVIL_TFC not in world.directory:
        world.add_participant(EVIL_TFC)


@pytest.fixture()
def forged_run(world, fig9b, backend):
    tfc = MaliciousTfc(world.keypair(EVIL_TFC), world.directory,
                       backend=backend)
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                   world.directory, backend)
    pending = agent.execute_activity(
        initial, "A", {"attachment": "the genuine application"},
        mode="advanced", tfc_identity=tfc.identity,
        tfc_public_key=tfc.public_key,
    ).document
    return tfc, tfc.process(pending).document


class TestOnlineLimitation:
    def test_substitution_passes_verification(self, forged_run, world,
                                              backend):
        # Honest negative result: the document verifies — the TFC is
        # inside the trust boundary for plaintext handling.
        tfc, document = forged_run
        report = verify_document(document, world.directory, backend,
                                 tfc_identities={tfc.identity})
        assert report.signatures_verified == 3

    def test_readers_receive_the_forgery(self, forged_run, world,
                                         backend):
        tfc, document = forged_run
        reviewer = world.keypair(PARTICIPANTS["B1"])
        field = document.find_cer("A", 0, KIND_TFC) \
            .encrypted_field("attachment")
        plaintext = field.decrypt(reviewer.identity,
                                  reviewer.private_key, backend)
        assert plaintext == b"FORGED BY TFC"


class TestOfflineAccountability:
    def test_intermediate_cer_pins_the_original(self, forged_run, world,
                                                backend):
        # Dispute resolution: the TFC's key (disclosed to the
        # arbitrator) decrypts the participant-signed intermediate
        # bundle — the original survives, signed by the participant AND
        # countersigned by the TFC.
        tfc, document = forged_run
        intermediate = document.find_cer("A", 0, KIND_INTERMEDIATE)
        bundle = intermediate.encrypted_field(INTERMEDIATE_BUNDLE_FIELD)
        original = parse_result_bundle(bundle.decrypt(
            tfc.identity, tfc.keypair.private_key, backend
        ))
        assert original == {"attachment": "the genuine application"}

    def test_tfc_cannot_deny_the_substitution(self, forged_run, world,
                                              backend):
        from repro.document.nonrepudiation import nonrepudiation_scope_ids

        tfc, document = forged_run
        tfc_cer = document.find_cer("A", 0, KIND_TFC)
        # The TFC signed the final (forged) CER *and* its scope covers
        # the intermediate CER with the original: both statements carry
        # its signature, so the mismatch is attributable to it alone.
        assert tfc_cer.participant == tfc.identity
        scope = nonrepudiation_scope_ids(document, tfc_cer)
        assert "cerit-A-0" in scope

    def test_tfc_cannot_tamper_with_the_intermediate(self, forged_run,
                                                     world, backend):
        # Covering its tracks by altering the intermediate bundle would
        # break the participant's signature — detected by anyone.
        from repro.errors import ReproError

        tfc, document = forged_run
        altered = document.clone()
        node = altered.root.find(
            ".//CER[@Id='cerit-A-0']/ExecutionResult/EncryptedData/"
            "CipherData/CipherValue")
        node.text = "QUJD" + (node.text or "")[4:]
        with pytest.raises(ReproError):
            verify_document(altered, world.directory, backend,
                            tfc_identities={tfc.identity})
