"""The executable attack matrix: DRA4WfMS resists, baselines fall."""

from __future__ import annotations

import pytest

from repro.baselines import CentralizedWfms, DistributedWfms
from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.security import (
    AttackSuite,
    eavesdrop_distributed,
    eavesdrop_dra_field,
    mitm_distributed,
    repudiate_centralized,
    repudiate_dra_execution,
    rollback_dra_document,
    superuser_tamper_centralized,
    swap_dra_ciphertexts,
    tamper_dra_field,
)
from repro.security.threat import (
    MALICIOUS_ADMIN,
    NETWORK_ATTACKER,
    Capability,
)
from repro.workloads.figure9 import figure9_responders, figure_9a_definition


@pytest.fixture()
def final_doc(fig9a_trace):
    return fig9a_trace.final_document


@pytest.fixture()
def pool_with_doc(final_doc):
    pool = DocumentPool(SimHBase(region_servers=1))
    pool.register_process(final_doc.process_id)
    pool.store(final_doc)
    return pool


class TestDraAttacks:
    def test_tamper_detected(self, final_doc, world, backend):
        outcome = tamper_dra_field(final_doc, world.directory, backend)
        assert outcome.detected and outcome.secure

    def test_splice_detected(self, final_doc, world, backend):
        outcome = swap_dra_ciphertexts(final_doc, world.directory, backend)
        assert outcome.detected and outcome.secure

    def test_rollback_caught_by_pool(self, final_doc, world, backend,
                                     pool_with_doc):
        outcome = rollback_dra_document(final_doc, world.directory,
                                        pool_with_doc, backend)
        assert outcome.detected and outcome.secure
        assert "monotonicity" in outcome.detail

    def test_rollback_without_pool_is_the_known_gap(self, final_doc,
                                                    world, backend):
        # A truncated document is a validly-signed prefix: document-
        # level verification alone cannot catch it.  Honest negative
        # result, documented in EXPERIMENTS.md.
        outcome = rollback_dra_document(final_doc, world.directory,
                                        None, backend)
        assert not outcome.detected

    def test_eavesdrop_blocked(self, final_doc, world, backend,
                               outsider_keypair):
        outcome = eavesdrop_dra_field(
            final_doc, outsider_keypair.identity,
            outsider_keypair.private_key, backend,
        )
        assert outcome.secure

    def test_repudiation_rebutted(self, final_doc, world, backend):
        outcome = repudiate_dra_execution(final_doc, world.directory, "D",
                                          iteration=1, backend=backend)
        assert outcome.secure
        assert "rebutted" in outcome.detail

    def test_attacks_do_not_mutate_original(self, final_doc, world,
                                            backend):
        before = final_doc.to_bytes()
        tamper_dra_field(final_doc, world.directory, backend)
        swap_dra_ciphertexts(final_doc, world.directory, backend)
        assert final_doc.to_bytes() == before


class TestBaselineAttacks:
    def test_centralized_superuser_wins(self):
        engine = CentralizedWfms(figure_9a_definition())
        process_id, _ = engine.run(figure9_responders(0))
        outcome = superuser_tamper_centralized(engine, process_id, "D")
        assert outcome.succeeded and not outcome.detected

    def test_centralized_repudiation_wins(self):
        engine = CentralizedWfms(figure_9a_definition())
        process_id, _ = engine.run(figure9_responders(0))
        outcome = repudiate_centralized(engine, process_id, "D")
        assert outcome.succeeded

    def test_mitm_wins_without_ssl(self):
        system = DistributedWfms(figure_9a_definition(), engines=3,
                                 use_ssl=False)
        outcome = mitm_distributed(system, figure9_responders(0))
        assert outcome.succeeded and not outcome.detected

    def test_mitm_blocked_by_ssl(self):
        system = DistributedWfms(figure_9a_definition(), engines=3,
                                 use_ssl=True)
        outcome = mitm_distributed(system, figure9_responders(0))
        assert not outcome.succeeded

    def test_eavesdrop_wins_without_ssl(self):
        system = DistributedWfms(figure_9a_definition(), engines=3,
                                 use_ssl=False)
        outcome = eavesdrop_distributed(system, figure9_responders(0))
        assert outcome.succeeded


class TestFullSuite:
    def test_matrix(self, final_doc, world, backend, outsider_keypair,
                    pool_with_doc):
        definition = figure_9a_definition()
        centralized = CentralizedWfms(definition)
        process_id, _ = centralized.run(figure9_responders(0))
        suite = AttackSuite.run(
            dra_document=final_doc,
            directory=world.directory,
            outsider_identity=outsider_keypair.identity,
            outsider_private_key=outsider_keypair.private_key,
            centralized=centralized,
            centralized_process=process_id,
            repudiated_activity="D",
            distributed_plain=DistributedWfms(definition, engines=3,
                                              use_ssl=False),
            distributed_ssl=DistributedWfms(definition, engines=3,
                                            use_ssl=True),
            responders=figure9_responders(0),
            pool=pool_with_doc,
            backend=backend,
        )
        # The paper's core claim, as an assertion:
        assert suite.dra_all_secure()
        assert suite.baselines_all_vulnerable()
        by_system = suite.by_system()
        assert len(by_system["dra4wfms"]) == 5
        # SSL helps with transit but not with storage/repudiation.
        ssl_outcomes = by_system["distributed-engine(ssl)"]
        assert all(o.secure for o in ssl_outcomes)


class TestThreatModel:
    def test_capabilities(self):
        assert NETWORK_ATTACKER.can(Capability.ALTER_NETWORK)
        assert not NETWORK_ATTACKER.can(Capability.SUPERUSER_STORAGE)
        assert MALICIOUS_ADMIN.can(Capability.SUPERUSER_STORAGE)

    def test_outcome_secure_property(self):
        from repro.security.threat import AttackOutcome

        assert AttackOutcome("a", "s", succeeded=False, detected=True,
                             detail="").secure
        assert not AttackOutcome("a", "s", succeeded=True, detected=False,
                                 detail="").secure
