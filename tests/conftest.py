"""Shared fixtures: worlds, definitions, and executed traces.

Key generation and full process executions are comparatively expensive,
so they are session-scoped; tests that mutate documents must work on
``document.clone()`` (the fixtures hand out shared objects).
"""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.crypto import KeyPair
from repro.crypto.backend import PureBackend
from repro.crypto.fast import FastBackend
from repro.document import build_initial_document
from repro.workloads import build_world, figure9_responders
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS
from repro.workloads.figure9 import figure_9a_definition, figure_9b_definition

TFC_IDENTITY = "tfc@cloud.example"
OUTSIDER = "eve@evil.example"


@pytest.fixture(scope="session")
def backend():
    """The fast (OpenSSL) backend used for the bulk of the tests."""
    return FastBackend()


@pytest.fixture(scope="session")
def pure_backend():
    """Deterministic pure-Python backend (seeded DRBG)."""
    return PureBackend(seed=b"repro-test-suite")


@pytest.fixture(scope="session")
def world(backend):
    """PKI world with the Fig. 9 participants, a TFC, and an outsider.

    The outsider has a certificate (so verification of their *claimed*
    signatures resolves) but is never a designated participant.
    """
    identities = [DESIGNER, *PARTICIPANTS.values(), TFC_IDENTITY, OUTSIDER]
    return build_world(identities, bits=1024, backend=backend)


@pytest.fixture(scope="session")
def fig9a(world):
    """The Figure 9A definition."""
    return figure_9a_definition()


@pytest.fixture(scope="session")
def fig9b(world):
    """The Figure 9B definition (advanced model)."""
    return figure_9b_definition()


@pytest.fixture(scope="session")
def fig9a_trace(world, fig9a, backend):
    """One full basic-model execution of Fig. 9A (two loop passes)."""
    initial = build_initial_document(
        fig9a, world.keypair(DESIGNER), backend=backend
    )
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    return runtime.run(initial, fig9a, figure9_responders(1), mode="basic")


@pytest.fixture(scope="session")
def fig9b_run(world, fig9b, backend):
    """One full advanced-model execution; returns (trace, tfc server)."""
    initial = build_initial_document(
        fig9b, world.keypair(DESIGNER), backend=backend
    )
    tfc = TfcServer(world.keypair(TFC_IDENTITY), world.directory,
                    backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc,
                              backend=backend)
    trace = runtime.run(initial, fig9b, figure9_responders(1),
                        mode="advanced")
    return trace, tfc


@pytest.fixture(scope="session")
def outsider_keypair(world) -> KeyPair:
    """The certified-but-unauthorised outsider."""
    return world.keypair(OUTSIDER)
