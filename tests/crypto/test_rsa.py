"""Pure RSA: keygen, PKCS#1 v1.5 signatures and encryption."""

from __future__ import annotations

import pytest

from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.rsa import RsaPrivateKey, generate_keypair
from repro.errors import DecryptionError, KeyError_, SignatureError


@pytest.fixture(scope="module")
def keypair() -> RsaPrivateKey:
    return generate_keypair(1024, HmacDrbg(b"rsa-test-seed"))


@pytest.fixture(scope="module")
def other_keypair() -> RsaPrivateKey:
    return generate_keypair(1024, HmacDrbg(b"other-seed"))


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.n.bit_length() == 1024
        assert keypair.public_key.bits == 1024
        assert keypair.byte_length == 128

    def test_crt_consistency(self, keypair):
        assert keypair.p * keypair.q == keypair.n
        phi = (keypair.p - 1) * (keypair.q - 1)
        assert (keypair.d * keypair.e) % phi == 1

    def test_deterministic_with_seed(self):
        a = generate_keypair(512, HmacDrbg(b"same"))
        b = generate_keypair(512, HmacDrbg(b"same"))
        assert a == b

    def test_refuses_small_or_odd_sizes(self):
        with pytest.raises(KeyError_):
            generate_keypair(256)
        with pytest.raises(KeyError_):
            generate_keypair(1025)

    def test_inconsistent_private_key_rejected(self, keypair):
        with pytest.raises(KeyError_):
            RsaPrivateKey(n=keypair.n + 2, e=keypair.e, d=keypair.d,
                          p=keypair.p, q=keypair.q)

    def test_fingerprint_stable_and_distinct(self, keypair, other_keypair):
        assert (keypair.public_key.fingerprint()
                == keypair.public_key.fingerprint())
        assert (keypair.public_key.fingerprint()
                != other_keypair.public_key.fingerprint())


class TestSignatures:
    def test_roundtrip(self, keypair):
        signature = keypair.sign(b"the document")
        keypair.public_key.verify(b"the document", signature)

    def test_signature_length_is_modulus_length(self, keypair):
        assert len(keypair.sign(b"x")) == keypair.byte_length

    def test_wrong_message_rejected(self, keypair):
        signature = keypair.sign(b"original")
        with pytest.raises(SignatureError):
            keypair.public_key.verify(b"altered", signature)

    def test_bitflip_rejected(self, keypair):
        signature = bytearray(keypair.sign(b"msg"))
        signature[10] ^= 0x01
        with pytest.raises(SignatureError):
            keypair.public_key.verify(b"msg", bytes(signature))

    def test_wrong_key_rejected(self, keypair, other_keypair):
        signature = keypair.sign(b"msg")
        with pytest.raises(SignatureError):
            other_keypair.public_key.verify(b"msg", signature)

    def test_wrong_length_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public_key.verify(b"msg", b"\x00" * 64)

    def test_out_of_range_representative_rejected(self, keypair):
        too_big = (keypair.n + 1).to_bytes(keypair.byte_length, "big")
        with pytest.raises(SignatureError):
            keypair.public_key.verify(b"msg", too_big)

    def test_deterministic(self, keypair):
        assert keypair.sign(b"same") == keypair.sign(b"same")

    def test_empty_message(self, keypair):
        signature = keypair.sign(b"")
        keypair.public_key.verify(b"", signature)


class TestEncryption:
    def test_roundtrip(self, keypair):
        secret = b"a 16-byte AES key"
        assert keypair.decrypt(
            keypair.public_key.encrypt(secret, HmacDrbg(b"pad"))
        ) == secret

    def test_randomized_padding(self, keypair):
        # Two encryptions of the same plaintext must differ (PKCS#1 PS).
        c1 = keypair.public_key.encrypt(b"msg", HmacDrbg(b"pad-a"))
        c2 = keypair.public_key.encrypt(b"msg", HmacDrbg(b"pad-b"))
        assert c1 != c2
        assert keypair.decrypt(c1) == keypair.decrypt(c2) == b"msg"

    def test_plaintext_too_long(self, keypair):
        with pytest.raises(KeyError_):
            keypair.public_key.encrypt(b"x" * (keypair.byte_length - 10))

    def test_max_length_plaintext(self, keypair):
        secret = b"y" * (keypair.byte_length - 11)
        ciphertext = keypair.public_key.encrypt(secret, HmacDrbg(b"p"))
        assert keypair.decrypt(ciphertext) == secret

    def test_tampered_ciphertext_rejected(self, keypair):
        ciphertext = bytearray(
            keypair.public_key.encrypt(b"secret", HmacDrbg(b"p"))
        )
        ciphertext[0] ^= 0xFF
        with pytest.raises(DecryptionError):
            keypair.decrypt(bytes(ciphertext))

    def test_wrong_key_rejected(self, keypair, other_keypair):
        ciphertext = keypair.public_key.encrypt(b"secret", HmacDrbg(b"p"))
        with pytest.raises(DecryptionError):
            other_keypair.decrypt(ciphertext)

    def test_wrong_length_rejected(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.decrypt(b"\x01" * 60)
