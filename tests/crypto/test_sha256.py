"""Pure SHA-256 against FIPS vectors, hashlib, and property tests."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pure.sha256 import SHA256, sha256


# NIST FIPS 180-4 / well-known vectors.
KNOWN_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS,
                         ids=["empty", "abc", "two-blocks", "million-a"])
def test_known_vectors(message, expected):
    assert sha256(message).hex() == expected


def test_incremental_update_equals_oneshot():
    h = SHA256()
    h.update(b"hello ")
    h.update(b"")
    h.update(b"world")
    assert h.digest() == sha256(b"hello world")


def test_digest_is_idempotent():
    h = SHA256(b"data")
    first = h.digest()
    assert h.digest() == first
    h.update(b" more")
    assert h.digest() == sha256(b"data more")


def test_copy_is_independent():
    h = SHA256(b"prefix")
    clone = h.copy()
    clone.update(b"-clone")
    h.update(b"-orig")
    assert h.digest() == sha256(b"prefix-orig")
    assert clone.digest() == sha256(b"prefix-clone")


def test_hexdigest_matches_digest():
    h = SHA256(b"xyz")
    assert bytes.fromhex(h.hexdigest()) == h.digest()


def test_update_rejects_str():
    with pytest.raises(TypeError):
        SHA256().update("not bytes")  # type: ignore[arg-type]


@given(st.binary(max_size=4096))
def test_matches_hashlib(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@given(st.lists(st.binary(max_size=300), max_size=12))
def test_chunked_updates_match_hashlib(chunks):
    h = SHA256()
    reference = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
        reference.update(chunk)
    assert h.digest() == reference.digest()


@given(st.binary(min_size=50, max_size=80))
def test_block_boundary_padding(data):
    # Lengths straddling the 55/56-byte padding boundary are the
    # classic implementation bug; sweep the whole region.
    assert sha256(data) == hashlib.sha256(data).digest()
