"""Miller–Rabin primality testing and prime generation."""

from __future__ import annotations

import pytest

from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.primes import SMALL_PRIMES, generate_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 100, 7917, 2**31, 2**61 - 2]

# Carmichael numbers fool Fermat but not Miller–Rabin.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]


def test_small_primes_table():
    assert SMALL_PRIMES[0] == 2
    assert SMALL_PRIMES[-1] < 2000
    assert 1999 in SMALL_PRIMES
    # The table itself must contain only primes.
    for p in SMALL_PRIMES[:50]:
        assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes(n):
    assert is_probable_prime(n, HmacDrbg(b"seed"))


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites(n):
    assert not is_probable_prime(n, HmacDrbg(b"seed"))


@pytest.mark.parametrize("n", CARMICHAEL)
def test_carmichael_numbers_rejected(n):
    assert not is_probable_prime(n, HmacDrbg(b"seed"))


def test_product_of_two_primes_rejected():
    p, q = 104729, 1299709
    assert not is_probable_prime(p * q, HmacDrbg(b"seed"))


@pytest.mark.parametrize("bits", [64, 128, 256])
def test_generate_prime_bit_length(bits):
    rng = HmacDrbg(b"prime-seed")
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert p % 2 == 1
    assert is_probable_prime(p, rng)


def test_generate_prime_deterministic():
    assert generate_prime(96, HmacDrbg(b"s")) == generate_prime(96, HmacDrbg(b"s"))


def test_generate_prime_different_seeds():
    assert generate_prime(96, HmacDrbg(b"a")) != generate_prime(96, HmacDrbg(b"b"))


def test_generate_prime_top_bits_set():
    # Both MSBs forced so p*q has exactly 2n bits.
    p = generate_prime(64, HmacDrbg(b"seed"))
    assert p >> 62 == 0b11


def test_generate_prime_refuses_tiny():
    with pytest.raises(ValueError):
        generate_prime(8)
