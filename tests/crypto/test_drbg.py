"""HMAC-DRBG determinism and distribution sanity."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pure.drbg import HmacDrbg


def test_seeded_generators_are_deterministic():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.generate(64) == b.generate(64)
    assert a.generate(10) == b.generate(10)


def test_different_seeds_diverge():
    assert HmacDrbg(b"one").generate(32) != HmacDrbg(b"two").generate(32)


def test_personalization_separates_streams():
    a = HmacDrbg(b"seed", personalization=b"alpha")
    b = HmacDrbg(b"seed", personalization=b"beta")
    assert a.generate(32) != b.generate(32)


def test_unseeded_generators_differ():
    assert HmacDrbg().generate(32) != HmacDrbg().generate(32)


def test_deterministic_flag():
    assert HmacDrbg(b"x").deterministic
    assert not HmacDrbg().deterministic


def test_generate_lengths():
    rng = HmacDrbg(b"seed")
    assert rng.generate(0) == b""
    assert len(rng.generate(1)) == 1
    assert len(rng.generate(100)) == 100


def test_generate_negative_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    b.reseed(b"fresh entropy")
    assert a.generate(32) != b.generate(32)


def test_successive_outputs_differ():
    rng = HmacDrbg(b"seed")
    assert rng.generate(32) != rng.generate(32)


@given(st.integers(min_value=1, max_value=10_000))
def test_randbelow_in_range(upper):
    rng = HmacDrbg(b"seed")
    for _ in range(5):
        assert 0 <= rng.randbelow(upper) < upper


def test_randbelow_rejects_nonpositive():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randbelow(0)


@given(st.integers(min_value=1, max_value=512))
def test_randbits_has_exact_bit_length(nbits):
    value = HmacDrbg(b"seed").randbits(nbits)
    assert value.bit_length() == nbits


def test_randbits_rejects_nonpositive():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randbits(0)


def test_randbelow_covers_small_range():
    rng = HmacDrbg(b"coverage")
    seen = {rng.randbelow(4) for _ in range(200)}
    assert seen == {0, 1, 2, 3}
