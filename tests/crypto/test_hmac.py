"""HMAC-SHA256 against RFC 4231 vectors and the standard library."""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pure.hmac import HMAC, constant_time_compare, hmac_sha256

# RFC 4231 test cases (SHA-256 column).
RFC4231 = [
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"),
    (b"\xaa" * 131,
     b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"),
]


@pytest.mark.parametrize("key,msg,expected", RFC4231,
                         ids=["case1", "case2", "case3", "long-key"])
def test_rfc4231_vectors(key, msg, expected):
    assert hmac_sha256(key, msg).hex() == expected


def test_incremental_matches_oneshot():
    mac = HMAC(b"key")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_sha256(b"key", b"part one part two")


def test_copy_is_independent():
    mac = HMAC(b"key", b"base")
    clone = mac.copy()
    clone.update(b"-x")
    assert mac.digest() == hmac_sha256(b"key", b"base")
    assert clone.digest() == hmac_sha256(b"key", b"base-x")


def test_hexdigest():
    assert bytes.fromhex(HMAC(b"k", b"m").hexdigest()) == hmac_sha256(b"k", b"m")


@given(st.binary(max_size=200), st.binary(max_size=2000))
def test_matches_stdlib(key, msg):
    assert hmac_sha256(key, msg) == stdlib_hmac.new(
        key, msg, hashlib.sha256
    ).digest()


class TestConstantTimeCompare:
    def test_equal(self):
        assert constant_time_compare(b"same-bytes", b"same-bytes")

    def test_unequal_same_length(self):
        assert not constant_time_compare(b"aaaa", b"aaab")

    def test_different_lengths(self):
        assert not constant_time_compare(b"short", b"longer-value")

    def test_empty(self):
        assert constant_time_compare(b"", b"")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_agrees_with_equality(self, a, b):
        assert constant_time_compare(a, b) == (a == b)
