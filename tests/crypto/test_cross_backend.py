"""Interoperability between the pure and the fast (OpenSSL) backends.

Everything DRA4WfMS produces must be backend-portable: a document
signed on one backend verifies on the other, sealed payloads open, and
wrapped keys unwrap.  These tests are the license to use the fast
backend everywhere else in the suite while still claiming the pure
implementation is the reference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import PureBackend
from repro.crypto.fast import FastBackend
from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.rsa import generate_keypair
from repro.errors import DecryptionError, SignatureError


@pytest.fixture(scope="module")
def pure():
    return PureBackend(seed=b"cross-backend")


@pytest.fixture(scope="module")
def fast():
    return FastBackend()


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"cross-key"))


def test_digest_agreement(pure, fast):
    for data in (b"", b"abc", b"x" * 1000):
        assert pure.digest(data) == fast.digest(data)


def test_fast_keygen_usable_by_pure(pure, fast):
    key = fast.generate_keypair(1024)
    signature = pure.sign(key, b"msg")
    pure.verify(key.public_key, b"msg", signature)


class TestSignatures:
    def test_pure_sign_fast_verify(self, pure, fast, keypair):
        signature = pure.sign(keypair, b"cascade")
        fast.verify(keypair.public_key, b"cascade", signature)

    def test_fast_sign_pure_verify(self, pure, fast, keypair):
        signature = fast.sign(keypair, b"cascade")
        pure.verify(keypair.public_key, b"cascade", signature)

    def test_signatures_are_byte_identical(self, pure, fast, keypair):
        # PKCS#1 v1.5 signing is deterministic, so the two backends
        # must produce the same bytes.
        assert pure.sign(keypair, b"m") == fast.sign(keypair, b"m")

    def test_cross_verify_rejects_tampering(self, pure, fast, keypair):
        signature = bytearray(pure.sign(keypair, b"m"))
        signature[5] ^= 1
        with pytest.raises(SignatureError):
            fast.verify(keypair.public_key, b"m", bytes(signature))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=300))
    def test_property_cross_verification(self, pure, fast, keypair, message):
        fast.verify(keypair.public_key, message, pure.sign(keypair, message))
        pure.verify(keypair.public_key, message, fast.sign(keypair, message))


class TestKeyWrap:
    def test_pure_wrap_fast_unwrap(self, pure, fast, keypair):
        wrapped = pure.wrap_key(keypair.public_key, b"0123456789abcdef")
        assert fast.unwrap_key(keypair, wrapped) == b"0123456789abcdef"

    def test_fast_wrap_pure_unwrap(self, pure, fast, keypair):
        wrapped = fast.wrap_key(keypair.public_key, b"0123456789abcdef")
        assert pure.unwrap_key(keypair, wrapped) == b"0123456789abcdef"


class TestSealing:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=200), st.binary(max_size=30))
    def test_pure_seal_fast_open(self, pure, fast, plaintext, aad):
        key = b"k" * 16
        assert fast.open_sealed(key, pure.seal(key, plaintext, aad),
                                aad) == plaintext

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=200), st.binary(max_size=30))
    def test_fast_seal_pure_open(self, pure, fast, plaintext, aad):
        key = b"k" * 16
        assert pure.open_sealed(key, fast.seal(key, plaintext, aad),
                                aad) == plaintext

    def test_cross_open_rejects_wrong_aad(self, pure, fast):
        key = b"k" * 16
        blob = pure.seal(key, b"data", b"aad-1")
        with pytest.raises(DecryptionError):
            fast.open_sealed(key, blob, b"aad-2")
