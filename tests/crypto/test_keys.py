"""Key-pair handling and serialization."""

from __future__ import annotations

import pytest

from repro.crypto.backend import PureBackend
from repro.crypto.keys import (
    KeyPair,
    private_key_from_dict,
    private_key_to_dict,
    public_key_from_dict,
    public_key_to_dict,
)
from repro.errors import KeyError_


@pytest.fixture(scope="module")
def keypair(backend):
    return KeyPair.generate("tester@acme.example", bits=1024, backend=backend)


def test_generate_sets_identity(keypair):
    assert keypair.identity == "tester@acme.example"
    assert keypair.public_key.n == keypair.private_key.n


def test_public_key_roundtrip(keypair):
    data = public_key_to_dict(keypair.public_key)
    assert data["kty"] == "RSA"
    assert public_key_from_dict(data) == keypair.public_key


def test_private_key_roundtrip(keypair):
    data = private_key_to_dict(keypair.private_key)
    assert private_key_from_dict(data) == keypair.private_key


def test_keypair_dict_roundtrip(keypair):
    restored = KeyPair.from_dict(keypair.to_dict())
    assert restored.identity == keypair.identity
    assert restored.private_key == keypair.private_key


def test_public_key_rejects_wrong_kty():
    with pytest.raises(KeyError_):
        public_key_from_dict({"kty": "EC", "n": "0x3", "e": "0x5"})


def test_public_key_rejects_malformed():
    with pytest.raises(KeyError_):
        public_key_from_dict({"kty": "RSA", "n": "not-hex", "e": "0x5"})
    with pytest.raises(KeyError_):
        public_key_from_dict({"kty": "RSA"})


def test_private_key_rejects_malformed():
    with pytest.raises(KeyError_):
        private_key_from_dict({"kty": "RSA", "n": "0x1"})


def test_sign_uses_identity_key(keypair, backend):
    signature = keypair.sign(b"message", backend)
    backend.verify(keypair.public_key, b"message", signature)


def test_generate_with_pure_backend_deterministic():
    a = KeyPair.generate("x@y", bits=512, backend=PureBackend(seed=b"s"))
    b = KeyPair.generate("x@y", bits=512, backend=PureBackend(seed=b"s"))
    assert a.private_key == b.private_key
