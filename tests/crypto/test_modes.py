"""Padding, CBC/CTR modes, and authenticated sealing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    open_sealed,
    pkcs7_pad,
    pkcs7_unpad,
    seal,
)
from repro.errors import DecryptionError

KEY = b"0123456789abcdef"
IV = b"\x00" * 16


class TestPkcs7:
    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_pad_always_adds(self):
        assert pkcs7_pad(b"x" * 16) == b"x" * 16 + bytes([16]) * 16

    def test_unpad_rejects_empty(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"")

    def test_unpad_rejects_partial_block(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15)

    def test_unpad_rejects_bad_padding_byte(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15 + b"\x00")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15 + b"\x11")

    def test_unpad_rejects_inconsistent_padding(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 14 + b"\x01\x02")


class TestCbc:
    @given(st.binary(max_size=300))
    def test_roundtrip(self, plaintext):
        ciphertext = cbc_encrypt(KEY, IV, plaintext)
        assert cbc_decrypt(KEY, IV, ciphertext) == plaintext

    def test_iv_changes_ciphertext(self):
        a = cbc_encrypt(KEY, b"\x01" * 16, b"message")
        b = cbc_encrypt(KEY, b"\x02" * 16, b"message")
        assert a != b

    def test_bad_iv_length(self):
        with pytest.raises(DecryptionError):
            cbc_encrypt(KEY, b"short", b"msg")
        with pytest.raises(DecryptionError):
            cbc_decrypt(KEY, b"short", b"x" * 16)

    def test_partial_ciphertext_rejected(self):
        with pytest.raises(DecryptionError):
            cbc_decrypt(KEY, IV, b"x" * 17)

    def test_chaining(self):
        # Identical plaintext blocks must encrypt differently under CBC.
        ciphertext = cbc_encrypt(KEY, IV, b"A" * 32)
        assert ciphertext[:16] != ciphertext[16:32]


class TestCtr:
    @given(st.binary(max_size=300))
    def test_involution(self, data):
        nonce = b"\x07" * 16
        once = ctr_transform(KEY, nonce, data)
        assert ctr_transform(KEY, nonce, once) == data

    def test_counter_wraps_at_128_bits(self):
        nonce = b"\xff" * 16
        # Two blocks: the second encryption block uses counter 0.
        out = ctr_transform(KEY, nonce, b"\x00" * 32)
        assert len(out) == 32

    def test_bad_nonce_length(self):
        with pytest.raises(DecryptionError):
            ctr_transform(KEY, b"short", b"data")

    def test_keystream_position_matters(self):
        a = ctr_transform(KEY, (1).to_bytes(16, "big"), b"\x00" * 16)
        b = ctr_transform(KEY, (2).to_bytes(16, "big"), b"\x00" * 16)
        assert a != b


class TestSeal:
    @given(st.binary(max_size=500), st.binary(max_size=50))
    def test_roundtrip(self, plaintext, aad):
        blob = seal(KEY, plaintext, aad, HmacDrbg(b"nonce-seed"))
        assert open_sealed(KEY, blob, aad) == plaintext

    def test_wrong_key_rejected(self):
        blob = seal(KEY, b"secret", rng=HmacDrbg(b"n"))
        with pytest.raises(DecryptionError):
            open_sealed(b"another-key-0000", blob)

    def test_wrong_aad_rejected(self):
        blob = seal(KEY, b"secret", b"context-a", HmacDrbg(b"n"))
        with pytest.raises(DecryptionError):
            open_sealed(KEY, blob, b"context-b")

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(seal(KEY, b"secret", rng=HmacDrbg(b"n")))
        blob[20] ^= 0x01
        with pytest.raises(DecryptionError):
            open_sealed(KEY, bytes(blob))

    def test_tampered_tag_rejected(self):
        blob = bytearray(seal(KEY, b"secret", rng=HmacDrbg(b"n")))
        blob[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            open_sealed(KEY, bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(DecryptionError):
            open_sealed(KEY, b"too-short")

    def test_nonces_are_fresh(self):
        rng = HmacDrbg(b"n")
        assert seal(KEY, b"m", rng=rng) != seal(KEY, b"m", rng=rng)

    def test_empty_plaintext(self):
        blob = seal(KEY, b"", b"aad", HmacDrbg(b"n"))
        assert open_sealed(KEY, blob, b"aad") == b""
