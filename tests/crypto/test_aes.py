"""Pure AES against FIPS 197 vectors and structural properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pure.aes import AES
from repro.errors import KeyError_

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

# FIPS 197 Appendix C vectors.
FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_encrypt(key_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(PLAINTEXT).hex() == ct_hex


@pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_decrypt(key_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == PLAINTEXT


def test_aes128_known_vector_2():
    # FIPS 197 Appendix B.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    assert AES(key).encrypt_block(plaintext).hex() == \
        "3925841d02dc09fbdc118597196a0b32"


@pytest.mark.parametrize("size", [0, 1, 15, 17, 23, 31, 33])
def test_invalid_key_sizes_rejected(size):
    with pytest.raises(KeyError_):
        AES(b"k" * size)


@pytest.mark.parametrize("size", [0, 15, 17, 32])
def test_invalid_block_sizes_rejected(size):
    cipher = AES(b"k" * 16)
    with pytest.raises(KeyError_):
        cipher.encrypt_block(b"b" * size)
    with pytest.raises(KeyError_):
        cipher.decrypt_block(b"b" * size)


@given(st.binary(min_size=16, max_size=16),
       st.sampled_from([16, 24, 32]))
def test_roundtrip(block, key_size):
    cipher = AES(bytes(range(key_size)))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16))
def test_encryption_is_permutation_not_identity(block):
    cipher = AES(b"\x01" * 16)
    encrypted = cipher.encrypt_block(block)
    assert len(encrypted) == 16
    # AES has no fixed points we should ever stumble on by chance.
    assert encrypted != block


def test_different_keys_different_ciphertexts():
    a = AES(b"a" * 16).encrypt_block(PLAINTEXT)
    b = AES(b"b" * 16).encrypt_block(PLAINTEXT)
    assert a != b
