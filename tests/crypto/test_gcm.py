"""AES-GCM: NIST vectors, OpenSSL interop, XML-layer integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import PureBackend
from repro.crypto.fast import FastBackend
from repro.crypto.pure.gcm import gcm_decrypt, gcm_encrypt, ghash
from repro.errors import DecryptionError

# NIST SP 800-38D test vectors (AES-128).
KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
IV = bytes.fromhex("cafebabefacedbaddecaf888")
PT_64 = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
CT_64 = bytes.fromhex(
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
    "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
)
AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestNistVectors:
    def test_case_1_empty(self):
        key = bytes(16)
        ciphertext, tag = gcm_encrypt(key, bytes(12), b"")
        assert ciphertext == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_single_block(self):
        key = bytes(16)
        ciphertext, tag = gcm_encrypt(key, bytes(12), bytes(16))
        assert ciphertext.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_four_blocks(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, PT_64)
        assert ciphertext == CT_64
        assert tag.hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, PT_64[:60], AAD)
        assert ciphertext == CT_64[:60]
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_decrypt_roundtrip(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, PT_64[:60], AAD)
        assert gcm_decrypt(KEY, IV, ciphertext, tag, AAD) == PT_64[:60]


class TestFailures:
    def test_tampered_ciphertext(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, b"secret")
        bad = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        with pytest.raises(DecryptionError):
            gcm_decrypt(KEY, IV, bad, tag)

    def test_tampered_tag(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, b"secret")
        bad_tag = bytes([tag[0] ^ 1]) + tag[1:]
        with pytest.raises(DecryptionError):
            gcm_decrypt(KEY, IV, ciphertext, bad_tag)

    def test_wrong_aad(self):
        ciphertext, tag = gcm_encrypt(KEY, IV, b"secret", b"context-a")
        with pytest.raises(DecryptionError):
            gcm_decrypt(KEY, IV, ciphertext, tag, b"context-b")

    def test_bad_iv_length(self):
        with pytest.raises(DecryptionError):
            gcm_encrypt(KEY, b"short", b"x")

    def test_ghash_alignment(self):
        with pytest.raises(ValueError):
            ghash(1, b"not a block")


class TestCrossBackend:
    @pytest.fixture(scope="class")
    def pure(self):
        return PureBackend(seed=b"gcm-tests")

    @pytest.fixture(scope="class")
    def fast(self):
        return FastBackend()

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=300), st.binary(max_size=40))
    def test_pure_seal_fast_open(self, pure, fast, plaintext, aad):
        key = b"k" * 16
        blob = pure.seal_gcm(key, plaintext, aad)
        assert fast.open_gcm(key, blob, aad) == plaintext

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=300), st.binary(max_size=40))
    def test_fast_seal_pure_open(self, pure, fast, plaintext, aad):
        key = b"k" * 16
        blob = fast.seal_gcm(key, plaintext, aad)
        assert pure.open_gcm(key, blob, aad) == plaintext

    def test_short_blob_rejected(self, pure, fast):
        for backend in (pure, fast):
            with pytest.raises(DecryptionError):
                backend.open_gcm(b"k" * 16, b"tiny")


class TestXmlIntegration:
    def test_gcm_encrypted_element(self, world, backend):
        from repro.workloads.figure9 import DESIGNER
        from repro.xmlsec.canonical import canonicalize, parse_xml
        from repro.xmlsec.xmlenc import ALG_GCM, decrypt_value, encrypt_value

        keypair = world.keypair(DESIGNER)
        element = encrypt_value(
            "e1", "X", b"gcm payload",
            {keypair.identity: keypair.public_key},
            backend, algorithm=ALG_GCM,
        )
        assert element.get("Algorithm") == ALG_GCM
        reparsed = parse_xml(canonicalize(element))
        assert decrypt_value(reparsed, keypair.identity,
                             keypair.private_key, backend) == b"gcm payload"

    def test_algorithm_rewrite_fails_closed(self, world, backend):
        from repro.errors import XmlEncryptionError
        from repro.workloads.figure9 import DESIGNER
        from repro.xmlsec.xmlenc import ALG_GCM, decrypt_value, encrypt_value

        keypair = world.keypair(DESIGNER)
        element = encrypt_value(
            "e1", "X", b"payload",
            {keypair.identity: keypair.public_key},
            backend, algorithm=ALG_GCM,
        )
        element.set("Algorithm", "aes128ctr-hmacsha256")
        with pytest.raises(XmlEncryptionError):
            decrypt_value(element, keypair.identity,
                          keypair.private_key, backend)
        element.set("Algorithm", "rot13")
        with pytest.raises(XmlEncryptionError, match="unsupported"):
            decrypt_value(element, keypair.identity,
                          keypair.private_key, backend)

    def test_unknown_algorithm_rejected_on_encrypt(self, world, backend):
        from repro.errors import XmlEncryptionError
        from repro.workloads.figure9 import DESIGNER
        from repro.xmlsec.xmlenc import encrypt_value

        keypair = world.keypair(DESIGNER)
        with pytest.raises(XmlEncryptionError, match="unsupported"):
            encrypt_value("e1", "X", b"p",
                          {keypair.identity: keypair.public_key},
                          backend, algorithm="des-ecb")
