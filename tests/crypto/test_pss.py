"""RSASSA-PSS: pure implementation, OpenSSL interop, XML integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import PureBackend
from repro.crypto.fast import FastBackend
from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.rsa import generate_keypair
from repro.errors import SignatureError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"pss-key"))


@pytest.fixture(scope="module")
def pure():
    return PureBackend(seed=b"pss-tests")


@pytest.fixture(scope="module")
def fast():
    return FastBackend()


class TestPurePss:
    def test_roundtrip(self, keypair):
        signature = keypair.sign_pss(b"message", HmacDrbg(b"salt"))
        keypair.public_key.verify_pss(b"message", signature)

    def test_randomised(self, keypair):
        rng = HmacDrbg(b"salts")
        a = keypair.sign_pss(b"same message", rng)
        b = keypair.sign_pss(b"same message", rng)
        assert a != b  # fresh salt each time
        keypair.public_key.verify_pss(b"same message", a)
        keypair.public_key.verify_pss(b"same message", b)

    def test_wrong_message_rejected(self, keypair):
        signature = keypair.sign_pss(b"original", HmacDrbg(b"s"))
        with pytest.raises(SignatureError):
            keypair.public_key.verify_pss(b"altered", signature)

    def test_bitflip_rejected(self, keypair):
        signature = bytearray(keypair.sign_pss(b"msg", HmacDrbg(b"s")))
        signature[7] ^= 1
        with pytest.raises(SignatureError):
            keypair.public_key.verify_pss(b"msg", bytes(signature))

    def test_pkcs1_signature_is_not_a_pss_signature(self, keypair):
        signature = keypair.sign(b"msg")
        with pytest.raises(SignatureError):
            keypair.public_key.verify_pss(b"msg", signature)

    def test_wrong_length_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public_key.verify_pss(b"msg", b"\x00" * 16)

    def test_empty_message(self, keypair):
        keypair.public_key.verify_pss(
            b"", keypair.sign_pss(b"", HmacDrbg(b"s"))
        )


class TestCrossBackend:
    @settings(max_examples=8, deadline=None)
    @given(st.binary(max_size=200))
    def test_pure_sign_fast_verify(self, pure, fast, keypair, message):
        fast.verify_pss(keypair.public_key, message,
                        pure.sign_pss(keypair, message))

    @settings(max_examples=8, deadline=None)
    @given(st.binary(max_size=200))
    def test_fast_sign_pure_verify(self, pure, fast, keypair, message):
        pure.verify_pss(keypair.public_key, message,
                        fast.sign_pss(keypair, message))

    def test_fast_rejects_tampered(self, pure, fast, keypair):
        signature = bytearray(pure.sign_pss(keypair, b"m"))
        signature[-2] ^= 1
        with pytest.raises(SignatureError):
            fast.verify_pss(keypair.public_key, b"m", bytes(signature))


class TestXmlIntegration:
    def test_pss_xml_signature(self, fast, keypair):
        import xml.etree.ElementTree as ET

        from repro.crypto.keys import KeyPair
        from repro.xmlsec.xmldsig import (
            ALG_PSS,
            XmlSignature,
            find_by_id,
            sign_references,
        )

        signer = KeyPair("signer@x", keypair)
        root = ET.Element("Doc")
        data = ET.SubElement(root, "Data", {"Id": "d1"})
        data.text = "payload"
        signature = sign_references("sig1", signer.identity,
                                    signer.private_key, [data],
                                    backend=fast, algorithm=ALG_PSS)
        root.append(signature.element)
        parsed = XmlSignature(find_by_id(root, "sig1"))
        assert parsed.algorithm == ALG_PSS
        parsed.verify(keypair.public_key, root, fast)

        data.text = "tampered"
        with pytest.raises(Exception):
            parsed.verify(keypair.public_key, root, fast)

    def test_unknown_algorithm_rejected_on_sign(self, fast, keypair):
        import xml.etree.ElementTree as ET

        from repro.errors import XmlSignatureError
        from repro.xmlsec.xmldsig import sign_references

        target = ET.Element("Data", {"Id": "d1"})
        with pytest.raises(XmlSignatureError, match="unsupported"):
            sign_references("s", "x", keypair, [target], backend=fast,
                            algorithm="rsa-md5")

    def test_unknown_algorithm_rejected_on_verify(self, fast, keypair):
        import xml.etree.ElementTree as ET

        from repro.crypto.keys import KeyPair
        from repro.errors import XmlSignatureError
        from repro.xmlsec.xmldsig import (
            XmlSignature,
            find_by_id,
            sign_references,
        )

        signer = KeyPair("signer@x", keypair)
        root = ET.Element("Doc")
        data = ET.SubElement(root, "Data", {"Id": "d1"})
        signature = sign_references("sig1", signer.identity,
                                    signer.private_key, [data],
                                    backend=fast)
        # Downgrade attack: rewrite the algorithm attribute.
        signature.element.find("SignedInfo/SignatureMethod").set(
            "Algorithm", "rsa-md5"
        )
        root.append(signature.element)
        with pytest.raises(XmlSignatureError):
            XmlSignature(find_by_id(root, "sig1")).verify(
                keypair.public_key, root, fast
            )
