"""Certificate authority and key directory."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.pki import Certificate, CertificateAuthority, KeyDirectory
from repro.errors import CertificateError


@pytest.fixture(scope="module")
def ca(backend):
    return CertificateAuthority("ca.acme.example", backend=backend)


@pytest.fixture(scope="module")
def other_ca(backend):
    return CertificateAuthority("ca.megacorp.example", backend=backend)


@pytest.fixture(scope="module")
def alice(backend):
    return KeyPair.generate("alice@acme.example", bits=1024, backend=backend)


class TestCertificateAuthority:
    def test_issue_and_verify(self, ca, alice):
        cert = ca.issue(alice.identity, alice.public_key)
        ca.verify(cert)
        assert cert.subject == alice.identity
        assert cert.issuer == ca.name

    def test_serials_increment(self, ca, alice):
        a = ca.issue("a@x", alice.public_key)
        b = ca.issue("b@x", alice.public_key)
        assert b.serial == a.serial + 1

    def test_wrong_issuer_rejected(self, ca, other_ca, alice):
        cert = ca.issue(alice.identity, alice.public_key)
        with pytest.raises(CertificateError):
            other_ca.verify(cert)

    def test_tampered_subject_rejected(self, ca, alice):
        cert = ca.issue(alice.identity, alice.public_key)
        forged = Certificate(
            subject="mallory@evil.example",
            public_key=cert.public_key,
            issuer=cert.issuer,
            serial=cert.serial,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError):
            ca.verify(forged)

    def test_revocation(self, ca, alice):
        cert = ca.issue("revocable@x", alice.public_key)
        ca.verify(cert)
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert.serial)
        with pytest.raises(CertificateError):
            ca.verify(cert)

    def test_validity_window(self, ca, alice):
        cert = ca.issue("timed@x", alice.public_key,
                        not_before=100.0, not_after=200.0)
        ca.verify(cert, at_time=150.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, at_time=50.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, at_time=250.0)

    def test_serialization_roundtrip(self, ca, alice):
        cert = ca.issue(alice.identity, alice.public_key)
        restored = Certificate.from_dict(cert.to_dict())
        assert restored == cert
        ca.verify(restored)


class TestKeyDirectory:
    def test_enroll_and_lookup(self, ca, alice):
        directory = KeyDirectory([ca])
        directory.enroll(alice, ca.name)
        assert directory.public_key_of(alice.identity) == alice.public_key
        assert alice.identity in directory

    def test_unknown_identity(self, ca):
        directory = KeyDirectory([ca])
        with pytest.raises(CertificateError):
            directory.public_key_of("nobody@nowhere")

    def test_untrusted_issuer_rejected(self, ca, other_ca, alice):
        directory = KeyDirectory([other_ca])
        cert = ca.issue(alice.identity, alice.public_key)
        with pytest.raises(CertificateError):
            directory.register(cert)

    def test_cross_enterprise_trust(self, ca, other_ca, backend):
        # Two enterprises, two CAs, one directory trusting both.
        directory = KeyDirectory([ca, other_ca])
        employee_a = KeyPair.generate("pa@acme.example", bits=1024,
                                      backend=backend)
        employee_b = KeyPair.generate("pb@megacorp.example", bits=1024,
                                      backend=backend)
        directory.enroll(employee_a, ca.name)
        directory.enroll(employee_b, other_ca.name)
        assert set(directory.identities()) == {
            "pa@acme.example", "pb@megacorp.example"
        }

    def test_revocation_blocks_lookup(self, backend):
        ca = CertificateAuthority("ca.solo", backend=backend)
        directory = KeyDirectory([ca])
        user = KeyPair.generate("victim@solo", bits=1024, backend=backend)
        cert = directory.enroll(user, ca.name)
        directory.public_key_of(user.identity)
        ca.revoke(cert.serial)
        with pytest.raises(CertificateError):
            directory.public_key_of(user.identity)

    def test_enroll_unknown_ca(self, alice):
        directory = KeyDirectory()
        with pytest.raises(CertificateError):
            directory.enroll(alice, "ca.ghost")

    def test_certificate_of(self, ca, alice):
        directory = KeyDirectory([ca])
        issued = directory.enroll(alice, ca.name)
        assert directory.certificate_of(alice.identity) == issued
