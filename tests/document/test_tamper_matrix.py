"""The adversarial tamper matrix: sections × mutation kinds × cache state.

:mod:`test_verify` checks individual hand-picked tamperings.  This
module sweeps the *full matrix* the incremental-verification cache must
survive: for every attackable section of a document (header, embedded
definition, each CER's execution result, signature, and — in the
advanced model — TFC timestamp) apply each mutation kind:

* **flip** — corrupt bytes in place (ciphertext, signature value,
  attribute values);
* **swap** — exchange content between two positions of the *same*
  document (everything remains individually well-formed and validly
  signed *somewhere*);
* **replay** — graft the corresponding, validly signed element from a
  *sibling* document (an independent execution of the same or a related
  workflow), the classic substitution attack against a cache keyed too
  loosely.

Every mutation must be rejected twice: by a cold verification and by a
verification running against a cache **pre-warmed on the pristine
document** — with the *same* exception type and message.  A cache hit
on any tampered content would be a security hole, so these tests are
the contract that :class:`~repro.document.vcache.VerificationCache`
keys on exact content, not on document identity.
"""

from __future__ import annotations

import copy
import itertools

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import build_initial_document
from repro.document.vcache import VerificationCache
from repro.document.verify import verify_document
from repro.errors import TamperDetected, VerificationError
from repro.workloads import build_world, figure9_responders
from repro.workloads.figure9 import (
    DESIGNER,
    PARTICIPANTS,
    figure_9a_definition,
    figure_9b_definition,
)

TFC_IDENTITY = "tfc@cloud.example"

# Standard CERs in the Fig. 9A basic-model document (two loop passes).
BASIC_CER_COUNT = 10
# TFC CERs in the Fig. 9B advanced-model document.
TFC_CER_COUNT = 10
MUTATIONS = ("flip", "swap", "replay")


# -- sibling documents (replay sources) --------------------------------------


@pytest.fixture(scope="module")
def sibling_basic(world, fig9a, backend):
    """An independent execution of Fig. 9A: same workflow, same
    participants, different process instance — every element validly
    signed *in its own document*."""
    initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                     backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    trace = runtime.run(initial, fig9a, figure9_responders(1), mode="basic")
    return trace.final_document


@pytest.fixture(scope="module")
def sibling_advanced(world, fig9b, backend):
    """An independent advanced-model run whose TFC clock starts at 100,
    so its (validly signed) timestamps differ from the pristine run's."""
    counter = itertools.count(100)
    tfc = TfcServer(world.keypair(TFC_IDENTITY), world.directory,
                    backend=backend, clock=lambda: float(next(counter)))
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc,
                              backend=backend)
    trace = runtime.run(initial, fig9b, figure9_responders(1),
                        mode="advanced")
    return trace.final_document


@pytest.fixture(scope="module")
def warm_cache(fig9a_trace, fig9b_run, world, backend):
    """A cache pre-warmed on the *pristine* documents under attack."""
    trace, _ = fig9b_run
    cache = VerificationCache()
    verify_document(fig9a_trace.final_document, world.directory, backend,
                    cache=cache)
    verify_document(trace.final_document, world.directory, backend,
                    cache=cache)
    return cache


@pytest.fixture()
def basic_doc(fig9a_trace):
    return fig9a_trace.final_document.clone()


@pytest.fixture()
def advanced_doc(fig9b_run):
    trace, _ = fig9b_run
    return trace.final_document.clone()


# -- the double rejection assertion ------------------------------------------


def assert_rejected_cold_and_warm(document, world, backend, cache):
    """Cold verify and cache-warm verify must both reject, identically."""
    with pytest.raises((TamperDetected, VerificationError)) as cold:
        verify_document(document, world.directory, backend)
    with pytest.raises((TamperDetected, VerificationError)) as warm:
        verify_document(document, world.directory, backend, cache=cache)
    assert type(warm.value) is type(cold.value)
    assert str(warm.value) == str(cold.value)
    # The tampered document must not have poisoned the cache: the
    # pristine originals must still fully verify against it.


def _flip_base64(node):
    text = node.text or ""
    node.text = ("QUJD" if not text.startswith("QUJD") else "REVG") + text[4:]


# -- execution results -------------------------------------------------------


class TestResultMatrix:
    """Every standard CER's ExecutionResult × every mutation kind."""

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_flip(self, basic_doc, world, backend, warm_cache, index):
        cer = basic_doc.results_section.findall("CER")[index]
        _flip_base64(cer.find("ExecutionResult/EncryptedData/CipherData/"
                              "CipherValue"))
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_swap(self, basic_doc, world, backend, warm_cache, index):
        # Exchange the result *contents* of two CERs (Ids stay put, so
        # only the digests can catch it).
        cers = basic_doc.results_section.findall("CER")
        result_a = cers[index].find("ExecutionResult")
        result_b = cers[(index + 1) % BASIC_CER_COUNT].find("ExecutionResult")
        a_children, b_children = list(result_a), list(result_b)
        for child in a_children:
            result_a.remove(child)
        for child in b_children:
            result_b.remove(child)
            result_a.append(child)
        for child in a_children:
            result_b.append(child)
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_replay(self, basic_doc, sibling_basic, world, backend,
                    warm_cache, index):
        # Substitute the same activity's result from the sibling run —
        # valid ciphertext, validly signed, wrong document.
        cer = basic_doc.results_section.findall("CER")[index]
        donor = sibling_basic.results_section.findall("CER")[index]
        own, grafted = cer.find("ExecutionResult"), \
            copy.deepcopy(donor.find("ExecutionResult"))
        cer.remove(own)
        cer.insert(list(cer).index(cer.find("Signature")), grafted)
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)


# -- signatures --------------------------------------------------------------


class TestSignatureMatrix:
    """Every standard CER's Signature × every mutation kind."""

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_flip(self, basic_doc, world, backend, warm_cache, index):
        cer = basic_doc.results_section.findall("CER")[index]
        _flip_base64(cer.find("Signature/SignatureValue"))
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_swap(self, basic_doc, world, backend, warm_cache, index):
        # Exchange whole signatures between two CERs of the document.
        cers = basic_doc.results_section.findall("CER")
        cer_a = cers[index]
        cer_b = cers[(index + 3) % BASIC_CER_COUNT]
        sig_a, sig_b = cer_a.find("Signature"), cer_b.find("Signature")
        pos_a, pos_b = list(cer_a).index(sig_a), list(cer_b).index(sig_b)
        cer_a.remove(sig_a)
        cer_b.remove(sig_b)
        cer_a.insert(pos_a, sig_b)
        cer_b.insert(pos_b, sig_a)
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    @pytest.mark.parametrize("index", range(BASIC_CER_COUNT))
    def test_replay(self, basic_doc, sibling_basic, world, backend,
                    warm_cache, index):
        # Graft the *same position's* signature from the sibling run:
        # same signer, same signature id, honestly produced — but over
        # the sibling's ciphertext, so every digest must mismatch here.
        cer = basic_doc.results_section.findall("CER")[index]
        donor = sibling_basic.results_section.findall("CER")[index]
        own = cer.find("Signature")
        pos = list(cer).index(own)
        cer.remove(own)
        cer.insert(pos, copy.deepcopy(donor.find("Signature")))
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)


# -- header ------------------------------------------------------------------


class TestHeaderMatrix:
    def test_flip(self, basic_doc, world, backend, warm_cache):
        basic_doc.header.set("ProcessId", "forged-instance-id")
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    def test_swap(self, basic_doc, world, backend, warm_cache):
        header = basic_doc.header
        pid, name = header.get("ProcessId"), header.get("ProcessName")
        header.set("ProcessId", name)
        header.set("ProcessName", pid)
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    def test_replay(self, basic_doc, sibling_basic, world, backend,
                    warm_cache):
        # Replace the whole header with the sibling instance's (validly
        # designer-signed there): instance-substitution attack.
        own = basic_doc.header
        root = basic_doc.root
        pos = list(root).index(own)
        root.remove(own)
        root.insert(pos, copy.deepcopy(sibling_basic.header))
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)


# -- embedded workflow definition --------------------------------------------


class TestDefinitionMatrix:
    def test_flip(self, basic_doc, world, backend, warm_cache):
        for node in basic_doc.root.iter("Activity"):
            if node.get("ActivityId") == "D":
                node.set("Participant", "mallory@evil.example")
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    def test_swap(self, basic_doc, world, backend, warm_cache):
        # Exchange the designated participants of two activities: both
        # identities stay legitimate, only the assignment changes.
        activities = [node for node in basic_doc.root.iter("Activity")
                      if node.get("ActivityId") in ("B1", "D")]
        assert len(activities) == 2
        first, second = activities
        p1, p2 = first.get("Participant"), second.get("Participant")
        first.set("Participant", p2)
        second.set("Participant", p1)
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)

    def test_replay(self, basic_doc, fig9b_run, world, backend, warm_cache):
        # Swap in another workflow's definition section wholesale (the
        # Fig. 9B definition, validly signed in its own documents).
        trace, _ = fig9b_run
        donor = trace.final_document
        def_cer = basic_doc.root.find("ApplicationDefinition/CER")
        own = def_cer.find("WorkflowDefinitionSection")
        foreign = donor.root.find(".//WorkflowDefinitionSection")
        pos = list(def_cer).index(own)
        def_cer.remove(own)
        def_cer.insert(pos, copy.deepcopy(foreign))
        assert_rejected_cold_and_warm(basic_doc, world, backend, warm_cache)


# -- TFC timestamps (advanced model) -----------------------------------------


class TestTimestampMatrix:
    def _tfc_cers(self, document):
        return [cer for cer in document.results_section.findall("CER")
                if cer.get("Kind") == "tfc"]

    @pytest.mark.parametrize("index", range(TFC_CER_COUNT))
    def test_flip(self, advanced_doc, world, backend, warm_cache, index):
        cer = self._tfc_cers(advanced_doc)[index]
        cer.find("Timestamp").set("Time", "0.0")
        assert_rejected_cold_and_warm(advanced_doc, world, backend,
                                      warm_cache)

    @pytest.mark.parametrize("index", range(TFC_CER_COUNT))
    def test_swap(self, advanced_doc, world, backend, warm_cache, index):
        # Exchange witnessed times between two TFC CERs (reordering
        # history while every timestamp value stays plausible).
        cers = self._tfc_cers(advanced_doc)
        ts_a = cers[index].find("Timestamp")
        ts_b = cers[(index + 1) % TFC_CER_COUNT].find("Timestamp")
        time_a, time_b = ts_a.get("Time"), ts_b.get("Time")
        ts_a.set("Time", time_b)
        ts_b.set("Time", time_a)
        assert_rejected_cold_and_warm(advanced_doc, world, backend,
                                      warm_cache)

    @pytest.mark.parametrize("index", range(TFC_CER_COUNT))
    def test_replay(self, advanced_doc, sibling_advanced, world, backend,
                    warm_cache, index):
        # Graft the corresponding timestamp from the offset-clock
        # sibling run — TFC-signed there, so a loosely keyed cache
        # might remember it as "good".
        cer = self._tfc_cers(advanced_doc)[index]
        donor = self._tfc_cers(sibling_advanced)[index]
        own = cer.find("Timestamp")
        pos = list(cer).index(own)
        cer.remove(own)
        cer.insert(pos, copy.deepcopy(donor.find("Timestamp")))
        assert_rejected_cold_and_warm(advanced_doc, world, backend,
                                      warm_cache)


# -- the cache itself stays honest -------------------------------------------


class TestCacheIntegrity:
    def test_pristine_documents_still_verify_warm(self, fig9a_trace,
                                                  fig9b_run, world, backend,
                                                  warm_cache):
        """After the whole adversarial sweep above ran against the
        shared cache, the pristine documents still verify — and every
        signature check is answered by the cache (the tamper attempts
        never polluted or evicted the honest entries)."""
        report = verify_document(fig9a_trace.final_document,
                                 world.directory, backend, cache=warm_cache)
        assert report.cache_hits == report.signatures_verified
        assert report.cache_misses == 0

        trace, _ = fig9b_run
        report = verify_document(trace.final_document, world.directory,
                                 backend, cache=warm_cache)
        assert report.cache_hits == report.signatures_verified
        assert report.cache_misses == 0

    def test_warm_report_equals_cold_report(self, fig9a_trace, world,
                                            backend, warm_cache):
        cold = verify_document(fig9a_trace.final_document, world.directory,
                               backend)
        warm = verify_document(fig9a_trace.final_document, world.directory,
                               backend, cache=warm_cache)
        assert warm == cold
        assert warm.cache_hits == warm.signatures_verified

    def test_tampered_signature_never_recorded(self, basic_doc, world,
                                               backend):
        """A failed verification must not grow the cache."""
        cache = VerificationCache()
        node = basic_doc.root.find(".//CER/Signature/SignatureValue")
        _flip_base64(node)
        with pytest.raises((TamperDetected, VerificationError)):
            verify_document(basic_doc, world.directory, backend, cache=cache)
        # Entries may exist for the CERs verified *before* the broken
        # one, but nothing for the tampered signature itself: verifying
        # the tampered document again still fails.
        with pytest.raises((TamperDetected, VerificationError)):
            verify_document(basic_doc, world.directory, backend, cache=cache)
