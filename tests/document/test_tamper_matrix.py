"""The adversarial tamper matrix: sections × mutation kinds × cache state.

:mod:`test_verify` checks individual hand-picked tamperings.  This
module sweeps the *full matrix* the incremental-verification cache must
survive: for every attackable section of a document (header, embedded
definition, each CER's execution result, signature, and — in the
advanced model — TFC timestamp) apply each mutation kind:

* **flip** — corrupt bytes in place (ciphertext, signature value,
  attribute values);
* **swap** — exchange content between two positions of the *same*
  document (everything remains individually well-formed and validly
  signed *somewhere*);
* **replay** — graft the corresponding, validly signed element from a
  *sibling* document (an independent execution of the same or a related
  workflow), the classic substitution attack against a cache keyed too
  loosely.

The mutations themselves live in the :mod:`tamper_cases` registry
(shared with the batched-verification differential suite).  Every
mutation must be rejected twice: by a cold verification and by a
verification running against a cache **pre-warmed on the pristine
document** — with the *same* exception type and message.  A cache hit
on any tampered content would be a security hole, so these tests are
the contract that :class:`~repro.document.vcache.VerificationCache`
keys on exact content, not on document identity.
"""

from __future__ import annotations

import pytest

from repro.document.vcache import VerificationCache
from repro.document.verify import verify_document
from repro.errors import TamperDetected, VerificationError

from .tamper_cases import TAMPER_CASES, flip_base64


@pytest.fixture(scope="module")
def warm_cache(fig9a_trace, fig9b_run, world, backend):
    """A cache pre-warmed on the *pristine* documents under attack."""
    trace, _ = fig9b_run
    cache = VerificationCache()
    verify_document(fig9a_trace.final_document, world.directory, backend,
                    cache=cache)
    verify_document(trace.final_document, world.directory, backend,
                    cache=cache)
    return cache


# -- the double rejection assertion ------------------------------------------


def assert_rejected_cold_and_warm(document, world, backend, cache):
    """Cold verify and cache-warm verify must both reject, identically."""
    with pytest.raises((TamperDetected, VerificationError)) as cold:
        verify_document(document, world.directory, backend)
    with pytest.raises((TamperDetected, VerificationError)) as warm:
        verify_document(document, world.directory, backend, cache=cache)
    assert type(warm.value) is type(cold.value)
    assert str(warm.value) == str(cold.value)
    # The tampered document must not have poisoned the cache: the
    # pristine originals must still fully verify against it.


# -- the full matrix ---------------------------------------------------------


class TestTamperMatrix:
    """Every registry case is rejected cold *and* against a warm cache."""

    @pytest.mark.parametrize("case", TAMPER_CASES, ids=lambda c: c.name)
    def test_rejected(self, case, basic_doc, advanced_doc, tamper_donors,
                      world, backend, warm_cache):
        document = basic_doc if case.model == "basic" else advanced_doc
        donor = tamper_donors[case.donor] if case.donor else None
        case.apply(document, donor)
        assert_rejected_cold_and_warm(document, world, backend, warm_cache)


# -- the cache itself stays honest -------------------------------------------


class TestCacheIntegrity:
    def test_pristine_documents_still_verify_warm(self, fig9a_trace,
                                                  fig9b_run, world, backend,
                                                  warm_cache):
        """After the whole adversarial sweep above ran against the
        shared cache, the pristine documents still verify — and every
        signature check is answered by the cache (the tamper attempts
        never polluted or evicted the honest entries)."""
        report = verify_document(fig9a_trace.final_document,
                                 world.directory, backend, cache=warm_cache)
        assert report.cache_hits == report.signatures_verified
        assert report.cache_misses == 0

        trace, _ = fig9b_run
        report = verify_document(trace.final_document, world.directory,
                                 backend, cache=warm_cache)
        assert report.cache_hits == report.signatures_verified
        assert report.cache_misses == 0

    def test_warm_report_equals_cold_report(self, fig9a_trace, world,
                                            backend, warm_cache):
        cold = verify_document(fig9a_trace.final_document, world.directory,
                               backend)
        warm = verify_document(fig9a_trace.final_document, world.directory,
                               backend, cache=warm_cache)
        assert warm == cold
        assert warm.cache_hits == warm.signatures_verified

    def test_tampered_signature_never_recorded(self, basic_doc, world,
                                               backend):
        """A failed verification must not grow the cache."""
        cache = VerificationCache()
        node = basic_doc.root.find(".//CER/Signature/SignatureValue")
        flip_base64(node)
        with pytest.raises((TamperDetected, VerificationError)):
            verify_document(basic_doc, world.directory, backend, cache=cache)
        # Entries may exist for the CERs verified *before* the broken
        # one, but nothing for the tampered signature itself: verifying
        # the tampered document again still fails.
        with pytest.raises((TamperDetected, VerificationError)):
            verify_document(basic_doc, world.directory, backend, cache=cache)
