"""Cross-backend incremental verification.

The two crypto backends (:class:`~repro.crypto.backend.PureBackend`,
pure Python, and :class:`~repro.crypto.fast.FastBackend`, OpenSSL) must
be interchangeable at every trust boundary: a document signed by AEAs
running one backend verifies under the other, and — because the
:class:`~repro.document.vcache.VerificationCache` keys on canonical
content digests computed with :mod:`hashlib`, never with backend
primitives — one shared cache serves both.  An enterprise on the pure
backend and a cloud portal on OpenSSL literally share verification
work.
"""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime
from repro.document import build_initial_document
from repro.document.vcache import VerificationCache
from repro.document.verify import verify_document
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    participant_pool,
)

DESIGNER = "designer@enterprise.example"
CHAIN = 5


@pytest.fixture(scope="module")
def pool_world(backend):
    """A small PKI for the generic chain participants.

    Key *generation* uses the fast backend, but the keys themselves are
    plain integers — usable by either backend for signing/verifying.
    """
    from repro.workloads import build_world

    return build_world([DESIGNER, *participant_pool(6)], bits=1024,
                       backend=backend)


@pytest.fixture(scope="module")
def pure_signed_doc(pool_world, pure_backend):
    """A chain executed entirely on the pure backend."""
    definition = chain_definition(CHAIN, participant_pool(6),
                                  designer=DESIGNER)
    initial = build_initial_document(
        definition, pool_world.keypair(DESIGNER), backend=pure_backend
    )
    runtime = InMemoryRuntime(pool_world.directory, pool_world.keypairs,
                              backend=pure_backend)
    trace = runtime.run(initial, definition, auto_responders(definition),
                        mode="basic")
    return trace.final_document


@pytest.fixture(scope="module")
def fast_signed_doc(fig9a_trace):
    """The shared Fig. 9A run — signed on the fast backend."""
    return fig9a_trace.final_document


class TestPureSignedFastVerified:
    def test_cold_verify_interop(self, pure_signed_doc, pool_world, backend,
                                 pure_backend):
        pure_report = verify_document(pure_signed_doc, pool_world.directory,
                                      pure_backend)
        fast_report = verify_document(pure_signed_doc, pool_world.directory,
                                      backend)
        assert fast_report == pure_report
        assert fast_report.signatures_verified == CHAIN + 1

    def test_cache_warmed_by_pure_serves_fast(self, pure_signed_doc,
                                              pool_world, backend,
                                              pure_backend):
        cache = VerificationCache()
        warmup = verify_document(pure_signed_doc, pool_world.directory,
                                 pure_backend, cache=cache)
        assert warmup.cache_misses == warmup.signatures_verified

        crossed = verify_document(pure_signed_doc, pool_world.directory,
                                  backend, cache=cache)
        assert crossed.cache_hits == crossed.signatures_verified
        assert crossed.cache_misses == 0
        assert crossed == warmup


class TestFastSignedPureVerified:
    def test_cold_verify_interop(self, fast_signed_doc, world, backend,
                                 pure_backend):
        fast_report = verify_document(fast_signed_doc, world.directory,
                                      backend)
        pure_report = verify_document(fast_signed_doc, world.directory,
                                      pure_backend)
        assert pure_report == fast_report

    def test_cache_warmed_by_fast_serves_pure(self, fast_signed_doc, world,
                                              backend, pure_backend):
        cache = VerificationCache()
        warmup = verify_document(fast_signed_doc, world.directory, backend,
                                 cache=cache)
        assert warmup.cache_misses == warmup.signatures_verified

        crossed = verify_document(fast_signed_doc, world.directory,
                                  pure_backend, cache=cache)
        assert crossed.cache_hits == crossed.signatures_verified
        assert crossed.cache_misses == 0
        assert crossed == warmup


class TestBackendIndependentKeys:
    def test_cache_keys_do_not_depend_on_backend(self, pure_signed_doc,
                                                 pool_world, backend,
                                                 pure_backend):
        """The same document warms two caches to identical key sets
        regardless of which backend did the verifying."""
        cache_pure, cache_fast = VerificationCache(), VerificationCache()
        verify_document(pure_signed_doc, pool_world.directory, pure_backend,
                        cache=cache_pure)
        verify_document(pure_signed_doc, pool_world.directory, backend,
                        cache=cache_fast)
        assert set(cache_pure._entries) == set(cache_fast._entries)
        assert len(cache_pure._entries) == CHAIN + 1

    def test_parallel_cold_verify_matches(self, fast_signed_doc, world,
                                          backend):
        serial = verify_document(fast_signed_doc, world.directory, backend)
        pooled = verify_document(fast_signed_doc, world.directory, backend,
                                 workers=4)
        assert pooled == serial
