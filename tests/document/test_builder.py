"""Initial-document construction by the workflow designer."""

from __future__ import annotations

import pytest

from repro.document.builder import (
    build_initial_document,
    parse_result_bundle,
    serialize_result_bundle,
)
from repro.document.document import Dra4wfmsDocument
from repro.document.sections import DESIGNER_ACTIVITY, KIND_DEFINITION
from repro.errors import DocumentFormatError
from repro.workloads.figure9 import DESIGNER, figure_9a_definition


@pytest.fixture()
def initial(world, fig9a, backend):
    return build_initial_document(fig9a, world.keypair(DESIGNER),
                                  backend=backend)


class TestInitialDocument:
    def test_structure(self, initial, fig9a):
        assert initial.process_name == fig9a.process_name
        assert len(initial.process_id) == 32
        cer = initial.definition_cer
        assert cer.kind == KIND_DEFINITION
        assert cer.activity_id == DESIGNER_ACTIVITY
        assert cer.participant == DESIGNER
        assert initial.designer == DESIGNER

    def test_definition_parseable_without_keys(self, initial, fig9a):
        assert not initial.definition_is_encrypted
        assert initial.definition().to_dict() == fig9a.to_dict()

    def test_designer_signature_covers_header(self, initial):
        referenced = set(initial.definition_cer.signature.referenced_ids)
        assert {"hdr", "wfdef"} <= referenced

    def test_explicit_process_id(self, world, fig9a, backend):
        document = build_initial_document(
            fig9a, world.keypair(DESIGNER), process_id="custom-id-1",
            backend=backend,
        )
        assert document.process_id == "custom-id-1"

    def test_fresh_process_ids(self, world, fig9a, backend):
        a = build_initial_document(fig9a, world.keypair(DESIGNER),
                                   backend=backend)
        b = build_initial_document(fig9a, world.keypair(DESIGNER),
                                   backend=backend)
        assert a.process_id != b.process_id

    def test_serialization_roundtrip(self, initial):
        restored = Dra4wfmsDocument.from_bytes(initial.to_bytes())
        assert restored.to_bytes() == initial.to_bytes()
        assert restored.process_id == initial.process_id

    def test_wrong_designer_key_rejected(self, world, fig9a, backend):
        impostor = world.keypair("submitter@acme.example")
        with pytest.raises(DocumentFormatError, match="designer"):
            build_initial_document(fig9a, impostor, backend=backend)

    def test_invalid_definition_rejected(self, world, backend):
        from repro.model.definition import WorkflowDefinition

        with pytest.raises(Exception):
            build_initial_document(WorkflowDefinition("empty", DESIGNER),
                                   world.keypair(DESIGNER), backend=backend)


class TestEncryptedDefinition:
    def test_encrypt_for_participants(self, world, fig9a, backend):
        readers = {
            identity: world.directory.public_key_of(identity)
            for identity in fig9a.participants
        }
        document = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for=readers, backend=backend,
        )
        assert document.definition_is_encrypted

        reader = fig9a.activity("A").participant
        keypair = world.keypair(reader)
        restored = document.definition(reader, keypair.private_key, backend)
        assert restored.to_dict() == fig9a.to_dict()

    def test_non_reader_cannot_parse(self, world, fig9a, backend,
                                     outsider_keypair):
        readers = {
            DESIGNER: world.directory.public_key_of(DESIGNER),
        }
        document = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for=readers, backend=backend,
        )
        with pytest.raises(Exception):
            document.definition(outsider_keypair.identity,
                                outsider_keypair.private_key, backend)

    def test_missing_credentials_rejected(self, world, fig9a, backend):
        document = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for={
                DESIGNER: world.directory.public_key_of(DESIGNER),
            },
            backend=backend,
        )
        with pytest.raises(DocumentFormatError, match="encrypted"):
            document.definition()


class TestResultBundle:
    def test_roundtrip(self):
        values = {"X": "alpha", "Y": "beta & <gamma>", "empty": ""}
        assert parse_result_bundle(serialize_result_bundle(values)) == values

    def test_deterministic(self):
        a = serialize_result_bundle({"b": "2", "a": "1"})
        b = serialize_result_bundle({"a": "1", "b": "2"})
        assert a == b

    def test_malformed_rejected(self):
        with pytest.raises(DocumentFormatError):
            parse_result_bundle(b"<NotAResult/>")
