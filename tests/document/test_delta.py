"""Content-addressed chunking: manifests, caches, and the delta codec.

The delta layer's contract is exact byte equivalence: assembling the
chunks of any document version must reproduce ``document.to_bytes()``
bit for bit, and every corruption — wrong chunk, truncated chunk,
reordered manifest — must be rejected loudly, never silently repaired.
These tests pin that contract on real executed workflow documents
(the session-scoped Fig. 9A trace) rather than synthetic XML.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.document.delta import (
    Chunk,
    ChunkCache,
    DeltaDocument,
    Manifest,
    assemble,
    chunk_bytes,
    chunk_digest,
    chunk_document,
    decode_delta,
    encode_delta,
)
from repro.document.document import Dra4wfmsDocument
from repro.errors import DeltaError, DeltaMismatch


@pytest.fixture()
def final_doc(fig9a_trace) -> Dra4wfmsDocument:
    """Mutable copy of the executed Fig. 9A final document."""
    return fig9a_trace.final_document.clone()


def hop_docs(fig9a_trace):
    return [step.document for step in fig9a_trace.steps]


# -- chunking ----------------------------------------------------------------


class TestChunking:
    def test_concatenation_is_canonical_bytes(self, final_doc):
        pairs = chunk_bytes(final_doc)
        assert b"".join(data for _, data in pairs) == final_doc.to_bytes()

    def test_chunk_fields_match_payloads(self, final_doc):
        for chunk, data in chunk_bytes(final_doc):
            assert chunk.length == len(data)
            assert chunk.digest == chunk_digest(data)

    def test_one_cer_chunk_per_cer(self, final_doc):
        pairs = chunk_bytes(final_doc)
        cer_chunks = [c for c, _ in pairs if c.is_cer]
        assert len(cer_chunks) == len(final_doc.cers(include_definition=True))

    def test_manifest_describes_document(self, final_doc):
        manifest, payloads = chunk_document(final_doc)
        blob = final_doc.to_bytes()
        assert manifest.process_id == final_doc.process_id
        assert manifest.doc_bytes == len(blob)
        assert manifest.doc_digest == hashlib.sha256(blob).hexdigest()
        assert set(manifest.chunk_digests) == set(payloads)

    def test_assemble_reproduces_document(self, final_doc):
        manifest, payloads = chunk_document(final_doc)
        assert assemble(manifest, payloads) == final_doc.to_bytes()

    def test_appending_changes_only_new_chunks(self, fig9a_trace):
        """Consecutive hop versions share every chunk except the new CER
        (and the glue around the mutated sections) — the O(new CER)
        routing claim."""
        documents = hop_docs(fig9a_trace)
        previous: set[str] = set()
        for hop, document in enumerate(documents):
            manifest, _ = chunk_document(document)
            fresh = [c for c in manifest.chunks if c.digest not in previous]
            if hop > 0:
                fresh_cers = [c for c in fresh if c.is_cer]
                assert len(fresh_cers) <= 2, (
                    f"hop {hop}: expected O(1) new CER chunks, got "
                    f"{len(fresh_cers)}"
                )
            previous.update(manifest.chunk_digests)


# -- manifest serialization --------------------------------------------------


class TestManifest:
    def test_round_trip(self, final_doc):
        manifest, _ = chunk_document(final_doc)
        assert Manifest.from_bytes(manifest.to_bytes()) == manifest

    def test_serialization_is_deterministic(self, final_doc):
        manifest, _ = chunk_document(final_doc)
        assert manifest.to_bytes() == manifest.to_bytes()

    @pytest.mark.parametrize("data", [
        b"", b"not json", b"\xff\xfe", b"[]", b'{"format":"bogus/9"}',
        b'{"format":"dra4wfms-manifest/1"}',
        b'{"format":"dra4wfms-manifest/1","process_id":"p",'
        b'"doc_digest":"d","doc_bytes":1,"chunks":[["x"]]}',
    ])
    def test_malformed_rejected(self, data):
        with pytest.raises(DeltaError):
            Manifest.from_bytes(data)


# -- assembly failure modes --------------------------------------------------


class TestAssembly:
    def test_corrupted_chunk_rejected(self, final_doc):
        manifest, payloads = chunk_document(final_doc)
        victim = manifest.chunks[0].digest
        payloads[victim] = payloads[victim] + b"!"
        with pytest.raises(DeltaMismatch, match="content"):
            assemble(manifest, payloads)

    def test_swapped_chunks_rejected(self, final_doc):
        """A chunk whose bytes match a *different* digest is still a
        mismatch at its own manifest position."""
        manifest, payloads = chunk_document(final_doc)
        a, b = manifest.chunks[0].digest, manifest.chunks[1].digest
        payloads[a], payloads[b] = payloads[b], payloads[a]
        with pytest.raises(DeltaMismatch):
            assemble(manifest, payloads)

    def test_missing_chunk_raises_key_error(self, final_doc):
        manifest, payloads = chunk_document(final_doc)
        del payloads[manifest.chunks[-1].digest]
        with pytest.raises(KeyError):
            assemble(manifest, payloads)

    def test_wrong_doc_digest_rejected(self, final_doc):
        manifest, payloads = chunk_document(final_doc)
        forged = Manifest(
            process_id=manifest.process_id,
            doc_digest="0" * 64,
            doc_bytes=manifest.doc_bytes,
            chunks=manifest.chunks,
        )
        with pytest.raises(DeltaMismatch, match="manifest digest"):
            assemble(forged, payloads)


# -- chunk cache -------------------------------------------------------------


class TestChunkCache:
    def test_add_and_lookup(self):
        cache = ChunkCache()
        data = b"<CER>x</CER>"
        digest = chunk_digest(data)
        cache.add(digest, data)
        assert digest in cache
        assert len(cache) == 1
        assert cache[digest] == data
        # Membership probes count as traffic too, so reports see every
        # lookup a peer made: one hit from `in`, one from `[]`.
        assert cache.hits == 2
        assert cache.misses == 0
        assert cache.total_bytes == len(data)

    def test_miss_counts_and_raises(self):
        cache = ChunkCache()
        with pytest.raises(KeyError):
            cache["deadbeef"]
        assert cache.misses == 1

    def test_wrong_digest_refused(self):
        cache = ChunkCache()
        with pytest.raises(DeltaMismatch, match="wrong digest"):
            cache.add("0" * 64, b"whatever")
        assert len(cache) == 0

    def test_first_write_wins(self):
        cache = ChunkCache()
        data = b"payload"
        digest = chunk_digest(data)
        cache.add(digest, data)
        cache.add(digest, data)
        assert len(cache) == 1


class TestBoundedChunkCache:
    """LRU byte-budgeted mode (``max_bytes`` set)."""

    @staticmethod
    def _entry(label: str) -> tuple[str, bytes]:
        data = f"<CER>{label}</CER>".encode().ljust(100, b" ")
        return chunk_digest(data), data

    def test_negative_budget_rejected(self):
        with pytest.raises(DeltaError, match="byte budget"):
            ChunkCache(max_bytes=-1)

    def test_evicts_least_recently_used_first(self):
        cache = ChunkCache(max_bytes=250)  # room for two 100 B chunks
        d1, c1 = self._entry("one")
        d2, c2 = self._entry("two")
        d3, c3 = self._entry("three")
        cache.add(d1, c1)
        cache.add(d2, c2)
        assert d1 in cache  # touch: d1 is now warmer than d2
        cache.add(d3, c3)
        assert d2 not in cache
        assert d1 in cache and d3 in cache
        assert cache.evictions == 1
        assert cache.evicted_bytes == len(c2)

    def test_total_bytes_matches_audit_through_churn(self):
        cache = ChunkCache(max_bytes=350)
        for i in range(40):
            digest, data = self._entry(f"churn-{i}")
            cache.add(digest, data)
            if i % 3 == 0:
                digest in cache  # interleave touches  # noqa: B015
            assert cache.total_bytes == cache.audit_total_bytes()
        assert cache.total_bytes <= 350
        assert cache.evictions > 0
        assert cache.total_bytes == cache.audit_total_bytes()

    def test_duplicate_add_does_not_double_count(self):
        cache = ChunkCache(max_bytes=1000)
        digest, data = self._entry("dup")
        cache.add(digest, data)
        cache.add(digest, data)
        assert cache.total_bytes == len(data)
        assert cache.total_bytes == cache.audit_total_bytes()

    def test_zero_budget_keeps_newest_chunk_resident(self):
        """Even over budget the newest chunk stays — evicting the bytes
        in active use would only force an immediate refetch."""
        cache = ChunkCache(max_bytes=0)
        d1, c1 = self._entry("a")
        d2, c2 = self._entry("b")
        cache.add(d1, c1)
        assert len(cache) == 1
        cache.add(d2, c2)
        assert len(cache) == 1
        assert d2 in cache
        assert cache.evictions == 1

    def test_oversized_single_chunk_stays_resident(self):
        cache = ChunkCache(max_bytes=10)
        digest, data = self._entry("huge")  # 100 B > 10 B budget
        cache.add(digest, data)
        assert digest in cache
        assert cache.total_bytes == len(data)

    def test_decode_survives_tiny_budget(self, final_doc):
        """A starved cache must never yield a wrong document — decode
        reads fresh delta chunks before consulting the cache."""
        delta = encode_delta(final_doc)
        cache = ChunkCache(max_bytes=64)
        assert decode_delta(delta, cache) == final_doc.to_bytes()
        assert cache.total_bytes <= max(
            64, max(len(c) for c in delta.chunks.values())
        )

    def test_unbounded_cache_never_evicts(self):
        cache = ChunkCache()
        for i in range(200):
            digest, data = self._entry(f"n{i}")
            cache.add(digest, data)
        assert cache.evictions == 0
        assert len(cache) == 200
        assert cache.total_bytes == cache.audit_total_bytes()


# -- delta codec -------------------------------------------------------------


class TestDeltaCodec:
    def test_cold_round_trip(self, final_doc):
        delta = encode_delta(final_doc)
        assert decode_delta(delta, ChunkCache()) == final_doc.to_bytes()
        # A cold encode ships everything: wire ≥ document size.
        assert delta.wire_bytes >= delta.full_bytes

    def test_known_chunks_are_omitted(self, fig9a_trace):
        documents = hop_docs(fig9a_trace)
        cache = ChunkCache()
        decode_delta(encode_delta(documents[0]), cache)
        delta = encode_delta(documents[1], known=cache)
        assert delta.wire_bytes < documents[1].size_bytes
        assert decode_delta(delta, cache) == documents[1].to_bytes()

    def test_incremental_hops_stay_small(self, fig9a_trace):
        """Per-hop wire cost over a whole execution is a fraction of
        re-shipping every version — the routing win end to end."""
        documents = hop_docs(fig9a_trace)
        cache = ChunkCache()
        wire = full = 0
        for hop, document in enumerate(documents):
            known = cache if hop > 0 else None
            delta = encode_delta(document, known=known)
            assert decode_delta(delta, cache) == document.to_bytes()
            wire += delta.wire_bytes
            full += document.size_bytes
        assert wire < full / 2

    def test_over_assumed_chunk_fails_closed(self, final_doc):
        """A sender that wrongly assumes the receiver holds a chunk
        produces a KeyError on decode, never silent corruption."""
        manifest, payloads = chunk_document(final_doc)
        assumed = manifest.chunks[0].digest
        delta = DeltaDocument(
            manifest=manifest,
            chunks={d: b for d, b in payloads.items() if d != assumed},
        )
        with pytest.raises(KeyError):
            decode_delta(delta, ChunkCache())

    def test_decoded_bytes_reparse(self, final_doc):
        data = decode_delta(encode_delta(final_doc), ChunkCache())
        assert Dra4wfmsDocument.from_bytes(data).to_bytes() == data


# -- memo interaction --------------------------------------------------------


class TestMemoInteraction:
    def test_chunking_uses_memo_without_changing_bytes(self, final_doc):
        cold = [d for _, d in chunk_bytes(final_doc)]
        final_doc.to_bytes()  # populate the memo
        warm = [d for _, d in chunk_bytes(final_doc)]
        assert warm == cold

    def test_direct_mutation_requires_cache_drop(self, final_doc):
        """The documented contract: mutate behind the document's back →
        call drop_canonical_cache() → serialization reflects the edit."""
        final_doc.to_bytes()
        final_doc.header.set("Tampered", "yes")
        final_doc.drop_canonical_cache()
        assert b'Tampered="yes"' in final_doc.to_bytes()
        pairs = chunk_bytes(final_doc)
        assert b"".join(d for _, d in pairs) == final_doc.to_bytes()

    def test_clone_is_byte_identical_with_cold_memo(self, final_doc):
        final_doc.to_bytes()
        twin = final_doc.clone()
        assert twin.to_bytes() == final_doc.to_bytes()
        manifest_a, _ = chunk_document(final_doc)
        manifest_b, _ = chunk_document(twin)
        assert manifest_a == manifest_b
