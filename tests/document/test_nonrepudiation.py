"""Algorithm 1: nonrepudiation scopes and their invariants."""

from __future__ import annotations

import pytest

from repro.document.nonrepudiation import (
    covers_whole_document,
    frontier_cers,
    nonrepudiation_scope,
    nonrepudiation_scope_ids,
    signature_owner_map,
    signs_relation,
)
from repro.document.sections import KIND_STANDARD, KIND_TFC
from repro.errors import DocumentFormatError


@pytest.fixture()
def final_doc(fig9a_trace):
    return fig9a_trace.final_document


class TestAlgorithm1:
    def test_scope_includes_self(self, final_doc):
        cer = final_doc.find_cer("A", 0)
        scope = nonrepudiation_scope_ids(final_doc, cer)
        assert cer.cer_id in scope

    def test_first_activity_scope_is_definition_plus_self(self, final_doc):
        cer = final_doc.find_cer("A", 0)
        scope = nonrepudiation_scope_ids(final_doc, cer)
        assert scope == {"cer-def", cer.cer_id}

    def test_and_join_scope_covers_both_branches(self, final_doc):
        cer = final_doc.find_cer("C", 0)
        scope = nonrepudiation_scope_ids(final_doc, cer)
        assert {"cer-A-0", "cer-B1-0", "cer-B2-0", "cer-C-0",
                "cer-def"} == scope

    def test_loop_iteration_extends_scope(self, final_doc):
        first = nonrepudiation_scope_ids(final_doc,
                                         final_doc.find_cer("D", 0))
        second = nonrepudiation_scope_ids(final_doc,
                                          final_doc.find_cer("D", 1))
        assert first < second
        assert len(first) == 6 and len(second) == 11

    def test_final_cer_covers_whole_document(self, final_doc):
        final_cer = final_doc.find_cer("D", 1)
        assert covers_whole_document(final_doc, final_cer)

    def test_intermediate_cer_does_not_cover_document(self, final_doc):
        assert not covers_whole_document(final_doc,
                                         final_doc.find_cer("B1", 0))

    def test_scope_is_monotone_along_execution(self, final_doc):
        # Each step's scope contains its predecessors' scopes.
        order = [("A", 0), ("B1", 0), ("C", 0), ("D", 0), ("A", 1),
                 ("C", 1), ("D", 1)]
        previous: set[str] = set()
        for activity_id, iteration in order:
            cer = final_doc.find_cer(activity_id, iteration)
            scope = nonrepudiation_scope_ids(final_doc, cer)
            assert previous <= scope
            previous = scope

    def test_scope_closure_property(self, final_doc):
        # Γ is closed under the signs relation: scopes of members are
        # subsets (Algorithm 1's fixed point).
        relation = signs_relation(final_doc)
        by_id = {c.cer_id: c for c in final_doc.cers()}
        for cer in final_doc.cers():
            gamma = nonrepudiation_scope_ids(final_doc, cer)
            for member in gamma:
                assert relation[member] <= gamma
                member_scope = nonrepudiation_scope_ids(
                    final_doc, by_id[member]
                )
                assert member_scope <= gamma

    def test_foreign_cer_rejected(self, final_doc, fig9b_run):
        other_trace, _ = fig9b_run
        foreign = other_trace.final_document.cers()[1]
        with pytest.raises(DocumentFormatError):
            nonrepudiation_scope(final_doc, foreign)


class TestAdvancedModelScopes:
    def test_tfc_cer_covers_intermediate(self, fig9b_run):
        trace, _ = fig9b_run
        document = trace.final_document
        tfc_cer = document.find_cer("A", 0, KIND_TFC)
        scope = nonrepudiation_scope_ids(document, tfc_cer)
        assert "cerit-A-0" in scope

    def test_final_tfc_cer_covers_everything(self, fig9b_run):
        trace, _ = fig9b_run
        document = trace.final_document
        final_cer = document.find_cer("D", 1, KIND_TFC)
        assert covers_whole_document(document, final_cer)

    def test_scope_alternates_participant_and_tfc(self, fig9b_run):
        trace, tfc = fig9b_run
        document = trace.final_document
        cer = document.find_cer("B1", 0, KIND_TFC)
        scope = nonrepudiation_scope(document, cer)
        participants = {c.participant for c in scope}
        assert tfc.identity in participants
        assert "reviewer1@acme.example" in participants


class TestFrontier:
    def test_final_frontier_is_last_activity(self, final_doc):
        frontier = frontier_cers(final_doc)
        assert [(c.activity_id, c.iteration) for c in frontier] == [("D", 1)]

    def test_initial_frontier_is_definition(self, world, fig9a, backend):
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER

        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        frontier = frontier_cers(initial)
        assert [c.cer_id for c in frontier] == ["cer-def"]

    def test_signature_owner_map(self, final_doc):
        owners = signature_owner_map(final_doc)
        assert owners["sig-def"].cer_id == "cer-def"
        assert owners["sig-D-1"].activity_id == "D"
        assert len(owners) == 11


class TestSignsRelation:
    def test_relation_shape_basic(self, final_doc):
        relation = signs_relation(final_doc)
        assert relation["cer-def"] == set()
        assert relation["cer-A-0"] == {"cer-def"}
        assert relation["cer-C-0"] == {"cer-B1-0", "cer-B2-0"}
        assert relation["cer-A-1"] == {"cer-D-0"}

    def test_relation_shape_advanced(self, fig9b_run):
        trace, _ = fig9b_run
        relation = signs_relation(trace.final_document)
        # participant's intermediate signs the predecessor's TFC CER;
        # the TFC CER signs the intermediate.
        assert relation["cerit-B1-0"] == {"certfc-A-0"}
        assert relation["certfc-B1-0"] == {"cerit-B1-0"}


class TestAllScopes:
    def test_matches_per_cer_algorithm(self, final_doc):
        from repro.document.nonrepudiation import all_scopes

        scopes = all_scopes(final_doc)
        for cer in final_doc.cers():
            assert scopes[cer.cer_id] == \
                nonrepudiation_scope_ids(final_doc, cer)

    def test_matches_on_advanced_document(self, fig9b_run):
        from repro.document.nonrepudiation import all_scopes

        trace, _ = fig9b_run
        document = trace.final_document
        scopes = all_scopes(document)
        assert len(scopes) == len(document.cers())
        for cer in document.cers():
            assert scopes[cer.cer_id] == \
                nonrepudiation_scope_ids(document, cer)
