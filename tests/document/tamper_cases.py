"""The tamper-matrix case registry, shared by two suites.

Each :class:`TamperCase` is one adversarial mutation of a fully
executed document: sections × mutation kinds, exactly the sweep
``test_tamper_matrix.py`` runs against the verification cache.  The
cases live here — not inline in that module — so the batched-
verification differential suite (``test_batch_differential.py``) can
replay the *same* attacks and assert that batched RSA verification
reaches the same verdict, with the same failing-signature attribution,
as the sequential path.

A case's ``apply(document, donor)`` mutates *document* in place;
``donor`` names which pristine sibling document the mutation grafts
from (``None`` for self-contained mutations):

=================  ======================================================
donor key          fixture it resolves to
=================  ======================================================
sibling_basic      independent Fig. 9A run (replay source, basic model)
sibling_advanced   independent Fig. 9B run, offset TFC clock
fig9b_doc          the pristine Fig. 9B document (cross-workflow graft)
=================  ======================================================
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable
from xml.etree import ElementTree as ET

__all__ = [
    "BASIC_CER_COUNT",
    "TFC_CER_COUNT",
    "TamperCase",
    "TAMPER_CASES",
    "flip_base64",
    "tfc_cers",
]

# Standard CERs in the Fig. 9A basic-model document (two loop passes).
BASIC_CER_COUNT = 10
# TFC CERs in the Fig. 9B advanced-model document.
TFC_CER_COUNT = 10


@dataclass(frozen=True)
class TamperCase:
    """One adversarial mutation: which document, what to do to it."""

    name: str
    #: ``"basic"`` (Fig. 9A document) or ``"advanced"`` (Fig. 9B).
    model: str
    #: Donor-document key (see module docstring) or ``None``.
    donor: str | None
    apply: Callable[[object, object | None], None]


def flip_base64(node: ET.Element) -> None:
    """Corrupt a base64 text payload while keeping it well-formed."""
    text = node.text or ""
    node.text = ("QUJD" if not text.startswith("QUJD") else "REVG") + text[4:]


def tfc_cers(document) -> list[ET.Element]:
    """The TFC CER elements of an advanced-model document, in order."""
    return [cer for cer in document.results_section.findall("CER")
            if cer.get("Kind") == "tfc"]


# -- execution results -------------------------------------------------------


def _result_flip(index: int):
    def apply(document, donor) -> None:
        cer = document.results_section.findall("CER")[index]
        flip_base64(cer.find("ExecutionResult/EncryptedData/CipherData/"
                             "CipherValue"))
    return apply


def _result_swap(index: int):
    # Exchange the result *contents* of two CERs (Ids stay put, so only
    # the digests can catch it).
    def apply(document, donor) -> None:
        cers = document.results_section.findall("CER")
        result_a = cers[index].find("ExecutionResult")
        result_b = cers[(index + 1) % BASIC_CER_COUNT].find("ExecutionResult")
        a_children, b_children = list(result_a), list(result_b)
        for child in a_children:
            result_a.remove(child)
        for child in b_children:
            result_b.remove(child)
            result_a.append(child)
        for child in a_children:
            result_b.append(child)
    return apply


def _result_replay(index: int):
    # Substitute the same activity's result from the sibling run —
    # valid ciphertext, validly signed, wrong document.
    def apply(document, donor) -> None:
        cer = document.results_section.findall("CER")[index]
        donor_cer = donor.results_section.findall("CER")[index]
        own = cer.find("ExecutionResult")
        grafted = copy.deepcopy(donor_cer.find("ExecutionResult"))
        cer.remove(own)
        cer.insert(list(cer).index(cer.find("Signature")), grafted)
    return apply


# -- signatures --------------------------------------------------------------


def _signature_flip(index: int):
    def apply(document, donor) -> None:
        cer = document.results_section.findall("CER")[index]
        flip_base64(cer.find("Signature/SignatureValue"))
    return apply


def _signature_swap(index: int):
    # Exchange whole signatures between two CERs of the document.
    def apply(document, donor) -> None:
        cers = document.results_section.findall("CER")
        cer_a = cers[index]
        cer_b = cers[(index + 3) % BASIC_CER_COUNT]
        sig_a, sig_b = cer_a.find("Signature"), cer_b.find("Signature")
        pos_a, pos_b = list(cer_a).index(sig_a), list(cer_b).index(sig_b)
        cer_a.remove(sig_a)
        cer_b.remove(sig_b)
        cer_a.insert(pos_a, sig_b)
        cer_b.insert(pos_b, sig_a)
    return apply


def _signature_replay(index: int):
    # Graft the *same position's* signature from the sibling run: same
    # signer, same signature id, honestly produced — but over the
    # sibling's ciphertext, so every digest must mismatch here.
    def apply(document, donor) -> None:
        cer = document.results_section.findall("CER")[index]
        donor_cer = donor.results_section.findall("CER")[index]
        own = cer.find("Signature")
        pos = list(cer).index(own)
        cer.remove(own)
        cer.insert(pos, copy.deepcopy(donor_cer.find("Signature")))
    return apply


# -- header ------------------------------------------------------------------


def _header_flip(document, donor) -> None:
    document.header.set("ProcessId", "forged-instance-id")


def _header_swap(document, donor) -> None:
    header = document.header
    pid, name = header.get("ProcessId"), header.get("ProcessName")
    header.set("ProcessId", name)
    header.set("ProcessName", pid)


def _header_replay(document, donor) -> None:
    # Replace the whole header with the sibling instance's (validly
    # designer-signed there): instance-substitution attack.
    own = document.header
    root = document.root
    pos = list(root).index(own)
    root.remove(own)
    root.insert(pos, copy.deepcopy(donor.header))


# -- embedded workflow definition --------------------------------------------


def _definition_flip(document, donor) -> None:
    for node in document.root.iter("Activity"):
        if node.get("ActivityId") == "D":
            node.set("Participant", "mallory@evil.example")


def _definition_swap(document, donor) -> None:
    # Exchange the designated participants of two activities: both
    # identities stay legitimate, only the assignment changes.
    activities = [node for node in document.root.iter("Activity")
                  if node.get("ActivityId") in ("B1", "D")]
    assert len(activities) == 2
    first, second = activities
    p1, p2 = first.get("Participant"), second.get("Participant")
    first.set("Participant", p2)
    second.set("Participant", p1)


def _definition_replay(document, donor) -> None:
    # Swap in another workflow's definition section wholesale (the
    # Fig. 9B definition, validly signed in its own documents).
    def_cer = document.root.find("ApplicationDefinition/CER")
    own = def_cer.find("WorkflowDefinitionSection")
    foreign = donor.root.find(".//WorkflowDefinitionSection")
    pos = list(def_cer).index(own)
    def_cer.remove(own)
    def_cer.insert(pos, copy.deepcopy(foreign))


# -- TFC timestamps (advanced model) -----------------------------------------


def _timestamp_flip(index: int):
    def apply(document, donor) -> None:
        cer = tfc_cers(document)[index]
        cer.find("Timestamp").set("Time", "0.0")
    return apply


def _timestamp_swap(index: int):
    # Exchange witnessed times between two TFC CERs (reordering history
    # while every timestamp value stays plausible).
    def apply(document, donor) -> None:
        cers = tfc_cers(document)
        ts_a = cers[index].find("Timestamp")
        ts_b = cers[(index + 1) % TFC_CER_COUNT].find("Timestamp")
        time_a, time_b = ts_a.get("Time"), ts_b.get("Time")
        ts_a.set("Time", time_b)
        ts_b.set("Time", time_a)
    return apply


def _timestamp_replay(index: int):
    # Graft the corresponding timestamp from the offset-clock sibling
    # run — TFC-signed there, so a loosely keyed cache might remember
    # it as "good".
    def apply(document, donor) -> None:
        cer = tfc_cers(document)[index]
        donor_cer = tfc_cers(donor)[index]
        own = cer.find("Timestamp")
        pos = list(cer).index(own)
        cer.remove(own)
        cer.insert(pos, copy.deepcopy(donor_cer.find("Timestamp")))
    return apply


# -- the registry ------------------------------------------------------------


def _build_cases() -> list[TamperCase]:
    cases: list[TamperCase] = []
    for index in range(BASIC_CER_COUNT):
        cases.append(TamperCase(f"result-flip-{index}", "basic", None,
                                _result_flip(index)))
        cases.append(TamperCase(f"result-swap-{index}", "basic", None,
                                _result_swap(index)))
        cases.append(TamperCase(f"result-replay-{index}", "basic",
                                "sibling_basic", _result_replay(index)))
        cases.append(TamperCase(f"signature-flip-{index}", "basic", None,
                                _signature_flip(index)))
        cases.append(TamperCase(f"signature-swap-{index}", "basic", None,
                                _signature_swap(index)))
        cases.append(TamperCase(f"signature-replay-{index}", "basic",
                                "sibling_basic", _signature_replay(index)))
    cases.append(TamperCase("header-flip", "basic", None, _header_flip))
    cases.append(TamperCase("header-swap", "basic", None, _header_swap))
    cases.append(TamperCase("header-replay", "basic", "sibling_basic",
                            _header_replay))
    cases.append(TamperCase("definition-flip", "basic", None,
                            _definition_flip))
    cases.append(TamperCase("definition-swap", "basic", None,
                            _definition_swap))
    cases.append(TamperCase("definition-replay", "basic", "fig9b_doc",
                            _definition_replay))
    for index in range(TFC_CER_COUNT):
        cases.append(TamperCase(f"timestamp-flip-{index}", "advanced", None,
                                _timestamp_flip(index)))
        cases.append(TamperCase(f"timestamp-swap-{index}", "advanced", None,
                                _timestamp_swap(index)))
        cases.append(TamperCase(f"timestamp-replay-{index}", "advanced",
                                "sibling_advanced",
                                _timestamp_replay(index)))
    return cases


#: The full adversarial sweep: 96 mutations over two document models.
TAMPER_CASES: list[TamperCase] = _build_cases()
