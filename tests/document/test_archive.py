"""Archival bundles: sealed, self-contained, cold-verifiable evidence.

The bundle must carry *everything* verification needs — document
bytes, manifest, chunk payloads, and a public trust snapshot — so a
fresh process with no pool, HBase, or network can still run the full
signature cascade.  And it must be tamper-evident: any bit flipped in
any layer has to surface as an :class:`ArchiveError`, never as a
silently "valid" bundle.
"""

from __future__ import annotations

import base64
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.document import (
    ARCHIVE_FORMAT,
    ArchiveBundle,
    build_archive,
    export_archive,
    verify_archive,
)
from repro.errors import ArchiveError, VerificationError
from tests.conftest import TFC_IDENTITY


@pytest.fixture(scope="module")
def bundle_bytes(fig9a_trace, world):
    return build_archive(fig9a_trace.final_document, world).to_bytes()


def _payload(data: bytes) -> dict:
    return json.loads(data.decode("utf-8"))


def _rebytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class TestRoundTrip:
    def test_verify_archive_round_trip(self, bundle_bytes, fig9a_trace,
                                       backend):
        report = verify_archive(bundle_bytes, backend=backend)
        final = fig9a_trace.final_document
        assert report.process_id == final.process_id
        assert report.doc_bytes == len(final.to_bytes())
        assert report.signatures_verified > 0
        assert report.cers_checked == len(final.cers())
        assert report.warnings == []

    def test_serialization_is_deterministic(self, fig9a_trace, world):
        once = build_archive(fig9a_trace.final_document, world).to_bytes()
        twice = build_archive(fig9a_trace.final_document, world).to_bytes()
        assert once == twice

    def test_from_bytes_restores_structure(self, bundle_bytes, fig9a_trace):
        bundle = ArchiveBundle.from_bytes(bundle_bytes)
        final = fig9a_trace.final_document
        assert bundle.process_id == final.process_id
        assert bundle.document == final.to_bytes()
        assert set(bundle.manifest.chunk_digests) == set(bundle.chunks)
        # Public snapshot only: no private key material anywhere.
        assert b"private" not in bundle_bytes.lower() or \
            "private" not in json.dumps(bundle.trust)

    def test_tfc_identities_travel_with_the_bundle(self, fig9b_run,
                                                   world, backend):
        trace, _ = fig9b_run
        data = build_archive(trace.final_document, world,
                             tfc_identities=[TFC_IDENTITY]).to_bytes()
        report = verify_archive(data, backend=backend)
        assert report.signatures_verified > 0
        assert report.warnings == []

    def test_trust_accepts_public_dict(self, fig9a_trace, world, backend):
        data = build_archive(fig9a_trace.final_document,
                             world.to_public_dict()).to_bytes()
        assert verify_archive(data, backend=backend).signatures_verified > 0

    def test_trust_rejects_other_types(self, fig9a_trace):
        with pytest.raises(ArchiveError, match="trust must be"):
            build_archive(fig9a_trace.final_document, trust=["not", "a"])


class TestColdVerification:
    def test_fresh_process_verifies_with_no_infrastructure(
            self, bundle_bytes, tmp_path):
        """The acceptance criterion: a brand-new interpreter, nothing
        but the bundle file and the library on disk."""
        bundle_path = tmp_path / "bundle.json"
        bundle_path.write_bytes(bundle_bytes)
        src_dir = Path(__file__).resolve().parents[2] / "src"
        script = (
            "import sys\n"
            "from repro.document import verify_archive\n"
            "report = verify_archive(open(sys.argv[1], 'rb').read())\n"
            "print(f'COLD-OK {report.process_id} "
            "{report.signatures_verified}')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(bundle_path)],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("COLD-OK ")
        assert proc.stdout.split()[2] != "0"


class TestTamperDetection:
    def test_corrupted_chunk_payload(self, bundle_bytes):
        payload = _payload(bundle_bytes)
        digest = sorted(payload["chunks"])[0]
        raw = bytearray(base64.b64decode(payload["chunks"][digest]))
        raw[0] ^= 0xFF
        payload["chunks"][digest] = base64.b64encode(
            bytes(raw)).decode("ascii")
        with pytest.raises(ArchiveError, match="content address"):
            verify_archive(_rebytes(payload))

    def test_missing_chunk(self, bundle_bytes):
        payload = _payload(bundle_bytes)
        del payload["chunks"][sorted(payload["chunks"])[0]]
        with pytest.raises(ArchiveError, match="missing 1 chunk"):
            verify_archive(_rebytes(payload))

    def test_document_bytes_swapped(self, bundle_bytes):
        payload = _payload(bundle_bytes)
        payload["document"] = base64.b64encode(
            b"<not-the-document/>").decode("ascii")
        with pytest.raises(ArchiveError, match="differ from the manifest"):
            verify_archive(_rebytes(payload))

    def test_process_id_mismatch(self, bundle_bytes):
        payload = _payload(bundle_bytes)
        payload["process_id"] = "0" * 32
        with pytest.raises(ArchiveError, match="names process"):
            verify_archive(_rebytes(payload))

    def test_gutted_trust_snapshot(self, bundle_bytes):
        """An emptied trust snapshot parses but can resolve no key, so
        the signature cascade fails loudly."""
        payload = _payload(bundle_bytes)
        payload["trust"] = {"authorities": [], "certificates": []}
        with pytest.raises(VerificationError,
                           match="cannot resolve public key"):
            verify_archive(_rebytes(payload))

    def test_unknown_format_tag(self, bundle_bytes):
        payload = _payload(bundle_bytes)
        payload["format"] = "dra4wfms-archive/99"
        with pytest.raises(ArchiveError, match="unsupported archive format"):
            verify_archive(_rebytes(payload))

    def test_garbage_bytes(self):
        with pytest.raises(ArchiveError, match="malformed"):
            verify_archive(b"\x00\x01 not json at all")
        with pytest.raises(ArchiveError, match="malformed"):
            verify_archive(b'["an", "array"]')


class TestExportFromPool:
    def test_export_then_retire_keeps_evidence(self, fig9a_trace, world,
                                               backend):
        """The intended lifecycle: archive the evidence, then drop the
        instance from hot storage — the bundle still verifies."""
        pool = DocumentPool(SimHBase(region_servers=2), delta=True)
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        data = export_archive(pool, final.process_id, world).to_bytes()
        pool.archive(final.process_id)
        pool.retire(final.process_id)
        pool.gc()
        assert pool.chunks.stats["unique_chunks"] == 0
        report = verify_archive(data, backend=backend)
        assert report.process_id == final.process_id
        assert report.signatures_verified > 0

    def test_format_constant_is_versioned(self):
        assert ARCHIVE_FORMAT.endswith("/1")
