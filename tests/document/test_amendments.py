"""Run-time amendments: dynamic flow control and dynamic security policy."""

from __future__ import annotations

import pytest

from repro.core import ActivityExecutionAgent, TfcServer
from repro.document import build_initial_document, verify_document
from repro.document.amendments import (
    AddActivity,
    DelegateActivity,
    GrantReader,
    amendment_cers,
    amendment_from_xml,
    amendment_to_xml,
    apply_amendment,
    check_authorized,
    effective_definition,
)
from repro.document.nonrepudiation import nonrepudiation_scope_ids
from repro.errors import (
    DefinitionError,
    ReproError,
    VerificationError,
)
from repro.model.activity import Activity, FieldSpec
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

DEPUTY = "deputy@megacorp.example"
AUDITOR = "auditor@regulator.example"


@pytest.fixture(scope="module", autouse=True)
def extra_identities(world):
    for identity in (DEPUTY, AUDITOR):
        if identity not in world.directory:
            world.add_participant(identity)


def agent(world, backend, identity):
    return ActivityExecutionAgent(world.keypair(identity),
                                  world.directory, backend)


@pytest.fixture()
def after_a(world, fig9a, backend):
    initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                     backend=backend)
    return agent(world, backend, PARTICIPANTS["A"]).execute_activity(
        initial, "A", {"attachment": "form"}
    ).document


class TestXmlRoundtrip:
    @pytest.mark.parametrize("amendment", [
        DelegateActivity("D", DEPUTY, reason="vacation"),
        AddActivity(
            Activity("X1", AUDITOR, requests=("summary",),
                     responses=(FieldSpec("audit_note"),)),
            after="C", before="D",
        ),
        GrantReader("A", "attachment", AUDITOR, reason="audit"),
    ], ids=["delegate", "add-activity", "grant-reader"])
    def test_roundtrip(self, amendment):
        restored = amendment_from_xml(amendment_to_xml(amendment, "s1"))
        assert restored == amendment

    def test_malformed_spec_rejected(self):
        import xml.etree.ElementTree as ET

        with pytest.raises(ReproError):
            amendment_from_xml(ET.Element("NotASpec"))
        with pytest.raises(ReproError):
            amendment_from_xml(ET.Element("AmendmentSpec",
                                          {"Kind": "unknown"}))


class TestApply:
    def test_delegate(self, fig9a):
        updated = apply_amendment(fig9a, DelegateActivity("D", DEPUTY))
        assert updated.activity("D").participant == DEPUTY
        assert fig9a.activity("D").participant == PARTICIPANTS["D"]

    def test_add_activity_rewires_edge(self, fig9a):
        amendment = AddActivity(
            Activity("X1", AUDITOR, requests=("summary",),
                     responses=(FieldSpec("audit_note"),)),
            after="C", before="D",
        )
        updated = apply_amendment(fig9a, amendment)
        assert updated.successors("C") == ["X1"]
        assert updated.successors("X1") == ["D"]
        assert "X1" in updated.activities

    def test_add_activity_duplicate_id_rejected(self, fig9a):
        amendment = AddActivity(Activity("D", AUDITOR), after="C",
                                before="D")
        with pytest.raises(DefinitionError):
            apply_amendment(fig9a, amendment)

    def test_add_activity_missing_edge_rejected(self, fig9a):
        amendment = AddActivity(Activity("X1", AUDITOR), after="A",
                                before="D")
        with pytest.raises(DefinitionError, match="no sequence edge"):
            apply_amendment(fig9a, amendment)

    def test_grant_reader_without_rule(self, fig9a):
        updated = apply_amendment(
            fig9a, GrantReader("A", "attachment", AUDITOR)
        )
        readers = updated.policy.readers_for(updated, "A", "attachment")
        assert AUDITOR in readers
        # Existing readers preserved.
        assert PARTICIPANTS["B1"] in readers

    def test_grant_reader_extends_existing_rule(self, fig9a):
        from repro.model.policy import FieldRule, ReaderClause

        fig9a = apply_amendment(fig9a, GrantReader("A", "attachment",
                                                   AUDITOR))
        again = apply_amendment(fig9a, GrantReader("A", "attachment",
                                                   DEPUTY))
        readers = again.policy.readers_for(again, "A", "attachment")
        assert AUDITOR in readers and DEPUTY in readers


class TestAuthorization:
    def test_participant_may_delegate_own_activity(self, fig9a):
        check_authorized(DelegateActivity("D", DEPUTY),
                         PARTICIPANTS["D"], fig9a)

    def test_designer_may_delegate_any(self, fig9a):
        check_authorized(DelegateActivity("D", DEPUTY), DESIGNER, fig9a)

    def test_other_participant_may_not_delegate(self, fig9a):
        with pytest.raises(VerificationError, match="only"):
            check_authorized(DelegateActivity("D", DEPUTY),
                             PARTICIPANTS["B1"], fig9a)

    def test_only_designer_adds_activities(self, fig9a):
        amendment = AddActivity(Activity("X1", AUDITOR), after="C",
                                before="D")
        check_authorized(amendment, DESIGNER, fig9a)
        with pytest.raises(VerificationError, match="designer"):
            check_authorized(amendment, PARTICIPANTS["C"], fig9a)

    def test_producer_or_designer_grants_readers(self, fig9a):
        amendment = GrantReader("A", "attachment", AUDITOR)
        check_authorized(amendment, PARTICIPANTS["A"], fig9a)
        check_authorized(amendment, DESIGNER, fig9a)
        with pytest.raises(VerificationError):
            check_authorized(amendment, PARTICIPANTS["B1"], fig9a)

    def test_delegation_chain(self, fig9a):
        # After D is delegated to the deputy, the *deputy* (not the
        # original approver) holds the delegation right.
        once = apply_amendment(fig9a, DelegateActivity("D", DEPUTY))
        check_authorized(DelegateActivity("D", AUDITOR), DEPUTY, once)
        with pytest.raises(VerificationError):
            check_authorized(DelegateActivity("D", AUDITOR),
                             PARTICIPANTS["D"], once)


class TestEmbeddedAmendments:
    def test_delegated_execution_end_to_end(self, world, backend,
                                            after_a):
        approver = agent(world, backend, PARTICIPANTS["D"])
        amended = approver.amend(
            after_a, DelegateActivity("D", DEPUTY, reason="vacation")
        )
        verify_document(amended, world.directory, backend)
        assert effective_definition(amended, backend=backend) \
            .activity("D").participant == DEPUTY

        # Run the rest of the workflow; the deputy executes D.
        doc1 = agent(world, backend, PARTICIPANTS["B1"]).execute_activity(
            amended.clone(), "B1", {"review1": "ok"}).document
        doc2 = agent(world, backend, PARTICIPANTS["B2"]).execute_activity(
            amended.clone(), "B2", {"review2": "ok"}).document
        merged = doc1.merge(doc2)
        after_c = agent(world, backend, PARTICIPANTS["C"]).execute_activity(
            merged, "C", {"summary": "fine"}).document
        result = agent(world, backend, DEPUTY).execute_activity(
            after_c, "D", {"decision": "accept"})
        assert result.routing.terminal
        report = verify_document(result.document, world.directory, backend)
        assert report.warnings == []

    def test_original_participant_rejected_after_delegation(
            self, world, backend, after_a):
        approver = agent(world, backend, PARTICIPANTS["D"])
        amended = approver.amend(after_a, DelegateActivity("D", DEPUTY))
        doc1 = agent(world, backend, PARTICIPANTS["B1"]).execute_activity(
            amended.clone(), "B1", {"review1": "ok"}).document
        doc2 = agent(world, backend, PARTICIPANTS["B2"]).execute_activity(
            amended.clone(), "B2", {"review2": "ok"}).document
        after_c = agent(world, backend, PARTICIPANTS["C"]).execute_activity(
            doc1.merge(doc2), "C", {"summary": "s"}).document
        from repro.errors import AuthorizationError

        with pytest.raises(AuthorizationError):
            approver.execute_activity(after_c, "D", {"decision": "accept"})

    def test_unauthorized_amendment_refused_at_creation(self, world,
                                                        backend, after_a):
        reviewer = agent(world, backend, PARTICIPANTS["B1"])
        with pytest.raises(VerificationError):
            reviewer.amend(after_a, DelegateActivity("D", DEPUTY))

    def test_forged_amendment_detected_by_verification(self, world,
                                                       backend, after_a):
        # B1 signs a delegation CER directly (bypassing the AEA check);
        # offline verification rejects the document.
        from repro.document.amendments import make_amendment_cer
        from repro.document.nonrepudiation import frontier_cers

        forged = after_a.clone()
        frontier = [c.signature.element for c in frontier_cers(forged)]
        cer = make_amendment_cer(
            DelegateActivity("D", PARTICIPANTS["B1"]), 0,
            world.keypair(PARTICIPANTS["B1"]), frontier, backend,
        )
        forged.append_cer(cer)
        with pytest.raises(VerificationError, match="only"):
            verify_document(forged, world.directory, backend)

    def test_tampered_amendment_detected(self, world, backend, after_a):
        approver = agent(world, backend, PARTICIPANTS["D"])
        amended = approver.amend(after_a, DelegateActivity("D", DEPUTY))
        node = amended.root.find(".//AmendmentSpec/Delegate")
        node.set("NewParticipant", "mallory@evil.example")
        with pytest.raises(ReproError):
            verify_document(amended, world.directory, backend)

    def test_amendment_joins_the_cascade(self, world, backend, after_a):
        approver = agent(world, backend, PARTICIPANTS["D"])
        amended = approver.amend(after_a, DelegateActivity("D", DEPUTY))
        after_b1 = agent(world, backend, PARTICIPANTS["B1"]) \
            .execute_activity(amended, "B1", {"review1": "ok"}).document
        scope = nonrepudiation_scope_ids(
            after_b1, after_b1.find_cer("B1", 0)
        )
        assert "cer-amd-0" in scope

    def test_amendment_sequence_numbers(self, world, backend, after_a):
        approver = agent(world, backend, PARTICIPANTS["D"])
        once = approver.amend(after_a, DelegateActivity("D", DEPUTY))
        deputy = agent(world, backend, DEPUTY)
        twice = deputy.amend(once, DelegateActivity("D", AUDITOR))
        cers = amendment_cers(twice)
        assert [c.iteration for c in cers] == [0, 1]
        assert effective_definition(twice, backend=backend) \
            .activity("D").participant == AUDITOR


class TestAdHocActivity:
    def test_designer_inserts_audit_step(self, world, backend, after_a,
                                         fig9a):
        designer = agent(world, backend, DESIGNER)
        amendment = AddActivity(
            Activity("X1", AUDITOR, requests=(),
                     responses=(FieldSpec("audit_note"),),
                     name="Ad-hoc audit"),
            after="C", before="D", reason="spot check",
        )
        amended = designer.amend(after_a, amendment)
        verify_document(amended, world.directory, backend)

        doc1 = agent(world, backend, PARTICIPANTS["B1"]).execute_activity(
            amended.clone(), "B1", {"review1": "ok"}).document
        doc2 = agent(world, backend, PARTICIPANTS["B2"]).execute_activity(
            amended.clone(), "B2", {"review2": "ok"}).document
        after_c_result = agent(world, backend, PARTICIPANTS["C"]) \
            .execute_activity(doc1.merge(doc2), "C", {"summary": "s"})
        # Routing now goes through the ad-hoc activity.
        assert after_c_result.routing.next_activities == ("X1",)
        after_x1 = agent(world, backend, AUDITOR).execute_activity(
            after_c_result.document, "X1", {"audit_note": "clean"})
        assert after_x1.routing.next_activities == ("D",)
        final = agent(world, backend, PARTICIPANTS["D"]).execute_activity(
            after_x1.document, "D", {"decision": "accept"})
        assert final.routing.terminal
        verify_document(final.document, world.directory, backend)


class TestDynamicPolicy:
    def test_grant_applies_to_future_encryptions_only(self, world,
                                                      backend, fig9a):
        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        producer = agent(world, backend, PARTICIPANTS["A"])

        # First execution: auditor NOT a reader.
        before_doc = producer.execute_activity(
            initial, "A", {"attachment": "v1"}).document
        field_before = before_doc.find_cer("A", 0) \
            .encrypted_field("attachment")
        assert AUDITOR not in field_before.recipients

        # Producer grants the auditor, approver loops the flow back...
        granted = producer.amend(
            before_doc, GrantReader("A", "attachment", AUDITOR)
        )
        doc1 = agent(world, backend, PARTICIPANTS["B1"]).execute_activity(
            granted.clone(), "B1", {"review1": "ok"}).document
        doc2 = agent(world, backend, PARTICIPANTS["B2"]).execute_activity(
            granted.clone(), "B2", {"review2": "ok"}).document
        after_c = agent(world, backend, PARTICIPANTS["C"]).execute_activity(
            doc1.merge(doc2), "C", {"summary": "s"}).document
        looped = agent(world, backend, PARTICIPANTS["D"]).execute_activity(
            after_c, "D", {"decision": "resubmit please"}).document

        # Second iteration of A: auditor IS a reader now.
        second = producer.execute_activity(
            looped, "A", {"attachment": "v2"}).document
        field_after = second.find_cer("A", 1) \
            .encrypted_field("attachment")
        assert AUDITOR in field_after.recipients
        # ...but the grant did not rewrite history.
        assert AUDITOR not in second.find_cer("A", 0) \
            .encrypted_field("attachment").recipients
        verify_document(second, world.directory, backend)
