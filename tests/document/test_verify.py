"""Whole-document verification: the tamper matrix.

Every mutation an attacker could apply to a routed/stored DRA4WfMS
document must be detected by :func:`verify_document`.  Each test takes
the shared executed trace, clones the final document, applies one
precise alteration, and asserts rejection.
"""

from __future__ import annotations

import copy

import pytest

from repro.crypto.pki import KeyDirectory
from repro.document.document import Dra4wfmsDocument
from repro.document.sections import KIND_STANDARD, KIND_TFC
from repro.document.verify import verify_document
from repro.errors import (
    TamperDetected,
    VerificationError,
)
from repro.xmlsec.canonical import parse_xml


@pytest.fixture()
def final_doc(fig9a_trace):
    return fig9a_trace.final_document.clone()


@pytest.fixture()
def advanced_doc(fig9b_run):
    trace, _ = fig9b_run
    return trace.final_document.clone()


def assert_rejected(document, directory, backend, match=None):
    with pytest.raises((TamperDetected, VerificationError), match=match):
        verify_document(document, directory, backend)


class TestHonestDocuments:
    def test_final_basic_document_verifies(self, final_doc, world, backend):
        report = verify_document(final_doc, world.directory, backend)
        assert report.signatures_verified == 11
        assert report.cers_checked == 11
        assert report.definition_checked
        assert report.warnings == []

    def test_final_advanced_document_verifies(self, advanced_doc, world,
                                              backend, fig9b_run):
        _, tfc = fig9b_run
        report = verify_document(
            advanced_doc, world.directory, backend,
            tfc_identities={tfc.identity},
        )
        assert report.signatures_verified == 21
        assert report.warnings == []

    def test_initial_document_verifies(self, world, fig9a, backend):
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER

        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        report = verify_document(initial, world.directory, backend)
        assert report.signatures_verified == 1

    def test_verification_survives_reserialization(self, final_doc, world,
                                                   backend):
        restored = Dra4wfmsDocument.from_bytes(final_doc.to_bytes())
        verify_document(restored, world.directory, backend)


class TestResultTampering:
    def test_ciphertext_flip(self, final_doc, world, backend):
        node = final_doc.root.find(
            ".//CER/ExecutionResult/EncryptedData/CipherData/CipherValue")
        node.text = "QUJD" + (node.text or "")[4:]
        assert_rejected(final_doc, world.directory, backend)

    def test_wrapped_key_flip(self, final_doc, world, backend):
        node = final_doc.root.find(
            ".//CER/ExecutionResult/EncryptedData/KeyInfo/EncryptedKey/"
            "CipherValue")
        node.text = "QUJD" + (node.text or "")[4:]
        assert_rejected(final_doc, world.directory, backend)

    def test_recipient_rename(self, final_doc, world, backend):
        node = final_doc.root.find(
            ".//CER/ExecutionResult/EncryptedData/KeyInfo/EncryptedKey")
        node.set("Recipient", "mallory@evil.example")
        assert_rejected(final_doc, world.directory, backend)

    def test_field_rename(self, final_doc, world, backend):
        node = final_doc.root.find(".//CER/ExecutionResult/EncryptedData")
        node.set("Name", "forged_name")
        assert_rejected(final_doc, world.directory, backend)

    def test_whole_result_replacement(self, final_doc, world, backend):
        cers = final_doc.results_section.findall("CER")
        result_a = cers[0].find("ExecutionResult")
        result_b = cers[5].find("ExecutionResult")
        # Swap contents between iteration 0 and 1 of activity A.
        a_children = list(result_a)
        b_children = list(result_b)
        for child in a_children:
            result_a.remove(child)
        for child in b_children:
            result_b.remove(child)
            result_a.append(child)
        for child in a_children:
            result_b.append(child)
        assert_rejected(final_doc, world.directory, backend)


class TestCerTampering:
    def test_participant_attribute_rename(self, final_doc, world, backend):
        cer = final_doc.results_section.find("CER")
        cer.set("Participant", "approver@megacorp.example")
        assert_rejected(final_doc, world.directory, backend,
                        match="does not match")

    def test_keyname_and_participant_rename(self, final_doc, world,
                                            backend):
        # Consistently renaming both still fails: RSA key mismatch or
        # authorization check.
        cer = final_doc.results_section.find("CER")
        cer.set("Participant", "approver@megacorp.example")
        cer.find("Signature/KeyInfo/KeyName").text = \
            "approver@megacorp.example"
        assert_rejected(final_doc, world.directory, backend)

    def test_cer_deletion_breaks_cascade(self, final_doc, world, backend):
        # Remove a middle CER: successors reference its signature.
        cers = final_doc.results_section.findall("CER")
        victim = cers[3]  # C^0
        final_doc.results_section.remove(victim)
        assert_rejected(final_doc, world.directory, backend)

    def test_cer_duplication_rejected(self, final_doc, world, backend):
        cers = final_doc.results_section.findall("CER")
        final_doc.results_section.append(copy.deepcopy(cers[2]))
        assert_rejected(final_doc, world.directory, backend,
                        match="duplicate")

    def test_foreign_cer_injection(self, final_doc, fig9b_run, world,
                                   backend):
        # Graft a validly-signed CER from ANOTHER process instance.
        other, _ = fig9b_run
        foreign = copy.deepcopy(
            other.final_document.results_section.find("CER")
        )
        final_doc.results_section.append(foreign)
        assert_rejected(final_doc, world.directory, backend)

    def test_iteration_relabel(self, final_doc, world, backend):
        cer = final_doc.results_section.findall("CER")[0]
        cer.set("Iteration", "7")
        assert_rejected(final_doc, world.directory, backend)

    def test_timestamp_edit_advanced(self, advanced_doc, world, backend):
        node = advanced_doc.root.find(".//CER/Timestamp")
        node.set("Time", "0.0")
        assert_rejected(advanced_doc, world.directory, backend)


class TestSignatureTampering:
    def test_signature_value_flip(self, final_doc, world, backend):
        node = final_doc.root.find(".//CER/Signature/SignatureValue")
        node.text = "AAAA" + (node.text or "")[4:]
        assert_rejected(final_doc, world.directory, backend)

    def test_digest_value_flip(self, final_doc, world, backend):
        node = final_doc.root.find(
            ".//CER/Signature/SignedInfo/Reference/DigestValue")
        node.text = "QUJDREVG"
        assert_rejected(final_doc, world.directory, backend)

    def test_reference_removal(self, final_doc, world, backend):
        # Dropping the cascade reference from a signature breaks the
        # RSA signature over SignedInfo.
        signed_info = final_doc.root.find(".//CER/Signature/SignedInfo")
        references = signed_info.findall("Reference")
        signed_info.remove(references[-1])
        assert_rejected(final_doc, world.directory, backend)

    def test_designer_signature_flip(self, final_doc, world, backend):
        node = final_doc.root.find(
            "ApplicationDefinition/CER/Signature/SignatureValue")
        node.text = "AAAA" + (node.text or "")[4:]
        assert_rejected(final_doc, world.directory, backend,
                        match="designer")


class TestDefinitionTampering:
    def test_definition_edit(self, final_doc, world, backend):
        # Change the designated participant of D in the embedded
        # definition — the designer's signature must break.
        for node in final_doc.root.iter("Activity"):
            if node.get("ActivityId") == "D":
                node.set("Participant", "mallory@evil.example")
        assert_rejected(final_doc, world.directory, backend)

    def test_process_id_edit(self, final_doc, world, backend):
        # The header is signed: changing the process id (to replay the
        # document as a new instance) is detected.
        final_doc.header.set("ProcessId", "forged-instance-id")
        assert_rejected(final_doc, world.directory, backend)

    def test_policy_edit(self, final_doc, world, backend):
        policy = final_doc.root.find(".//SecurityPolicy")
        import xml.etree.ElementTree as ET

        extra = ET.SubElement(policy, "ExtraReaders")
        ET.SubElement(extra, "Reader").text = "mallory@evil.example"
        assert_rejected(final_doc, world.directory, backend)


class TestTrustFailures:
    def test_unknown_ca(self, final_doc, backend):
        empty_directory = KeyDirectory()
        with pytest.raises(VerificationError, match="cannot resolve"):
            verify_document(final_doc, empty_directory, backend)

    def test_unexpected_tfc_identity(self, advanced_doc, world, backend):
        with pytest.raises(VerificationError, match="unexpected"):
            verify_document(
                advanced_doc, world.directory, backend,
                tfc_identities={"other-tfc@cloud.example"},
            )

    def test_encrypted_definition_warning(self, world, fig9a, backend):
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER

        document = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for={
                DESIGNER: world.directory.public_key_of(DESIGNER),
            },
            backend=backend,
        )
        report = verify_document(document, world.directory, backend)
        assert not report.definition_checked
        assert any("authorization checks skipped" in w
                   for w in report.warnings)
