"""Dra4wfmsDocument accessors, iteration counting, merge semantics."""

from __future__ import annotations

import pytest

from repro.document.document import Dra4wfmsDocument
from repro.document.sections import KIND_INTERMEDIATE, KIND_STANDARD, KIND_TFC
from repro.errors import DocumentFormatError, TamperDetected
from repro.xmlsec.canonical import parse_xml


@pytest.fixture()
def final_doc(fig9a_trace):
    return fig9a_trace.final_document.clone()


class TestAccessors:
    def test_wrong_root_tag(self):
        with pytest.raises(DocumentFormatError):
            Dra4wfmsDocument(parse_xml(b"<NotADoc/>"))

    def test_cers_in_document_order(self, final_doc):
        cers = final_doc.cers(include_definition=False)
        assert [c.activity_id for c in cers] == \
            ["A", "B1", "B2", "C", "D", "A", "B1", "B2", "C", "D"]
        assert [c.iteration for c in cers] == [0] * 5 + [1] * 5

    def test_cers_with_definition(self, final_doc):
        cers = final_doc.cers()
        assert cers[0].kind == "definition"
        assert len(cers) == 11

    def test_cer_index_and_lookup(self, final_doc):
        index = final_doc.cer_index()
        assert ("C", 1, KIND_STANDARD) in index
        found = final_doc.find_cer("C", 1)
        assert found is not None and found.participant == \
            "consolidator@partner.example"
        assert final_doc.find_cer("C", 7) is None

    def test_execution_count(self, final_doc):
        assert final_doc.execution_count("A") == 2
        assert final_doc.execution_count("D") == 2
        assert final_doc.execution_count("ghost") == 0

    def test_size_matches_serialization(self, final_doc):
        assert final_doc.size_bytes == len(final_doc.to_bytes())

    def test_clone_is_independent(self, final_doc):
        clone = final_doc.clone()
        clone.header.set("ProcessId", "mutated")
        assert final_doc.process_id != "mutated"

    def test_cascade_signature_prefers_tfc(self, fig9b_run):
        trace, _ = fig9b_run
        document = trace.final_document
        cer = document.cascade_signature_of("A", 0)
        assert cer is not None and cer.kind == KIND_TFC

    def test_pending_intermediate_empty_when_finalised(self, fig9b_run):
        trace, _ = fig9b_run
        assert trace.final_document.pending_intermediate() == []

    def test_intermediate_counts_as_unexecuted(self, fig9b_run):
        trace, _ = fig9b_run
        document = trace.final_document
        # All intermediates have TFC finals, so counts match basic run.
        assert document.execution_count("A") == 2
        intermediates = [
            c for c in document.cers(include_definition=False)
            if c.kind == KIND_INTERMEDIATE
        ]
        assert len(intermediates) == 10


class TestAppend:
    def test_append_id_collision_rejected(self, final_doc):
        existing = final_doc.cers(include_definition=False)[0]
        import copy

        duplicate = copy.deepcopy(existing.element)
        from repro.document.cer import CER

        with pytest.raises(DocumentFormatError, match="already present"):
            final_doc.append_cer(CER(duplicate))


class TestMerge:
    def test_merge_identical_is_noop(self, final_doc):
        merged = final_doc.merge(final_doc.clone())
        assert merged.to_bytes() == final_doc.to_bytes()

    def test_merge_unions_branch_cers(self, world, fig9a, backend):
        # Execute A then both branches independently, then merge.
        from repro.core import ActivityExecutionAgent
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        agent_a = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["A"]), world.directory, backend)
        after_a = agent_a.execute_activity(
            initial, "A", {"attachment": "doc"}).document

        agent_b1 = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["B1"]), world.directory, backend)
        branch1 = agent_b1.execute_activity(
            after_a.clone(), "B1", {"review1": "ok"}).document
        agent_b2 = ActivityExecutionAgent(
            world.keypair(PARTICIPANTS["B2"]), world.directory, backend)
        branch2 = agent_b2.execute_activity(
            after_a.clone(), "B2", {"review2": "fine"}).document

        merged = branch1.merge(branch2)
        assert merged.execution_count("B1") == 1
        assert merged.execution_count("B2") == 1
        # Merge is idempotent and commutative on CER sets.
        other_way = branch2.merge(branch1)
        assert {c.cer_id for c in merged.cers()} == \
            {c.cer_id for c in other_way.cers()}

    def test_merge_different_instances_rejected(self, world, fig9a,
                                                backend, final_doc):
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER

        other = build_initial_document(fig9a, world.keypair(DESIGNER),
                                       backend=backend)
        with pytest.raises(DocumentFormatError, match="different process"):
            final_doc.merge(other)

    def test_merge_detects_divergent_cers(self, final_doc):
        altered = final_doc.clone()
        cer = altered.cers(include_definition=False)[2]
        node = cer.element.find(
            "ExecutionResult/EncryptedData/CipherData/CipherValue")
        node.text = "QUJD" + (node.text or "")[4:]
        with pytest.raises(TamperDetected, match="differs"):
            final_doc.merge(altered)
