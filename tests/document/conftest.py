"""Shared document-suite fixtures: pristine runs and replay siblings.

The tamper matrix (``test_tamper_matrix.py``) and the batched-
verification differential suite (``test_batch_differential.py``) both
replay the mutation registry in :mod:`tamper_cases`; the executed
documents and replay-donor siblings they mutate live here so the two
suites attack byte-identical inputs.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import build_initial_document
from repro.workloads import figure9_responders
from repro.workloads.figure9 import DESIGNER

TFC_IDENTITY = "tfc@cloud.example"


@pytest.fixture(scope="session")
def sibling_basic(world, fig9a, backend):
    """An independent execution of Fig. 9A: same workflow, same
    participants, different process instance — every element validly
    signed *in its own document*."""
    initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                     backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    trace = runtime.run(initial, fig9a, figure9_responders(1), mode="basic")
    return trace.final_document


@pytest.fixture(scope="session")
def sibling_advanced(world, fig9b, backend):
    """An independent advanced-model run whose TFC clock starts at 100,
    so its (validly signed) timestamps differ from the pristine run's."""
    counter = itertools.count(100)
    tfc = TfcServer(world.keypair(TFC_IDENTITY), world.directory,
                    backend=backend, clock=lambda: float(next(counter)))
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc,
                              backend=backend)
    trace = runtime.run(initial, fig9b, figure9_responders(1),
                        mode="advanced")
    return trace.final_document


@pytest.fixture()
def basic_doc(fig9a_trace):
    """A mutable clone of the pristine Fig. 9A document."""
    return fig9a_trace.final_document.clone()


@pytest.fixture()
def advanced_doc(fig9b_run):
    """A mutable clone of the pristine Fig. 9B document."""
    trace, _ = fig9b_run
    return trace.final_document.clone()


@pytest.fixture()
def tamper_donors(sibling_basic, sibling_advanced, fig9b_run):
    """Donor documents by :attr:`tamper_cases.TamperCase.donor` key."""
    trace, _ = fig9b_run
    return {
        "sibling_basic": sibling_basic,
        "sibling_advanced": sibling_advanced,
        "fig9b_doc": trace.final_document,
    }
