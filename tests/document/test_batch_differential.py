"""Differential harness: batched RSA verification ≡ sequential.

``verify_document(..., workers=N)`` collects every cascade signature's
RSA check into one ``verify_batch()`` dispatch instead of verifying
inline.  That is only an optimisation if it is *observationally
identical* — same accept/reject verdict, same exception type, same
failing-signature attribution in the message — on every input the
sequential path handles.  This suite proves that differentially:

* every case of the adversarial tamper-matrix registry
  (:mod:`tamper_cases`: 96 mutations across two document models) is
  replayed under the sequential, forced-batch, and threaded-batch
  paths, and the three outcomes are compared verbatim;
* pristine documents produce byte-equal verification reports across
  all paths (and across both crypto backends);
* a Hypothesis property sweeps randomly generated topologies
  (chain/diamond × width × participant-pool size), random worker
  counts, and a random optional signature flip, asserting the same
  equivalence on documents no one hand-picked.
"""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime
from repro.document import build_initial_document
from repro.document.verify import verify_document
from repro.errors import TamperDetected, VerificationError
from repro.workloads import build_world
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    diamond_definition,
    participant_pool,
)

from .tamper_cases import TAMPER_CASES, flip_base64

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False

#: (label, verify_document kwargs) for every batched path under test.
BATCH_MODES = [
    ("forced-batch", {"batch": True}),
    ("two-workers", {"workers": 2}),
    ("many-workers", {"workers": 8, "batch": True}),
]


def outcome(document, directory, backend, **kwargs):
    """Comparable verdict of one verification: report or exact failure."""
    try:
        report = verify_document(document, directory, backend, **kwargs)
    except (TamperDetected, VerificationError) as exc:
        return ("rejected", type(exc).__name__, str(exc))
    return ("accepted", report)


# -- the full tamper matrix, batched vs sequential ---------------------------


class TestTamperMatrixDifferential:
    """Batched verification reaches the sequential verdict verbatim."""

    @pytest.mark.parametrize("case", TAMPER_CASES, ids=lambda c: c.name)
    def test_same_verdict_and_attribution(self, case, basic_doc,
                                          advanced_doc, tamper_donors,
                                          world, backend):
        document = basic_doc if case.model == "basic" else advanced_doc
        donor = tamper_donors[case.donor] if case.donor else None
        case.apply(document, donor)

        sequential = outcome(document, world.directory, backend)
        assert sequential[0] == "rejected"
        for label, kwargs in BATCH_MODES:
            batched = outcome(document, world.directory, backend, **kwargs)
            assert batched == sequential, (
                f"{case.name}: {label} diverged from sequential"
            )


# -- pristine documents ------------------------------------------------------


class TestPristineDifferential:
    def test_reports_identical(self, fig9a_trace, fig9b_run, world, backend):
        trace, _ = fig9b_run
        for document in (fig9a_trace.final_document, trace.final_document):
            sequential = outcome(document, world.directory, backend)
            assert sequential[0] == "accepted"
            for label, kwargs in BATCH_MODES:
                batched = outcome(document, world.directory, backend,
                                  **kwargs)
                assert batched == sequential, f"{label} diverged"

    def test_pure_backend_batches_too(self, fig9a_trace, world,
                                      pure_backend):
        """The pure backend's sequential fallback is still equivalent."""
        document = fig9a_trace.final_document
        sequential = outcome(document, world.directory, pure_backend)
        assert sequential[0] == "accepted"
        for label, kwargs in BATCH_MODES:
            batched = outcome(document, world.directory, pure_backend,
                              **kwargs)
            assert batched == sequential, f"{label} diverged (pure)"


# -- random topologies (property-based) --------------------------------------

DESIGNER = "designer@enterprise.example"
POOL = 4

#: (kind, size, pool) → executed document; executions are the expensive
#: part, so repeated Hypothesis examples share one run per topology.
_trace_cache: dict[tuple[str, int, int], object] = {}


@pytest.fixture(scope="module")
def topo_world(backend):
    """One PKI world big enough for every generated topology."""
    return build_world([DESIGNER, *participant_pool(POOL)], bits=1024,
                       backend=backend)


def _executed_document(world, backend, kind: str, size: int, pool: int):
    key = (kind, size, pool)
    document = _trace_cache.get(key)
    if document is None:
        maker = chain_definition if kind == "chain" else diamond_definition
        definition = maker(size, participant_pool(pool), designer=DESIGNER)
        initial = build_initial_document(
            definition, world.keypair(DESIGNER), backend=backend
        )
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        trace = runtime.run(initial, definition,
                            auto_responders(definition), mode="basic")
        document = _trace_cache[key] = trace.final_document
    return document


if HAVE_HYPOTHESIS:

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["chain", "diamond"]),
        size=st.integers(min_value=2, max_value=5),
        pool=st.integers(min_value=1, max_value=POOL),
        workers=st.sampled_from([None, 1, 2, 3, 8]),
        force_batch=st.booleans(),
        tamper_at=st.one_of(st.none(), st.integers(min_value=0,
                                                   max_value=31)),
    )
    def test_random_topologies_equivalent(topo_world, backend, kind, size,
                                          pool, workers, force_batch,
                                          tamper_at):
        """Sequential ≡ batched on random workloads and batch shapes."""
        pristine = _executed_document(topo_world, backend, kind, size, pool)
        document = pristine.clone()
        if tamper_at is not None:
            values = document.root.findall(".//CER/Signature/SignatureValue")
            flip_base64(values[tamper_at % len(values)])

        sequential = outcome(document, topo_world.directory, backend)
        batched = outcome(document, topo_world.directory, backend,
                          workers=workers,
                          batch=True if force_batch else None)
        assert batched == sequential
        assert sequential[0] == ("accepted" if tamper_at is None
                                 else "rejected")
