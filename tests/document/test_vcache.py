"""Unit behaviour of the verification cache: bounds, stats, key hygiene."""

from __future__ import annotations

import threading

import pytest

from repro.document.vcache import CacheStats, VerificationCache
from repro.document.verify import verify_document
from repro.xmlsec.xmldsig import index_by_id


class TestStats:
    def test_initial(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.snapshot() == {
            "hits": 0, "misses": 0, "stores": 0, "invalidations": 0,
            "hit_rate": 0.0,
        }

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75


class TestLruBounds:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            VerificationCache(max_entries=0)

    def test_eviction_counts_as_invalidation(self):
        cache = VerificationCache(max_entries=2)
        for byte in (b"a", b"b", b"c"):
            cache.record(byte * 32)
        assert len(cache) == 2
        assert cache.stats.stores == 3
        assert cache.stats.invalidations == 1
        # The oldest entry is gone, the newest two remain.
        assert not cache.seen(b"a" * 32)
        assert cache.seen(b"c" * 32)

    def test_probe_refreshes_recency(self):
        cache = VerificationCache(max_entries=2)
        cache.record(b"a" * 32)
        cache.record(b"b" * 32)
        assert cache.seen(b"a" * 32)   # refresh "a"
        cache.record(b"c" * 32)        # evicts "b", not "a"
        assert cache.seen(b"a" * 32)
        assert not cache.seen(b"b" * 32)

    def test_duplicate_record_is_idempotent(self):
        cache = VerificationCache()
        cache.record(b"a" * 32)
        cache.record(b"a" * 32)
        assert len(cache) == 1
        assert cache.stats.stores == 1

    def test_clear(self):
        cache = VerificationCache()
        cache.record(b"a" * 32)
        cache.record(b"b" * 32)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_thread_safety_smoke(self):
        cache = VerificationCache(max_entries=64)

        def worker(prefix: int) -> None:
            for i in range(200):
                key = f"{prefix}-{i}".encode().ljust(32, b"\0")
                cache.seen(key)
                cache.record(key)
                cache.seen(key)

        threads = [threading.Thread(target=worker, args=(p,))
                   for p in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64
        assert cache.stats.hits + cache.stats.misses == 4 * 200 * 2


class TestKeyDerivation:
    def test_key_is_deterministic(self, fig9a_trace, world):
        document = fig9a_trace.final_document
        index = index_by_id(document.root)
        cer = document.cers(include_definition=False)[0]
        signature = cer.signature
        public_key = world.directory.public_key_of(signature.signer)
        first = VerificationCache.key_for(signature, public_key, index)
        second = VerificationCache.key_for(signature, public_key, index)
        assert first == second
        assert len(first) == 32

    def test_key_depends_on_public_key(self, fig9a_trace, world,
                                       outsider_keypair):
        document = fig9a_trace.final_document
        index = index_by_id(document.root)
        signature = document.cers(include_definition=False)[0].signature
        honest = world.directory.public_key_of(signature.signer)
        outsider = outsider_keypair.public_key
        assert VerificationCache.key_for(signature, honest, index) != \
            VerificationCache.key_for(signature, outsider, index)

    def test_key_depends_on_referenced_content(self, fig9a_trace, world):
        document = fig9a_trace.final_document.clone()
        index = index_by_id(document.root)
        cer = document.cers(include_definition=False)[0]
        signature = cer.signature
        public_key = world.directory.public_key_of(signature.signer)
        before = VerificationCache.key_for(signature, public_key, index)
        # Mutate a referenced element WITHOUT touching the signature.
        node = cer.element.find("ExecutionResult/EncryptedData/CipherData/"
                                "CipherValue")
        node.text = "QUJD" + (node.text or "")[4:]
        after = VerificationCache.key_for(signature, public_key, index)
        assert before != after

    def test_missing_reference_target_keys_none(self, fig9a_trace, world):
        document = fig9a_trace.final_document
        index = index_by_id(document.root)
        signature = document.cers(include_definition=False)[-1].signature
        public_key = world.directory.public_key_of(signature.signer)
        # Drop one referenced id from the index: the signature cannot
        # be keyed and must take the full verification path.
        pruned = dict(index)
        del pruned[signature.referenced_ids[0]]
        assert VerificationCache.key_for(signature, public_key,
                                         pruned) is None

    def test_digest_memo_changes_nothing(self, fig9a_trace, world):
        document = fig9a_trace.final_document
        index = index_by_id(document.root)
        signature = document.cers(include_definition=False)[0].signature
        public_key = world.directory.public_key_of(signature.signer)
        memo: dict[int, bytes] = {}
        with_memo = VerificationCache.key_for(signature, public_key, index,
                                              memo)
        without = VerificationCache.key_for(signature, public_key, index)
        assert with_memo == without
        assert memo  # the memo actually filled


class TestEndToEndCounters:
    def test_counters_across_two_verifies(self, fig9a_trace, world,
                                          backend):
        cache = VerificationCache()
        document = fig9a_trace.final_document
        first = verify_document(document, world.directory, backend,
                                cache=cache)
        second = verify_document(document, world.directory, backend,
                                 cache=cache)
        assert first.cache_misses == first.signatures_verified
        assert first.cache_hits == 0
        assert second.cache_hits == second.signatures_verified
        assert second.cache_misses == 0
        assert cache.stats.stores == first.signatures_verified
        assert cache.stats.hits == second.signatures_verified
