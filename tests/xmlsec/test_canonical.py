"""Canonicalization: determinism, escaping, round-trip stability."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, strategies as st

from repro.errors import CanonicalizationError
from repro.xmlsec.canonical import canonicalize, parse_xml


def test_simple_element():
    assert canonicalize(ET.fromstring("<a>text</a>")) == b"<a>text</a>"


def test_attributes_sorted():
    a = ET.Element("e")
    a.set("zeta", "1")
    a.set("alpha", "2")
    assert canonicalize(a) == b'<e alpha="2" zeta="1"></e>'


def test_attribute_order_irrelevant():
    one = parse_xml(b'<e b="2" a="1"/>')
    two = parse_xml(b'<e a="1" b="2"/>')
    assert canonicalize(one) == canonicalize(two)


def test_self_closing_normalized():
    assert canonicalize(parse_xml(b"<a/>")) == b"<a></a>"


def test_text_escaping():
    e = ET.Element("a")
    e.text = 'x < y & z > "q"'
    out = canonicalize(e)
    assert out == b'<a>x &lt; y &amp; z &gt; "q"</a>'
    assert canonicalize(parse_xml(out)) == out


def test_attribute_escaping():
    e = ET.Element("a", {"v": 'he said "hi" & left\n'})
    out = canonicalize(e)
    assert b"&quot;" in out and b"&amp;" in out and b"&#10;" in out
    assert canonicalize(parse_xml(out)) == out


def test_children_and_tails():
    root = parse_xml(b"<r>head<c>inner</c>tail<c2/>end</r>")
    assert canonicalize(root) == b"<r>head<c>inner</c>tail<c2></c2>end</r>"


def test_own_tail_excluded():
    root = parse_xml(b"<r><c>inner</c>tail</r>")
    child = root.find("c")
    assert canonicalize(child) == b"<c>inner</c>"


def test_comments_dropped():
    root = ET.fromstring("<r><!-- secret -->visible</r>")
    assert b"secret" not in canonicalize(root)


def test_none_rejected():
    with pytest.raises(CanonicalizationError):
        canonicalize(None)  # type: ignore[arg-type]


def test_parse_rejects_malformed():
    with pytest.raises(CanonicalizationError):
        parse_xml(b"<unclosed>")


def test_parse_accepts_str():
    assert parse_xml("<a>1</a>").text == "1"


# -- property: round-trip stability -------------------------------------------

_names = st.sampled_from(["a", "b", "cer", "Data", "x1", "ns_tag"])
# The XML 1.0 Char production: TAB/LF/CR, the BMP minus surrogates and
# the U+FFFE/U+FFFF noncharacters, and the supplementary planes.
_texts = st.text(
    alphabet=st.one_of(
        st.characters(
            codec="utf-8",
            exclude_categories=("Cs", "Cc"),
            exclude_characters="￾￿",
        ),
        # Whitespace control characters are legal XML and exercise the
        # CR/TAB/LF escaping rules (CR normalization broke round-trip
        # stability once — keep generating it).
        st.sampled_from("\t\n\r"),
    ),
    max_size=30,
)


@st.composite
def xml_trees(draw, depth=0):
    element = ET.Element(draw(_names))
    for key in draw(st.lists(_names, max_size=3, unique=True)):
        element.set(key, draw(_texts))
    element.text = draw(_texts) or None
    if depth < 3:
        for child in draw(st.lists(xml_trees(depth=depth + 1), max_size=3)):
            child.tail = draw(_texts) or None
            element.append(child)
    return element


@given(xml_trees())
def test_roundtrip_stability(tree):
    once = canonicalize(tree)
    again = canonicalize(parse_xml(once))
    assert once == again


@given(xml_trees())
def test_canonical_form_is_parseable(tree):
    parse_xml(canonicalize(tree))


class TestXmlValidityGuards:
    """Characters/names that XML cannot represent are rejected, not
    silently serialized into unparseable output."""

    @pytest.mark.parametrize("bad", ["\x00", "\x0b", "￾", "￿",
                                     "ok\x01ok"])
    def test_invalid_text_rejected(self, bad):
        element = ET.Element("a")
        element.text = bad
        with pytest.raises(CanonicalizationError, match="cannot be"):
            canonicalize(element)

    def test_invalid_attribute_value_rejected(self):
        element = ET.Element("a", {"v": "x\x02y"})
        with pytest.raises(CanonicalizationError):
            canonicalize(element)

    def test_invalid_tail_rejected(self):
        root = ET.Element("r")
        child = ET.SubElement(root, "c")
        child.tail = "￾"
        with pytest.raises(CanonicalizationError):
            canonicalize(root)

    @pytest.mark.parametrize("name", ["1leading", "with space", "a<b",
                                      'q"uote'])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(CanonicalizationError, match="invalid"):
            canonicalize(ET.Element(name))
        element = ET.Element("ok")
        element.set(name, "v")
        with pytest.raises(CanonicalizationError, match="invalid"):
            canonicalize(element)

    def test_whitespace_controls_allowed(self):
        element = ET.Element("a", {"v": "tab\there"})
        element.text = "line\nbreak\tand\rcr"
        out = canonicalize(element)
        assert canonicalize(parse_xml(out)) == out


# -- single-pass escaping ------------------------------------------------------


class TestEscapingEquivalence:
    """The table-driven (str.translate) escapers must match the
    reference chained-replace semantics exactly — & first, then the
    other entities, so no double escaping."""

    @staticmethod
    def _reference_text(text):
        return (text.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace("\r", "&#13;"))

    @staticmethod
    def _reference_attr(value):
        return (value.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace('"', "&quot;")
                .replace("\t", "&#9;").replace("\n", "&#10;")
                .replace("\r", "&#13;"))

    @given(_texts)
    def test_text_matches_reference(self, text):
        from repro.xmlsec.canonical import _escape_text
        assert _escape_text(text) == self._reference_text(text)

    @given(_texts)
    def test_attr_matches_reference(self, value):
        from repro.xmlsec.canonical import _escape_attr
        assert _escape_attr(value) == self._reference_attr(value)

    def test_no_double_escaping(self):
        from repro.xmlsec.canonical import _escape_text
        assert _escape_text("&amp;") == "&amp;amp;"
        assert _escape_text("&<>&") == "&amp;&lt;&gt;&amp;"


# -- canonical memo ------------------------------------------------------------


class TestCanonicalMemo:
    def _memo(self):
        from repro.xmlsec.canonical import CanonicalMemo
        return CanonicalMemo()

    def test_store_lookup_discard(self):
        memo = self._memo()
        element = ET.Element("a")
        assert memo.lookup(element) is None
        assert memo.misses == 1
        memo.store(element, "<a></a>")
        assert memo.lookup(element) == "<a></a>"
        assert memo.hits == 1
        assert len(memo) == 1
        memo.discard(element)
        assert memo.lookup(element) is None
        assert len(memo) == 0

    def test_clear_drops_everything(self):
        memo = self._memo()
        elements = [ET.Element(n) for n in ("a", "b", "c")]
        for element in elements:
            memo.store(element, element.tag)
        memo.clear()
        assert len(memo) == 0
        assert all(memo.lookup(e) is None for e in elements)

    def test_keyed_by_identity_not_equality(self):
        memo = self._memo()
        one, two = ET.Element("a"), ET.Element("a")
        memo.store(one, "first")
        assert memo.lookup(two) is None

    def test_remap_transfers_entries_to_copy(self):
        import copy
        memo = self._memo()
        root = ET.Element("r")
        child = ET.SubElement(root, "c")
        memo.store(child, "<c></c>")
        twin = copy.deepcopy(root)
        fresh = memo.remap(root, twin)
        assert fresh.lookup(twin[0]) == "<c></c>"
        # The fresh memo belongs to the copy, not the original.
        assert fresh.lookup(child) is None

    @given(xml_trees())
    def test_memoized_canonicalize_is_identical(self, tree):
        memo = self._memo()
        cold = canonicalize(tree)
        first = canonicalize(tree, memo)
        second = canonicalize(tree, memo)
        assert first == cold
        assert second == cold


# -- segmented canonicalization ------------------------------------------------


class TestCanonicalizeSegments:
    @given(xml_trees())
    def test_concatenation_equals_canonicalize(self, tree):
        from repro.xmlsec.canonical import canonicalize_segments
        segments = canonicalize_segments(tree, "cer")
        assert b"".join(data for _, data in segments) == canonicalize(tree)

    @given(xml_trees())
    def test_boundary_segments_are_subtree_canonicalizations(self, tree):
        from repro.xmlsec.canonical import canonicalize_segments
        segments = canonicalize_segments(tree, "cer")
        boundary = [data for flagged, data in segments if flagged]
        if tree.tag == "cer":
            expected = [canonicalize(tree)]
        else:
            expected = [canonicalize(node) for node in tree.iter("cer")
                        if self._is_maximal(tree, node)]
        assert boundary == expected

    @staticmethod
    def _is_maximal(root, node):
        """True when no ancestor of *node* is itself a boundary."""
        parents = {child: parent for parent in root.iter()
                   for child in parent}
        current = parents.get(node)
        while current is not None:
            if current.tag == "cer":
                return False
            current = parents.get(current)
        return True

    def test_memo_reuse_does_not_change_segments(self):
        from repro.xmlsec.canonical import CanonicalMemo, canonicalize_segments
        root = parse_xml(b"<r><cer>one</cer><mid>x</mid><cer>two</cer></r>")
        memo = CanonicalMemo()
        cold = canonicalize_segments(root, "cer", memo)
        warm = canonicalize_segments(root, "cer", memo)
        assert warm == cold

    def test_none_rejected(self):
        from repro.xmlsec.canonical import canonicalize_segments
        with pytest.raises(CanonicalizationError):
            canonicalize_segments(None, "cer")
