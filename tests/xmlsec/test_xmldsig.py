"""XML signatures: multi-reference signing, verification, tampering."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.crypto.keys import KeyPair
from repro.errors import XmlSignatureError
from repro.xmlsec.canonical import canonicalize, parse_xml
from repro.xmlsec.xmldsig import (
    XmlSignature,
    find_by_id,
    index_by_id,
    sign_references,
)


@pytest.fixture(scope="module")
def signer(backend):
    return KeyPair.generate("signer@acme.example", bits=1024,
                            backend=backend)


@pytest.fixture(scope="module")
def impostor(backend):
    return KeyPair.generate("impostor@evil.example", bits=1024,
                            backend=backend)


@pytest.fixture()
def document(signer, backend):
    root = ET.Element("Doc")
    first = ET.SubElement(root, "Data", {"Id": "d1"})
    first.text = "payload one"
    second = ET.SubElement(root, "Data", {"Id": "d2"})
    second.text = "payload two"
    signature = sign_references("sig1", signer.identity, signer.private_key,
                                [first, second], backend=backend)
    root.append(signature.element)
    return root


class TestSigning:
    def test_structure(self, document, signer):
        signature = XmlSignature(find_by_id(document, "sig1"))
        assert signature.signature_id == "sig1"
        assert signature.signer == signer.identity
        assert signature.referenced_ids == ["d1", "d2"]
        assert len(signature.signature_value) == 128  # RSA-1024

    def test_verify(self, document, signer, backend):
        signature = XmlSignature(find_by_id(document, "sig1"))
        signature.verify(signer.public_key, document, backend)

    def test_survives_serialization(self, document, signer, backend):
        reparsed = parse_xml(canonicalize(document))
        signature = XmlSignature(find_by_id(reparsed, "sig1"))
        signature.verify(signer.public_key, reparsed, backend)

    def test_cannot_sign_element_without_id(self, signer, backend):
        anonymous = ET.Element("NoId")
        with pytest.raises(XmlSignatureError):
            sign_references("s", signer.identity, signer.private_key,
                            [anonymous], backend=backend)

    def test_wrong_tag_rejected(self):
        with pytest.raises(XmlSignatureError):
            XmlSignature(ET.Element("NotASignature"))


class TestTamperDetection:
    def test_altered_text(self, document, signer, backend):
        find_by_id(document, "d1").text = "altered"
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError, match="digest mismatch"):
            signature.verify(signer.public_key, document, backend)

    def test_altered_attribute(self, document, signer, backend):
        find_by_id(document, "d2").set("extra", "attr")
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError, match="digest mismatch"):
            signature.verify(signer.public_key, document, backend)

    def test_removed_target(self, document, signer, backend):
        document.remove(find_by_id(document, "d1"))
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError, match="not found"):
            signature.verify(signer.public_key, document, backend)

    def test_altered_digest_value(self, document, signer, backend):
        node = document.find("Signature/SignedInfo/Reference/DigestValue")
        node.text = "QUJDREVGRw=="
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError):
            signature.verify(signer.public_key, document, backend)

    def test_altered_signature_value(self, document, signer, backend):
        node = document.find("Signature/SignatureValue")
        node.text = "AAAA" + (node.text or "")[4:]
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError):
            signature.verify(signer.public_key, document, backend)

    def test_wrong_public_key(self, document, impostor, backend):
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError):
            signature.verify(impostor.public_key, document, backend)

    def test_reference_retargeting(self, document, signer, backend):
        # Point the reference at a different element with forged id.
        find_by_id(document, "d1").set("Id", "d1-moved")
        decoy = ET.SubElement(document, "Data", {"Id": "d1"})
        decoy.text = "forged payload"
        signature = XmlSignature(find_by_id(document, "sig1"))
        with pytest.raises(XmlSignatureError):
            signature.verify(signer.public_key, document, backend)


class TestCascade:
    def test_signature_over_signature(self, document, signer, impostor,
                                      backend):
        inner = XmlSignature(find_by_id(document, "sig1"))
        outer = sign_references("sig2", impostor.identity,
                                impostor.private_key,
                                [inner.element], backend=backend)
        document.append(outer.element)
        outer.verify(impostor.public_key, document, backend)

        # Tampering with the inner signature breaks the outer one.
        value = document.find("Signature/SignatureValue")
        value.text = "AAAA" + (value.text or "")[4:]
        with pytest.raises(XmlSignatureError):
            XmlSignature(find_by_id(document, "sig2")).verify(
                impostor.public_key, document, backend
            )


class TestIdIndex:
    def test_index(self, document):
        index = index_by_id(document)
        assert set(index) == {"d1", "d2", "sig1"}

    def test_duplicate_ids_rejected(self, document):
        ET.SubElement(document, "Data", {"Id": "d1"})
        with pytest.raises(XmlSignatureError, match="duplicate"):
            index_by_id(document)

    def test_find_by_id_missing(self, document):
        with pytest.raises(XmlSignatureError, match="no element"):
            find_by_id(document, "ghost")

    def test_find_by_id_duplicate(self, document):
        ET.SubElement(document, "Data", {"Id": "d2"})
        with pytest.raises(XmlSignatureError, match="duplicate"):
            find_by_id(document, "d2")
