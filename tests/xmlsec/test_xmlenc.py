"""Element-wise encryption: recipients, AAD binding, tampering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair
from repro.errors import XmlEncryptionError
from repro.xmlsec.canonical import canonicalize, parse_xml
from repro.xmlsec.xmlenc import (
    EncryptedValue,
    decrypt_value,
    encrypt_value,
    is_encrypted_data,
    recipients_of,
)


@pytest.fixture(scope="module")
def amy(backend):
    return KeyPair.generate("amy@audit.example", bits=1024, backend=backend)


@pytest.fixture(scope="module")
def john(backend):
    return KeyPair.generate("john@bank-a.example", bits=1024,
                            backend=backend)


@pytest.fixture(scope="module")
def eve(backend):
    return KeyPair.generate("eve@evil.example", bits=1024, backend=backend)


def test_roundtrip_single_recipient(amy, backend):
    element = encrypt_value("e1", "X", b"secret value",
                            {amy.identity: amy.public_key}, backend)
    assert is_encrypted_data(element)
    assert decrypt_value(element, amy.identity, amy.private_key,
                         backend) == b"secret value"


def test_roundtrip_after_serialization(amy, backend):
    element = encrypt_value("e1", "X", b"payload",
                            {amy.identity: amy.public_key}, backend)
    reparsed = parse_xml(canonicalize(element))
    assert decrypt_value(reparsed, amy.identity, amy.private_key,
                         backend) == b"payload"


def test_multiple_recipients(amy, john, backend):
    element = encrypt_value(
        "e1", "Y", b"for both",
        {amy.identity: amy.public_key, john.identity: john.public_key},
        backend,
    )
    assert recipients_of(element) == sorted([amy.identity, john.identity])
    assert decrypt_value(element, amy.identity, amy.private_key,
                         backend) == b"for both"
    assert decrypt_value(element, john.identity, john.private_key,
                         backend) == b"for both"


def test_unauthorised_reader_rejected(amy, eve, backend):
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    with pytest.raises(XmlEncryptionError, match="not an authorised reader"):
        decrypt_value(element, eve.identity, eve.private_key, backend)


def test_wrong_private_key_rejected(amy, eve, backend):
    # Eve claims to be Amy but holds her own key.
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    with pytest.raises(XmlEncryptionError):
        decrypt_value(element, amy.identity, eve.private_key, backend)


def test_empty_recipient_set_rejected(backend):
    with pytest.raises(XmlEncryptionError, match="empty recipient"):
        encrypt_value("e1", "X", b"data", {}, backend)


def test_tampered_ciphertext_rejected(amy, backend):
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    node = element.find("CipherData/CipherValue")
    node.text = "QUJD" + (node.text or "")[4:]
    with pytest.raises(XmlEncryptionError):
        decrypt_value(element, amy.identity, amy.private_key, backend)


def test_moved_element_rejected(amy, backend):
    # The element id is bound as AAD: renaming the target breaks it.
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    element.set("Id", "e2")
    with pytest.raises(XmlEncryptionError):
        decrypt_value(element, amy.identity, amy.private_key, backend)


def test_renamed_field_rejected(amy, backend):
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    element.set("Name", "Y")
    with pytest.raises(XmlEncryptionError):
        decrypt_value(element, amy.identity, amy.private_key, backend)


def test_recipient_list_edit_rejected(amy, john, eve, backend):
    # Adding an EncryptedKey for Eve changes the AAD → legit readers fail
    # closed rather than silently coexisting with a forged grant.
    element = encrypt_value("e1", "X", b"secret",
                            {amy.identity: amy.public_key}, backend)
    import xml.etree.ElementTree as ET

    key_info = element.find("KeyInfo")
    forged = ET.SubElement(key_info, "EncryptedKey",
                           {"Recipient": eve.identity})
    ET.SubElement(forged, "CipherValue").text = "QUJD"
    with pytest.raises(XmlEncryptionError):
        decrypt_value(element, amy.identity, amy.private_key, backend)


def test_accessors(amy, backend):
    element = encrypt_value("e9", "FieldName", b"v",
                            {amy.identity: amy.public_key}, backend)
    value = EncryptedValue(element)
    assert value.element_id == "e9"
    assert value.name == "FieldName"
    assert value.recipients == [amy.identity]
    assert len(value.wrapped_key_for(amy.identity)) == 128  # RSA-1024


def test_wrapped_key_for_unknown(amy, backend):
    element = encrypt_value("e1", "X", b"v",
                            {amy.identity: amy.public_key}, backend)
    with pytest.raises(XmlEncryptionError):
        EncryptedValue(element).wrapped_key_for("ghost@nowhere")


def test_wrong_tag_rejected():
    import xml.etree.ElementTree as ET

    with pytest.raises(XmlEncryptionError):
        EncryptedValue(ET.Element("NotEncrypted"))


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=400))
def test_property_roundtrip(amy, backend, payload):
    element = encrypt_value("e1", "X", payload,
                            {amy.identity: amy.public_key}, backend)
    assert decrypt_value(element, amy.identity, amy.private_key,
                         backend) == payload


def test_fresh_data_keys_per_element(amy, backend):
    a = encrypt_value("e1", "X", b"same", {amy.identity: amy.public_key},
                      backend)
    b = encrypt_value("e2", "X", b"same", {amy.identity: amy.public_key},
                      backend)
    assert (a.find("CipherData/CipherValue").text
            != b.find("CipherData/CipherValue").text)
