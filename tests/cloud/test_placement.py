"""Portal placement: pinning, counting, skew, system integration."""

from __future__ import annotations

import pytest

from repro.cloud.placement import PortalPlacement
from repro.cloud.system import CloudSystem
from repro.errors import CloudError
from repro.workloads.participants import build_world


@pytest.fixture(scope="module")
def world():
    # One RSA world for the whole module: keygen dominates test time.
    return build_world(["a@x", "tfc@x"], bits=1024)


def make_system(world, **kwargs):
    return CloudSystem(world.directory, world.keypair("tfc@x"),
                       backend=world.backend, **kwargs)


class TestPortalPlacement:
    def test_pin_is_stable(self):
        placement = PortalPlacement(["portal0", "portal1"])
        pid = "fleet0-000042"
        first = placement.portal_for(pid)
        for _ in range(5):
            assert placement.portal_for(pid) == first

    def test_counts_first_sightings_only(self):
        placement = PortalPlacement(["portal0", "portal1"])
        for _ in range(3):
            placement.portal_for("fleet0-000001")
        assert sum(placement.placed.values()) == 1

    def test_skew_over_population(self):
        placement = PortalPlacement([f"portal{i}" for i in range(4)])
        for i in range(10_000):
            placement.portal_for(f"fleet7-{i:06d}")
        assert placement.skew <= 1.25

    def test_to_dict_shape(self):
        placement = PortalPlacement(["portal1", "portal0"], vnodes=32)
        placement.portal_for("x")
        snapshot = placement.to_dict()
        assert snapshot["scheme"] == "ring"
        assert snapshot["vnodes"] == 32
        assert list(snapshot["portals"]) == ["portal0", "portal1"]
        assert sum(snapshot["portals"].values()) == 1


class TestSystemValidation:
    """CloudSystem rejects malformed portal/placement configuration."""

    def test_bool_portals_rejected(self, world):
        # bool is an int subclass; CloudSystem(portals=True) silently
        # meaning "one portal" would mask a caller bug.
        with pytest.raises(CloudError, match="integer"):
            make_system(world, portals=True)

    def test_non_integer_portals_rejected(self, world):
        with pytest.raises(CloudError, match="integer"):
            make_system(world, portals="2")
        with pytest.raises(CloudError, match="integer"):
            make_system(world, portals=2.0)

    def test_zero_portals_rejected(self, world):
        with pytest.raises(CloudError, match="at least one"):
            make_system(world, portals=0)

    def test_unknown_placement_rejected(self, world):
        with pytest.raises(CloudError, match="placement"):
            make_system(world, placement="random")

    def test_replicas_require_delta(self, world):
        with pytest.raises(CloudError, match="delta"):
            make_system(world, chunk_replicas=2)


class TestSystemRouting:
    def test_round_robin_has_no_ring(self, world):
        system = make_system(world, portals=2)
        assert system.placement is None
        assert system.portal_for("anything") is system.portals[0]

    def test_ring_pins_by_process_id(self, world):
        system = make_system(world, portals=3, placement="ring")
        assert system.placement is not None
        seen = {system.portal_for(f"p-{i}").portal_id
                for i in range(60)}
        assert len(seen) > 1  # multiple portals actually serve
        pinned = system.portal_for("p-7")
        assert all(system.portal_for("p-7") is pinned
                   for _ in range(3))

    def test_ring_client_sessions_cover_all_portals(self, world):
        system = make_system(world, portals=3, placement="ring")
        client = system.client(world.keypair("a@x"))
        assert len(client._sessions) == 3
