"""Simulated clock semantics."""

from __future__ import annotations

import pytest

from repro.cloud.simclock import SimClock


def test_starts_at_zero():
    assert SimClock().now() == 0.0


def test_custom_start():
    assert SimClock(5.0).now() == 5.0


def test_advance():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == 2.0


def test_advance_backwards_rejected():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_zero_advance_allowed():
    clock = SimClock(3.0)
    clock.advance(0)
    assert clock.now() == 3.0


def test_scheduled_callbacks_fire_in_order():
    clock = SimClock()
    fired = []
    clock.schedule(2.0, lambda: fired.append(("b", clock.now())))
    clock.schedule(1.0, lambda: fired.append(("a", clock.now())))
    clock.advance(3.0)
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert clock.now() == 3.0


def test_callbacks_beyond_horizon_wait():
    clock = SimClock()
    fired = []
    clock.schedule(10.0, lambda: fired.append("late"))
    clock.advance(5.0)
    assert fired == []
    assert clock.pending_events == 1
    clock.advance(5.0)
    assert fired == ["late"]
    assert clock.pending_events == 0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        SimClock().schedule(-0.1, lambda: None)


def test_same_time_callbacks_fifo():
    clock = SimClock()
    fired = []
    clock.schedule(1.0, lambda: fired.append(1))
    clock.schedule(1.0, lambda: fired.append(2))
    clock.advance(2.0)
    assert fired == [1, 2]
