"""Simulated clock semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cloud.simclock import CostCapture, SimClock


def test_starts_at_zero():
    assert SimClock().now() == 0.0


def test_custom_start():
    assert SimClock(5.0).now() == 5.0


def test_advance():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == 2.0


def test_advance_backwards_rejected():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_zero_advance_allowed():
    clock = SimClock(3.0)
    clock.advance(0)
    assert clock.now() == 3.0


def test_scheduled_callbacks_fire_in_order():
    clock = SimClock()
    fired = []
    clock.schedule(2.0, lambda: fired.append(("b", clock.now())))
    clock.schedule(1.0, lambda: fired.append(("a", clock.now())))
    clock.advance(3.0)
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert clock.now() == 3.0


def test_callbacks_beyond_horizon_wait():
    clock = SimClock()
    fired = []
    clock.schedule(10.0, lambda: fired.append("late"))
    clock.advance(5.0)
    assert fired == []
    assert clock.pending_events == 1
    clock.advance(5.0)
    assert fired == ["late"]
    assert clock.pending_events == 0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        SimClock().schedule(-0.1, lambda: None)


def test_same_time_callbacks_fifo():
    clock = SimClock()
    fired = []
    clock.schedule(1.0, lambda: fired.append(1))
    clock.schedule(1.0, lambda: fired.append(2))
    clock.advance(2.0)
    assert fired == [1, 2]


# -- properties --------------------------------------------------------------

_durations = st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False)


@given(advances=st.lists(_durations, max_size=50))
def test_time_is_monotone_under_interleaved_advances(advances):
    """Any interleaving of non-negative advances never moves time back."""
    clock = SimClock()
    seen = [clock.now()]
    for seconds in advances:
        clock.advance(seconds)
        seen.append(clock.now())
    assert seen == sorted(seen)
    assert clock.now() == pytest.approx(sum(advances))


@given(advances=st.lists(_durations, min_size=1, max_size=20),
       split=st.integers(min_value=0, max_value=20))
def test_advance_is_associative(advances, split):
    """Advancing in two batches lands where one batch would."""
    split = min(split, len(advances))
    one = SimClock()
    one.advance(sum(advances))
    two = SimClock()
    two.advance(sum(advances[:split]))
    two.advance(sum(advances[split:]))
    assert two.now() == pytest.approx(one.now())


# -- capture semantics -------------------------------------------------------


def test_capture_freezes_time_and_records_charges():
    clock = SimClock(5.0)
    with clock.capture() as bucket:
        clock.advance(1.0, component="portal")
        clock.advance(0.5, component="pool")
        clock.advance(0.25)
    assert clock.now() == 5.0
    assert bucket.total == pytest.approx(1.75)
    assert bucket.by_component() == pytest.approx(
        {"portal": 1.0, "pool": 0.5, "misc": 0.25})
    assert bucket.component("portal") == pytest.approx(1.0)
    assert bucket.component("absent") == 0.0


def test_capture_restores_normal_advancing():
    clock = SimClock()
    with clock.capture():
        clock.advance(9.0)
    clock.advance(1.0)
    assert clock.now() == 1.0


def test_nested_captures_see_only_their_own_charges():
    clock = SimClock()
    with clock.capture() as outer:
        clock.advance(1.0, component="a")
        with clock.capture() as inner:
            clock.advance(2.0, component="b")
        clock.advance(3.0, component="c")
    assert inner.by_component() == {"b": 2.0}
    assert outer.by_component() == {"a": 1.0, "c": 3.0}


def test_capture_rejects_negative_charges():
    clock = SimClock()
    with clock.capture():
        with pytest.raises(ValueError):
            clock.advance(-0.1)


@given(charges=st.lists(st.tuples(
    st.sampled_from(["portal", "pool", "notify", None]), _durations),
    max_size=30))
def test_captured_totals_match_equivalent_advances(charges):
    """A capture bucket accounts for exactly what advancing would cost."""
    clock = SimClock()
    with clock.capture() as bucket:
        for component, seconds in charges:
            clock.advance(seconds, component=component)
    assert clock.now() == 0.0
    assert bucket.total == pytest.approx(
        sum(seconds for _, seconds in charges))
    assert sum(bucket.by_component().values()) == pytest.approx(bucket.total)


# -- cross-process merge semantics -------------------------------------------


def test_merge_appends_charges_with_tags():
    bucket = CostCapture([("portal", 1.0)])
    bucket.merge([("pool", 0.5), ("notify", 0.25)])
    assert bucket.charges == [
        ("portal", 1.0), ("pool", 0.5), ("notify", 0.25)]
    assert bucket.by_component() == pytest.approx(
        {"portal": 1.0, "pool": 0.5, "notify": 0.25})


def test_merge_accepts_another_capture():
    a = CostCapture([("portal", 1.0)])
    b = CostCapture([("portal", 2.0), ("pool", 3.0)])
    a.merge(b)
    assert a.by_component() == pytest.approx({"portal": 3.0, "pool": 3.0})
    # The donor is untouched.
    assert b.by_component() == pytest.approx({"portal": 2.0, "pool": 3.0})


def test_absorb_into_active_capture_preserves_tags():
    """Pool-worker charges land in the capture bucket, not the floor."""
    clock = SimClock()
    with clock.capture() as bucket:
        clock.advance(1.0, component="portal")
        clock.absorb([("pool", 0.5), ("portal", 0.25)])
    assert clock.now() == 0.0
    assert bucket.by_component() == pytest.approx(
        {"portal": 1.25, "pool": 0.5})


def test_absorb_without_capture_advances_time():
    clock = SimClock(10.0)
    clock.absorb(CostCapture([("pool", 1.5), ("notify", 0.5)]))
    assert clock.now() == pytest.approx(12.0)


def test_absorb_fires_due_callbacks():
    """Absorbed time is real time: scheduled events still fire."""
    clock = SimClock()
    fired = []
    clock.schedule(1.0, lambda: fired.append(clock.now()))
    clock.absorb([("pool", 2.0)])
    assert fired == [1.0]
    assert clock.now() == pytest.approx(2.0)


@given(charges=st.lists(st.tuples(
    st.sampled_from(["portal", "pool", None]), _durations), max_size=20))
def test_absorb_conserves_every_charge(charges):
    """Capture-then-absorb loses nothing across the process boundary."""
    worker = SimClock()
    with worker.capture() as worker_bucket:
        for component, seconds in charges:
            worker.advance(seconds, component=component)
    # ... the worker's bucket crosses the pickle boundary as a list ...
    wire = list(worker_bucket.charges)
    parent = SimClock()
    with parent.capture() as merged:
        parent.absorb(wire)
    assert merged.total == pytest.approx(worker_bucket.total)
    assert merged.by_component() == pytest.approx(
        worker_bucket.by_component())
