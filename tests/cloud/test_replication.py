"""Replicated chunk store: factor-R placement, read-repair, corruption."""

from __future__ import annotations

import hashlib

import pytest

from repro.cloud.hbase import SimHBase
from repro.cloud.placement import ReplicatedChunkStore
from repro.errors import CloudError, StorageError


def chunk(text: str) -> tuple[str, bytes]:
    data = text.encode("utf-8")
    return hashlib.sha256(data).hexdigest(), data


@pytest.fixture()
def hbase():
    return SimHBase(region_servers=3)


@pytest.fixture()
def store(hbase):
    return ReplicatedChunkStore(hbase, shards=3, replicas=2)


class TestValidation:
    def test_bad_replica_counts(self, hbase):
        with pytest.raises(StorageError):
            ReplicatedChunkStore(hbase, shards=2, replicas=0)
        with pytest.raises(StorageError):
            ReplicatedChunkStore(hbase, shards=2, replicas=True)
        with pytest.raises(StorageError):
            ReplicatedChunkStore(hbase, shards=2, replicas="2")

    def test_replicas_beyond_shards(self, hbase):
        with pytest.raises(StorageError, match="replicas on"):
            ReplicatedChunkStore(hbase, shards=2, replicas=3)

    def test_no_shards(self, hbase):
        with pytest.raises(StorageError):
            ReplicatedChunkStore(hbase, shards=0)


class TestWrites:
    def test_put_lands_on_r_distinct_shards(self, store, hbase):
        digest, data = chunk("hello sharded world")
        assert store.put_chunk(digest, data)
        shards = store.replica_shards(digest)
        assert len(shards) == len(set(shards)) == 2
        for shard_id in shards:
            row = hbase.get(store._table(shard_id), digest)
            assert row[("c", "b")] == data

    def test_duplicate_put_is_dedup_hit(self, store):
        digest, data = chunk("same bytes twice")
        assert store.put_chunk(digest, data)
        assert not store.put_chunk(digest, data)
        assert store.stats["dedup_hits"] == 1
        assert store.stats["unique_chunks"] == 1
        assert store.stats["logical_bytes"] == 2 * len(data)
        assert store.dedup_ratio == pytest.approx(2.0)

    def test_put_chunks_counts_new(self, store):
        chunks = dict(chunk(f"c{i}") for i in range(5))
        assert store.put_chunks(chunks) == 5
        assert store.put_chunks(chunks) == 0


class TestReads:
    def test_round_trip(self, store):
        chunks = dict(chunk(f"payload {i}") for i in range(20))
        store.put_chunks(chunks)
        assert store.get_chunks(list(chunks)) == chunks
        assert store.stats["replica_fallbacks"] == 0

    def test_missing_digest_absent_from_result(self, store):
        digest, data = chunk("present")
        store.put_chunk(digest, data)
        ghost, _ = chunk("never stored")
        out = store.get_chunks([digest, ghost])
        assert digest in out and ghost not in out


class TestReadRepair:
    def test_lost_primary_heals_from_replica(self, store, hbase):
        digest, data = chunk("repair me")
        store.put_chunk(digest, data)
        damaged = store.damage_replica(digest, shard_index=0)
        assert store.get_chunks([digest]) == {digest: data}
        assert store.stats["replica_fallbacks"] == 1
        assert store.stats["read_repairs"] == 1
        # The healed copy is durable: the damaged shard holds it again.
        row = hbase.get(store._table(damaged), digest)
        assert row[("c", "b")] == data

    def test_corrupt_primary_detected_and_healed(self, store):
        digest, data = chunk("bit rot victim")
        store.put_chunk(digest, data)
        store.damage_replica(digest, shard_index=0, corrupt=True)
        assert store.get_chunks([digest]) == {digest: data}
        assert store.stats["corrupt_replicas"] >= 1
        assert store.stats["read_repairs"] == 1
        # Second read is clean — no further fallbacks needed.
        before = store.stats["replica_fallbacks"]
        assert store.get_chunks([digest]) == {digest: data}
        assert store.stats["replica_fallbacks"] == before

    def test_all_replicas_lost_is_a_miss(self, store):
        digest, data = chunk("gone forever")
        store.put_chunk(digest, data)
        store.damage_replica(digest, shard_index=0)
        store.damage_replica(digest, shard_index=1)
        assert store.get_chunks([digest]) == {}

    def test_all_replicas_corrupt_never_served(self, store):
        digest, data = chunk("fully rotten")
        store.put_chunk(digest, data)
        store.damage_replica(digest, shard_index=0, corrupt=True)
        store.damage_replica(digest, shard_index=1, corrupt=True)
        assert store.get_chunks([digest]) == {}

    def test_damage_index_out_of_range(self, store):
        digest, data = chunk("x")
        store.put_chunk(digest, data)
        with pytest.raises(CloudError):
            store.damage_replica(digest, shard_index=5)


class TestPlacementProperties:
    def test_replica_shards_deterministic(self, hbase):
        a = ReplicatedChunkStore(hbase, shards=3, replicas=2)
        cluster_b = SimHBase(region_servers=3)
        b = ReplicatedChunkStore(cluster_b, shards=3, replicas=2)
        for i in range(100):
            digest, _ = chunk(f"d{i}")
            assert a.replica_shards(digest) == b.replica_shards(digest)

    def test_shards_share_the_load(self, store):
        chunks = dict(chunk(f"spread {i}") for i in range(300))
        store.put_chunks(chunks)
        per_shard = {
            shard_id: sum(
                region.row_count for region in
                store.hbase.regions_of(store._table(shard_id))
            )
            for shard_id in store.shard_ids
        }
        assert all(count > 0 for count in per_shard.values())
        # Factor-2 replication stores 600 physical rows over 3 shards.
        assert sum(per_shard.values()) == 2 * len(chunks)
