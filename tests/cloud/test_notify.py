"""Notification service unit tests."""

from __future__ import annotations

import pytest

from repro.cloud.network import WAN
from repro.cloud.notify import NotificationService
from repro.cloud.simclock import SimClock


def make_service():
    clock = SimClock()
    return clock, NotificationService(clock=clock, network=WAN)


def test_notify_and_inbox():
    clock, service = make_service()
    note = service.notify("alice@x", "p1", "A")
    assert note.recipient == "alice@x"
    assert note.sent_at == clock.now()
    assert service.inbox("alice@x") == [note]
    assert service.sent == 1


def test_inboxes_are_per_identity():
    _, service = make_service()
    service.notify("alice@x", "p1", "A")
    service.notify("bob@y", "p1", "B")
    assert len(service.inbox("alice@x")) == 1
    assert len(service.inbox("bob@y")) == 1
    assert service.inbox("carol@z") == []


def test_inbox_ordering():
    _, service = make_service()
    service.notify("alice@x", "p1", "A")
    service.notify("alice@x", "p1", "B")
    activities = [n.activity_id for n in service.inbox("alice@x")]
    assert activities == ["A", "B"]


def test_drain_clears_inbox():
    _, service = make_service()
    service.notify("alice@x", "p1", "A")
    drained = service.drain("alice@x")
    assert [n.activity_id for n in drained] == ["A"]
    assert service.inbox("alice@x") == []
    assert service.drain("alice@x") == []


def test_delivery_charges_the_clock():
    clock, service = make_service()
    before = clock.now()
    service.notify("alice@x", "p1", "A")
    assert clock.now() > before


def test_delivery_cost_is_the_full_payload_transfer():
    clock, service = make_service()
    payload = NotificationService.payload_bytes("alice@x", "p1", "A")
    before = clock.now()
    service.notify("alice@x", "p1", "A")
    assert clock.now() - before == \
        pytest.approx(WAN.transfer_seconds(payload))


def test_bigger_payload_costs_more():
    clock, service = make_service()
    t0 = clock.now()
    service.notify("a@x", "p", "A")
    short = clock.now() - t0
    t1 = clock.now()
    service.notify("a-much-longer-recipient@example.com",
                   "process-with-a-long-id", "ACTIVITY-LONG")
    assert clock.now() - t1 > short


def test_payload_bytes_counts_utf8():
    assert NotificationService.payload_bytes("a", "b", "c") == \
        len("a\x00b\x00c".encode("utf-8"))
    assert NotificationService.payload_bytes("ü", "b", "c") == \
        len("ü\x00b\x00c".encode("utf-8"))


def test_inbox_returns_copy():
    _, service = make_service()
    service.notify("alice@x", "p1", "A")
    listed = service.inbox("alice@x")
    listed.clear()
    assert len(service.inbox("alice@x")) == 1
