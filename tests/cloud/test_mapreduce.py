"""MapReduce engine over the simulated HBase."""

from __future__ import annotations

import pytest

from repro.cloud.hbase import SimHBase
from repro.cloud.mapreduce import MapReduceEngine


@pytest.fixture()
def cluster():
    hbase = SimHBase(region_servers=3, split_threshold_rows=10)
    hbase.create_table("events")
    for i in range(50):
        hbase.put("events", f"e{i:03d}", "d", "kind",
                  b"even" if i % 2 == 0 else b"odd")
        hbase.put("events", f"e{i:03d}", "d", "value", str(i).encode())
    return hbase


def test_word_count_style_job(cluster):
    engine = MapReduceEngine(cluster)

    def map_fn(row_key, row):
        yield row[("d", "kind")].decode(), 1

    results, stats = engine.run("events", map_fn,
                                lambda key, values: sum(values))
    assert results == {"even": 25, "odd": 25}
    assert stats.input_rows == 50
    assert stats.shuffled_records == 50
    assert stats.reduce_groups == 2


def test_one_map_task_per_region(cluster):
    engine = MapReduceEngine(cluster)
    _, stats = engine.run("events", lambda k, r: [], lambda k, v: None)
    assert stats.map_tasks == cluster.region_count("events")
    assert stats.map_tasks >= 2  # splits happened


def test_aggregation_job(cluster):
    engine = MapReduceEngine(cluster)

    def map_fn(row_key, row):
        yield "total", int(row[("d", "value")])

    results, _ = engine.run("events", map_fn,
                            lambda key, values: sum(values))
    assert results["total"] == sum(range(50))


def test_makespan_accounting(cluster):
    engine = MapReduceEngine(cluster)
    before = cluster.clock.now()
    _, stats = engine.run("events", lambda k, r: [("x", 1)],
                          lambda k, v: len(v))
    assert stats.simulated_makespan_seconds > 0
    assert stats.simulated_makespan_seconds <= stats.total_compute_seconds + 1e-9
    assert cluster.clock.now() >= before + stats.simulated_makespan_seconds


def test_empty_table():
    hbase = SimHBase(region_servers=1)
    hbase.create_table("empty")
    results, stats = MapReduceEngine(hbase).run(
        "empty", lambda k, r: [("k", 1)], lambda k, v: sum(v)
    )
    assert results == {}
    assert stats.input_rows == 0
    assert stats.map_tasks == 1
