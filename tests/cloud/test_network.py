"""Network cost model."""

from __future__ import annotations

import pytest

from repro.cloud.network import LAN, WAN, NetworkModel


def test_transfer_cost_components():
    model = NetworkModel(latency_seconds=0.01,
                         bandwidth_bytes_per_second=1000)
    assert model.transfer_seconds(0) == pytest.approx(0.01)
    assert model.transfer_seconds(500) == pytest.approx(0.01 + 0.5)


def test_rpc_is_two_transfers():
    model = NetworkModel(latency_seconds=0.002,
                         bandwidth_bytes_per_second=1e6)
    assert model.rpc_seconds(100, 900) == pytest.approx(
        model.transfer_seconds(100) + model.transfer_seconds(900)
    )


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        LAN.transfer_seconds(-1)


def test_lan_faster_than_wan():
    assert LAN.transfer_seconds(10_000) < WAN.transfer_seconds(10_000)


def test_cost_monotone_in_size():
    sizes = [0, 100, 10_000, 1_000_000]
    costs = [WAN.transfer_seconds(s) for s in sizes]
    assert costs == sorted(costs)
