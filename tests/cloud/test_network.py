"""Network cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cloud.network import LAN, WAN, NetworkModel


def test_transfer_cost_components():
    model = NetworkModel(latency_seconds=0.01,
                         bandwidth_bytes_per_second=1000)
    assert model.transfer_seconds(0) == pytest.approx(0.01)
    assert model.transfer_seconds(500) == pytest.approx(0.01 + 0.5)


def test_rpc_is_two_transfers():
    model = NetworkModel(latency_seconds=0.002,
                         bandwidth_bytes_per_second=1e6)
    assert model.rpc_seconds(100, 900) == pytest.approx(
        model.transfer_seconds(100) + model.transfer_seconds(900)
    )


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        LAN.transfer_seconds(-1)


def test_lan_faster_than_wan():
    assert LAN.transfer_seconds(10_000) < WAN.transfer_seconds(10_000)


def test_cost_monotone_in_size():
    sizes = [0, 100, 10_000, 1_000_000]
    costs = [WAN.transfer_seconds(s) for s in sizes]
    assert costs == sorted(costs)


# -- properties --------------------------------------------------------------

_models = st.builds(
    NetworkModel,
    latency_seconds=st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False),
    bandwidth_bytes_per_second=st.floats(min_value=1.0, max_value=1e12,
                                         allow_nan=False),
)


@given(model=_models)
def test_zero_bytes_costs_exactly_the_latency(model):
    assert model.transfer_seconds(0) == pytest.approx(
        model.latency_seconds)


@given(model=_models, size=st.integers(min_value=-10**9, max_value=-1))
def test_any_negative_size_rejected(model, size):
    with pytest.raises(ValueError):
        model.transfer_seconds(size)


@given(model=_models,
       a=st.integers(min_value=0, max_value=10**9),
       b=st.integers(min_value=0, max_value=10**9))
def test_transfer_cost_monotone_and_additive_above_latency(model, a, b):
    small, large = sorted((a, b))
    assert model.transfer_seconds(small) <= model.transfer_seconds(large)
    # per-byte cost is linear: the latency is charged exactly once
    assert model.transfer_seconds(a + b) == pytest.approx(
        model.transfer_seconds(a) + model.transfer_seconds(b)
        - model.latency_seconds)
