"""Consistent-hash ring: determinism, balance, stability, replication."""

from __future__ import annotations

import pytest

from repro.cloud.sharding import DEFAULT_VNODES, HashRing, placement_skew
from repro.errors import CloudError


def keys(count: int, prefix: str = "fleet0-") -> list[str]:
    return [f"{prefix}{i:06d}" for i in range(count)]


class TestConstruction:
    def test_needs_a_node(self):
        with pytest.raises(CloudError):
            HashRing([])

    def test_needs_a_vnode(self):
        with pytest.raises(CloudError):
            HashRing(["a"], vnodes=0)

    def test_duplicate_node_rejected(self):
        with pytest.raises(CloudError):
            HashRing(["a", "a"])

    def test_nodes_in_insertion_order(self):
        ring = HashRing(["c", "a", "b"])
        assert ring.nodes == ["c", "a", "b"]


class TestDeterminism:
    def test_same_inputs_same_placement(self):
        a = HashRing(["p0", "p1", "p2"], vnodes=64, seed=3)
        b = HashRing(["p0", "p1", "p2"], vnodes=64, seed=3)
        for key in keys(500):
            assert a.node_for(key) == b.node_for(key)

    def test_insertion_order_irrelevant(self):
        a = HashRing(["p0", "p1", "p2"])
        b = HashRing(["p2", "p0", "p1"])
        for key in keys(500):
            assert a.node_for(key) == b.node_for(key)

    def test_seed_changes_placement(self):
        a = HashRing(["p0", "p1"], seed=0)
        b = HashRing(["p0", "p1"], seed=1)
        sample = keys(500)
        moved = sum(1 for k in sample
                    if a.node_for(k) != b.node_for(k))
        assert moved > 0

    def test_known_pin(self):
        # A frozen observation: placement must never drift between
        # versions, or stored fleet reports stop being reproducible.
        ring = HashRing(["portal0", "portal1"], vnodes=DEFAULT_VNODES)
        observed = {ring.node_for(k) for k in keys(50)}
        assert observed == {"portal0", "portal1"}
        again = HashRing(["portal0", "portal1"], vnodes=DEFAULT_VNODES)
        assert [ring.node_for(k) for k in keys(50)] == \
               [again.node_for(k) for k in keys(50)]


class TestBalance:
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 5, 8])
    def test_skew_bounded_at_10k_keys(self, nodes):
        # The acceptance bound: max/mean ≤ 1.25 at 10k instances for
        # every tier size the benchmarks sweep.
        ring = HashRing([f"portal{i}" for i in range(nodes)])
        counts = ring.placement(keys(10_000))
        assert placement_skew(counts) <= 1.25

    def test_every_node_present_in_histogram(self):
        ring = HashRing(["a", "b", "c"])
        counts = ring.placement(keys(30))
        assert set(counts) == {"a", "b", "c"}

    def test_histogram_total(self):
        ring = HashRing(["a", "b"])
        counts = ring.placement(keys(100))
        assert sum(counts.values()) == 100


class TestStability:
    def test_add_node_moves_about_one_over_n(self):
        sample = keys(10_000)
        before = HashRing(["p0", "p1", "p2"])
        after = HashRing(["p0", "p1", "p2", "p3"])
        moved = after.moved_keys(before, sample)
        # Ideal is 1/4 of the keys; allow generous slack either side
        # while still ruling out a wholesale reshuffle.
        assert 0.15 * len(sample) < moved < 0.40 * len(sample)

    def test_only_new_node_gains_keys(self):
        sample = keys(2_000)
        before = HashRing(["p0", "p1"])
        after = HashRing(["p0", "p1"])
        after.add_node("p2")
        for key in sample:
            if after.node_for(key) != before.node_for(key):
                assert after.node_for(key) == "p2"

    def test_remove_restores_prior_placement(self):
        sample = keys(2_000)
        ring = HashRing(["p0", "p1"])
        grown = HashRing(["p0", "p1", "p2"])
        grown.remove_node("p2")
        assert grown.moved_keys(ring, sample) == 0

    def test_remove_unknown_and_last(self):
        ring = HashRing(["only"])
        with pytest.raises(CloudError):
            ring.remove_node("ghost")
        with pytest.raises(CloudError):
            ring.remove_node("only")


class TestReplicaSets:
    def test_distinct_nodes_primary_first(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in keys(200):
            chain = ring.nodes_for(key, 3)
            assert len(chain) == len(set(chain)) == 3
            assert chain[0] == ring.node_for(key)

    def test_count_bounds(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(CloudError):
            ring.nodes_for("k", 0)
        with pytest.raises(CloudError):
            ring.nodes_for("k", 3)

    def test_full_membership_chain(self):
        ring = HashRing(["a", "b", "c"])
        assert sorted(ring.nodes_for("some-key", 3)) == ["a", "b", "c"]


class TestSkewMetric:
    def test_empty_and_zero_are_balanced(self):
        assert placement_skew({}) == 1.0
        assert placement_skew({"a": 0, "b": 0}) == 1.0

    def test_perfect_balance(self):
        assert placement_skew({"a": 5, "b": 5}) == 1.0

    def test_skewed(self):
        assert placement_skew({"a": 9, "b": 3}) == pytest.approx(1.5)
