"""Property tests: the storage simulators against reference models.

HBase is checked against a plain sorted dict, HDFS against a dict of
files, under random operation sequences — including random region
splits (driven by tiny thresholds) and random datanode failures kept
within the replication budget.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cloud.hbase import SimHBase
from repro.cloud.hdfs import SimHdfs

_keys = st.text(alphabet="abcdef0123456789", min_size=1, max_size=6)
_values = st.binary(min_size=0, max_size=64)


class TestHBaseModel:
    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), _keys, _values),
        max_size=60,
    ))
    def test_matches_dict_model(self, ops):
        cluster = SimHBase(region_servers=2, split_threshold_rows=5)
        cluster.create_table("t")
        model: dict[str, bytes] = {}
        for op, key, value in ops:
            if op == "put":
                cluster.put("t", key, "cf", "q", value)
                model[key] = value
            else:
                cluster.delete_row("t", key)
                model.pop(key, None)
        # Point reads agree.
        for key, value in model.items():
            assert cluster.get("t", key) == {("cf", "q"): value}
        # Full scans agree and come back sorted, across any splits.
        scanned = cluster.scan("t")
        assert [k for k, _ in scanned] == sorted(model)
        assert {k: row[("cf", "q")] for k, row in scanned} == model
        # Region ranges always partition the keyspace.
        regions = cluster.regions_of("t")
        assert regions[0].start_key == ""
        for left, right in zip(regions, regions[1:]):
            assert left.end_key == right.start_key

    @settings(max_examples=15, deadline=None)
    @given(keys=st.lists(_keys, min_size=12, max_size=40, unique=True))
    def test_row_count_conserved_across_splits(self, keys):
        cluster = SimHBase(region_servers=3, split_threshold_rows=4)
        cluster.create_table("t")
        for key in keys:
            cluster.put("t", key, "cf", "q", b"v")
        assert cluster.total_rows("t") == len(keys)
        hosted = sum(
            region.row_count
            for server in cluster.servers.values()
            for region in server.regions
        )
        assert hosted == len(keys)


class TestHdfsModel:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["write", "overwrite", "delete"]),
                  _keys, _values),
        max_size=40,
    ))
    def test_matches_dict_model(self, ops):
        hdfs = SimHdfs(datanodes=3, replication=2, block_size=16)
        model: dict[str, bytes] = {}
        for op, path, data in ops:
            if op in ("write", "overwrite"):
                hdfs.write(path, data)
                model[path] = data
            elif path in model:
                hdfs.delete(path)
                del model[path]
        for path, data in model.items():
            assert hdfs.read(path) == data
        assert hdfs.list_files() == sorted(model)

    @settings(max_examples=15, deadline=None)
    @given(
        files=st.dictionaries(_keys, _values, min_size=1, max_size=10),
        victim=st.integers(0, 3),
    )
    def test_single_failure_never_loses_data(self, files, victim):
        hdfs = SimHdfs(datanodes=4, replication=3, block_size=16)
        for path, data in files.items():
            hdfs.write(path, data)
        hdfs.kill_node(f"dn{victim}")
        for path, data in files.items():
            assert hdfs.read(path) == data
        assert hdfs.under_replicated_blocks() == 0

    @settings(max_examples=10, deadline=None)
    @given(files=st.dictionaries(_keys, _values, min_size=1, max_size=6))
    def test_two_failures_within_replication_budget(self, files):
        hdfs = SimHdfs(datanodes=5, replication=3, block_size=16)
        for path, data in files.items():
            hdfs.write(path, data)
        hdfs.kill_node("dn0")
        hdfs.kill_node("dn1")
        for path, data in files.items():
            assert hdfs.read(path) == data


class TestRegionServerRecoveryModel:
    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["put", "delete", "kill"]),
                      _keys, _values),
            min_size=5, max_size=50,
        ),
    )
    def test_random_kills_never_lose_acknowledged_writes(self, ops):
        cluster = SimHBase(region_servers=3, split_threshold_rows=6)
        cluster.create_table("t")
        model: dict[str, bytes] = {}
        killed = 0
        for op, key, value in ops:
            if op == "put":
                cluster.put("t", key, "cf", "q", value)
                model[key] = value
            elif op == "delete":
                cluster.delete_row("t", key)
                model.pop(key, None)
            elif killed < 2:  # keep one server alive
                victim = f"rs{killed}"
                cluster.kill_server(victim)
                killed += 1
        for key, value in model.items():
            assert cluster.get("t", key) == {("cf", "q"): value}
        assert [k for k, _ in cluster.scan("t")] == sorted(model)
