"""Simulated HBase: tables, regions, splits, balancing."""

from __future__ import annotations

import pytest

from repro.cloud.hbase import SimHBase
from repro.errors import RegionError, StorageError


@pytest.fixture()
def hbase():
    cluster = SimHBase(region_servers=3, split_threshold_rows=8)
    cluster.create_table("t")
    return cluster


class TestTableOps:
    def test_create_duplicate_rejected(self, hbase):
        with pytest.raises(StorageError):
            hbase.create_table("t")

    def test_unknown_table(self, hbase):
        with pytest.raises(StorageError):
            hbase.regions_of("ghost")
        with pytest.raises(RegionError):
            hbase.get("ghost", "row")

    def test_put_get(self, hbase):
        hbase.put("t", "row1", "cf", "q", b"value")
        row = hbase.get("t", "row1")
        assert row == {("cf", "q"): b"value"}

    def test_get_missing_row(self, hbase):
        assert hbase.get("t", "ghost") == {}

    def test_multiple_cells_per_row(self, hbase):
        hbase.put("t", "r", "cf", "a", b"1")
        hbase.put("t", "r", "cf", "b", b"2")
        hbase.put("t", "r", "other", "a", b"3")
        assert len(hbase.get("t", "r")) == 3

    def test_overwrite_cell(self, hbase):
        hbase.put("t", "r", "cf", "q", b"old")
        hbase.put("t", "r", "cf", "q", b"new")
        assert hbase.get("t", "r")[("cf", "q")] == b"new"

    def test_delete_row(self, hbase):
        hbase.put("t", "r", "cf", "q", b"v")
        hbase.delete_row("t", "r")
        assert hbase.get("t", "r") == {}


class TestScan:
    @pytest.fixture()
    def populated(self, hbase):
        for i in range(20):
            hbase.put("t", f"key{i:02d}", "cf", "q", str(i).encode())
        return hbase

    def test_full_scan_ordered(self, populated):
        rows = populated.scan("t")
        assert [k for k, _ in rows] == [f"key{i:02d}" for i in range(20)]

    def test_range_scan(self, populated):
        rows = populated.scan("t", start_key="key05", stop_key="key10")
        assert [k for k, _ in rows] == \
            ["key05", "key06", "key07", "key08", "key09"]

    def test_limit(self, populated):
        assert len(populated.scan("t", limit=7)) == 7

    def test_scan_crosses_regions(self, populated):
        # 20 rows with threshold 8 forces at least one split.
        assert populated.region_count("t") >= 2
        assert len(populated.scan("t")) == 20


class TestRegions:
    def test_auto_split(self, hbase):
        for i in range(30):
            hbase.put("t", f"r{i:03d}", "cf", "q", b"v")
        assert hbase.region_count("t") >= 3
        assert hbase.stats["splits"] >= 2
        assert hbase.total_rows("t") == 30
        # Every row still reachable after splits.
        for i in range(30):
            assert hbase.get("t", f"r{i:03d}") != {}

    def test_region_ranges_partition_keyspace(self, hbase):
        for i in range(40):
            hbase.put("t", f"r{i:03d}", "cf", "q", b"v")
        regions = hbase.regions_of("t")
        assert regions[0].start_key == ""
        for left, right in zip(regions, regions[1:]):
            assert left.end_key == right.start_key

    def test_regions_assigned_to_servers(self, hbase):
        for i in range(40):
            hbase.put("t", f"r{i:03d}", "cf", "q", b"v")
        hosted = sum(len(s.regions) for s in hbase.servers.values())
        assert hosted == hbase.region_count("t") + 0  # only table "t"

    def test_balance_moves_regions(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=4)
        cluster.create_table("t")
        for i in range(40):
            cluster.put("t", f"r{i:03d}", "cf", "q", b"v")
        # Force imbalance: pile everything on one server.
        all_regions = [r for s in cluster.servers.values()
                       for r in s.regions]
        for server in cluster.servers.values():
            server.regions = []
        first = next(iter(cluster.servers.values()))
        first.regions = all_regions
        moved = cluster.balance()
        assert moved > 0
        loads = [s.load for s in cluster.servers.values()]
        assert max(loads) - min(loads) <= max(r.row_count
                                              for r in all_regions)

    def test_store_files_written_to_hdfs(self, hbase):
        for i in range(30):
            hbase.put("t", f"r{i:03d}", "cf", "q", b"v")
        assert hbase.hdfs.list_files("/hbase/t/")


def test_needs_a_region_server():
    with pytest.raises(StorageError):
        SimHBase(region_servers=0)


class TestRegionServerFailure:
    def test_unflushed_writes_survive_via_wal(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=1000)
        cluster.create_table("t")
        for i in range(12):
            cluster.put("t", f"r{i:02d}", "cf", "q", f"v{i}".encode())
        # Nothing flushed yet (huge memstore threshold): the rows live
        # only in memory + WAL.
        region = cluster.regions_of("t")[0]
        victim = cluster.server_of(region).server_id
        replayed = cluster.kill_server(victim)
        assert replayed == 12
        for i in range(12):
            assert cluster.get("t", f"r{i:02d}") == \
                {("cf", "q"): f"v{i}".encode()}

    def test_deletes_survive_recovery(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=1000)
        cluster.create_table("t")
        cluster.put("t", "keep", "cf", "q", b"1")
        cluster.put("t", "drop", "cf", "q", b"2")
        cluster.delete_row("t", "drop")
        victim = cluster.server_of(cluster.regions_of("t")[0]).server_id
        cluster.kill_server(victim)
        assert cluster.get("t", "keep") != {}
        assert cluster.get("t", "drop") == {}

    def test_flushed_plus_wal_recovery(self):
        cluster = SimHBase(region_servers=3, split_threshold_rows=1000,
                           memstore_flush_bytes=1)  # flush every put
        cluster.create_table("t")
        cluster.put("t", "a", "cf", "q", b"flushed")
        cluster.memstore_flush_bytes = 1 << 30  # stop flushing
        cluster.put("t", "b", "cf", "q", b"wal-only")
        victim = cluster.server_of(cluster.regions_of("t")[0]).server_id
        cluster.kill_server(victim)
        assert cluster.get("t", "a")[("cf", "q")] == b"flushed"
        assert cluster.get("t", "b")[("cf", "q")] == b"wal-only"

    def test_regions_reassigned_to_survivors(self):
        cluster = SimHBase(region_servers=3, split_threshold_rows=4)
        cluster.create_table("t")
        for i in range(20):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v")
        cluster.kill_server("rs0")
        for region in cluster.regions_of("t"):
            host = cluster.server_of(region)
            assert host.alive and host.server_id != "rs0"
        assert cluster.total_rows("t") == 20

    def test_dead_server_gets_no_new_regions(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=4)
        cluster.create_table("t")
        cluster.kill_server("rs0")
        for i in range(20):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v")
        assert all(not r for r in (cluster.servers["rs0"].regions,))

    def test_last_server_death_is_fatal(self):
        cluster = SimHBase(region_servers=1)
        cluster.create_table("t")
        cluster.put("t", "r", "cf", "q", b"v")
        with pytest.raises(RegionError, match="last region server"):
            cluster.kill_server("rs0")

    def test_kill_unknown_or_dead(self):
        cluster = SimHBase(region_servers=2)
        with pytest.raises(RegionError):
            cluster.kill_server("rs9")
        cluster.kill_server("rs0")
        with pytest.raises(RegionError, match="already dead"):
            cluster.kill_server("rs0")

    def test_combined_datanode_and_regionserver_failure(self):
        # The full §1 durability story: lose a storage node AND a
        # serving node; acknowledged data still readable.
        cluster = SimHBase(region_servers=2, split_threshold_rows=1000)
        cluster.create_table("t")
        for i in range(8):
            cluster.put("t", f"r{i}", "cf", "q", str(i).encode())
        cluster.hdfs.kill_node("dn0")
        victim = cluster.server_of(cluster.regions_of("t")[0]).server_id
        cluster.kill_server(victim)
        for i in range(8):
            assert cluster.get("t", f"r{i}")[("cf", "q")] == str(i).encode()

    def test_balance_skips_dead_servers(self):
        cluster = SimHBase(region_servers=3, split_threshold_rows=4)
        cluster.create_table("t")
        for i in range(30):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v")
        cluster.kill_server("rs0")
        cluster.balance()
        assert cluster.servers["rs0"].regions == []
        assert cluster.total_rows("t") == 30


class TestRowCodec:
    """Store-file serialisation: encode_rows/decode_rows round-trips."""

    def _region(self):
        from repro.cloud.hbase import _END_KEY, Region
        return Region(region_id=99, table="t",
                      start_key="", end_key=_END_KEY)

    def test_round_trip(self):
        from repro.cloud.hbase import Cell, Region
        region = self._region()
        region.rows = {
            "r1": {("cf", "a"): Cell(b"alpha", 1.5),
                   ("cf", "b"): Cell(b"\x00\xffbinary", 2.0)},
            "r2": {("other", "q"): Cell(b"", 0.0)},
        }
        decoded = Region.decode_rows(region.encode_rows())
        assert decoded == region.rows

    def test_empty_region_round_trip(self):
        from repro.cloud.hbase import Region
        region = self._region()
        assert Region.decode_rows(region.encode_rows()) == {}
        assert Region.decode_rows(b"") == {}

    def test_unicode_row_keys_and_qualifiers(self):
        from repro.cloud.hbase import Cell, Region
        region = self._region()
        region.rows = {
            "région-clé ☃": {
                ("famille", "données"): Cell(b"payload", 3.25),
            },
            "中文键": {("cf", "q"): Cell(b"v", 1.0)},
        }
        decoded = Region.decode_rows(region.encode_rows())
        assert decoded == region.rows

    def test_timestamps_survive(self):
        from repro.cloud.hbase import Cell, Region
        region = self._region()
        region.rows = {"r": {("cf", "q"): Cell(b"v", 123.456789)}}
        decoded = Region.decode_rows(region.encode_rows())
        assert decoded["r"][("cf", "q")].timestamp == 123.456789


class TestWalCodec:
    """Write-ahead-log serialisation: encode_wal/replay_wal."""

    def _region(self):
        from repro.cloud.hbase import _END_KEY, Region
        return Region(region_id=99, table="t",
                      start_key="", end_key=_END_KEY)

    def test_round_trip_applies_puts(self):
        region = self._region()
        region.wal = [
            ("put", "r1", "cf", "q", b"one", 1.0),
            ("put", "r2", "cf", "q", b"two", 2.0),
            ("put", "r1", "cf", "q", b"one-v2", 3.0),
        ]
        encoded = region.encode_wal()
        fresh = self._region()
        applied = fresh.replay_wal(encoded)
        assert applied == 3
        assert fresh.rows["r1"][("cf", "q")].value == b"one-v2"
        assert fresh.rows["r2"][("cf", "q")].value == b"two"

    def test_tombstones_drop_rows(self):
        region = self._region()
        region.wal = [
            ("put", "r1", "cf", "q", b"v", 1.0),
            ("delete", "r1", "", "", b"", 2.0),
        ]
        fresh = self._region()
        fresh.replay_wal(region.encode_wal())
        assert "r1" not in fresh.rows

    def test_empty_wal(self):
        region = self._region()
        assert region.encode_wal() == b"[]"
        assert self._region().replay_wal(b"") == 0

    def test_unicode_wal_entries(self):
        region = self._region()
        region.wal = [("put", "clé ☃", "cf", "données",
                       b"\x00\x01\xfe", 1.0)]
        fresh = self._region()
        fresh.replay_wal(region.encode_wal())
        value = fresh.rows["clé ☃"][("cf", "données")]
        assert value.value == b"\x00\x01\xfe"


class TestByteSplit:
    """Region auto-split on stored-byte threshold + auto-rebalance."""

    def test_byte_threshold_splits_fat_rows(self):
        # 16 rows of 1 KiB each never trips a 256-row threshold, but
        # crosses 8 KiB of stored bytes and must split anyway.
        cluster = SimHBase(region_servers=2,
                           split_threshold_rows=256,
                           split_threshold_bytes=8 * 1024)
        cluster.create_table("t")
        for i in range(16):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"x" * 1024)
        assert cluster.stats["splits"] >= 1
        assert cluster.region_count("t") >= 2

    def test_no_byte_threshold_no_byte_split(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=256)
        cluster.create_table("t")
        for i in range(16):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"x" * 1024)
        assert cluster.stats["splits"] == 0

    def test_data_bytes_tracks_overwrites_and_deletes(self):
        cluster = SimHBase(region_servers=1)
        cluster.create_table("t")
        cluster.put("t", "r", "cf", "q", b"xxxx")
        assert cluster.total_bytes("t") == 4
        cluster.put("t", "r", "cf", "q", b"yy")       # overwrite shrinks
        assert cluster.total_bytes("t") == 2
        cluster.put("t", "r", "cf", "other", b"zzz")  # second cell adds
        assert cluster.total_bytes("t") == 5
        cluster.delete_row("t", "r")
        assert cluster.total_bytes("t") == 0

    def test_bytes_preserved_across_split(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=4)
        cluster.create_table("t")
        for i in range(20):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v" * 10)
        assert cluster.stats["splits"] >= 1
        assert cluster.total_bytes("t") == 200
        assert sum(r.recompute_bytes()
                   for r in cluster.regions_of("t")) == 200

    def test_auto_balance_spreads_split_regions(self):
        cluster = SimHBase(region_servers=3, split_threshold_rows=4)
        cluster.create_table("t")
        for i in range(40):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v")
        loads = cluster.server_loads()
        assert cluster.stats["moves"] >= 1
        hosting = [count for count in loads.values() if count > 0]
        assert len(hosting) >= 2  # splits did not pile on one server

    def test_auto_balance_off_keeps_regions_put(self):
        cluster = SimHBase(region_servers=3, split_threshold_rows=4,
                           auto_balance=False)
        cluster.create_table("t")
        for i in range(40):
            cluster.put("t", f"r{i:02d}", "cf", "q", b"v")
        assert cluster.stats["splits"] >= 1
        assert cluster.stats["moves"] == 0

    def test_recovery_recomputes_bytes(self):
        cluster = SimHBase(region_servers=2, split_threshold_rows=1000)
        cluster.create_table("t")
        for i in range(6):
            cluster.put("t", f"r{i}", "cf", "q", b"abcde")
        victim = cluster.server_of(cluster.regions_of("t")[0]).server_id
        cluster.kill_server(victim)
        assert cluster.total_bytes("t") == 30
