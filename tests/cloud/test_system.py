"""Full cloud-system integration (Fig. 7 end to end)."""

from __future__ import annotations

import pytest

from repro.cloud import CloudSystem, run_process_in_cloud
from repro.document import build_initial_document, verify_document
from repro.workloads.figure9 import DESIGNER, figure9_responders


@pytest.fixture()
def system(world, backend):
    return CloudSystem(world.directory,
                       world.keypair("tfc@cloud.example"),
                       portals=3, region_servers=2, datanodes=3,
                       backend=backend)


@pytest.fixture()
def cloud_run(system, world, fig9b, backend):
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    final = run_process_in_cloud(
        system, fig9b, initial, world.keypair(DESIGNER),
        world.keypairs, figure9_responders(1),
    )
    return system, final


class TestEndToEnd:
    def test_process_completes(self, cloud_run):
        system, final = cloud_run
        assert final.execution_count("D") == 2
        assert len(final.cers(include_definition=False)) == 20

    def test_final_document_verifies(self, cloud_run, world, backend):
        system, final = cloud_run
        verify_document(final, world.directory, backend,
                        tfc_identities={system.tfc.identity})

    def test_pool_history_grows(self, cloud_run):
        system, final = cloud_run
        history = system.pool.history(final.process_id)
        assert len(history) == 11  # initial + 10 steps
        sizes = [len(d.to_bytes()) for d in history]
        assert sizes == sorted(sizes)

    def test_portals_share_load(self, cloud_run):
        system, _ = cloud_run
        used = [p for p in system.portals if p.stats["logins"] > 0]
        assert len(used) >= 2  # round-robin spread the clients

    def test_all_todos_drained(self, cloud_run, world):
        system, _ = cloud_run
        for identity in world.keypairs:
            assert system.pool.todo_for(identity) == []

    def test_notifications_sent(self, cloud_run):
        system, _ = cloud_run
        # One per routing edge: the initial A, 2 per AND-split, one per
        # sequence edge — the AND-join C is notified once per incoming
        # branch (idempotent TO-DO, duplicate notification).
        assert system.notifier.sent == 12

    def test_sim_clock_advanced(self, cloud_run):
        system, _ = cloud_run
        assert system.clock.now() > 0

    def test_tfc_records_all_steps(self, cloud_run):
        system, _ = cloud_run
        assert len(system.tfc.records) == 10


class TestMapReduceMonitoring:
    def test_activity_statistics(self, cloud_run):
        system, _ = cloud_run
        stats, job = system.activity_statistics()
        assert stats == {"A": 2, "B1": 2, "B2": 2, "C": 2, "D": 2}
        assert job.input_rows >= 1

    def test_instance_progress(self, cloud_run):
        system, final = cloud_run
        progress, _ = system.instance_progress()
        assert progress[final.process_id] == 10


class TestMultipleInstances:
    def test_two_instances_coexist(self, system, world, fig9b, backend):
        finals = []
        for _ in range(2):
            initial = build_initial_document(
                fig9b, world.keypair(DESIGNER), backend=backend
            )
            finals.append(run_process_in_cloud(
                system, fig9b, initial, world.keypair(DESIGNER),
                world.keypairs, figure9_responders(0),
            ))
        assert finals[0].process_id != finals[1].process_id
        progress, _ = system.instance_progress()
        assert progress == {finals[0].process_id: 5,
                            finals[1].process_id: 5}


class TestParticipantWorkload:
    def test_per_participant_counts(self, cloud_run):
        system, _ = cloud_run
        workload, _ = system.participant_workload()
        # Fig. 9B × 2 loop passes: each executor signed 2 intermediates.
        assert workload == {
            "submitter@acme.example": 2,
            "reviewer1@acme.example": 2,
            "reviewer2@partner.example": 2,
            "consolidator@partner.example": 2,
            "approver@megacorp.example": 2,
        }
