"""Simulated HDFS: blocks, replication, failure handling."""

from __future__ import annotations

import pytest

from repro.cloud.hdfs import SimHdfs
from repro.cloud.simclock import SimClock
from repro.errors import StorageError


@pytest.fixture()
def hdfs():
    return SimHdfs(datanodes=4, replication=3, block_size=64)


class TestBasicIO:
    def test_write_read_roundtrip(self, hdfs):
        hdfs.write("/f", b"hello world")
        assert hdfs.read("/f") == b"hello world"

    def test_multi_block_file(self, hdfs):
        data = bytes(range(256)) * 2  # 512 B = 8 blocks of 64
        hdfs.write("/big", data)
        assert hdfs.read("/big") == data

    def test_empty_file(self, hdfs):
        hdfs.write("/empty", b"")
        assert hdfs.read("/empty") == b""

    def test_overwrite(self, hdfs):
        hdfs.write("/f", b"one")
        hdfs.write("/f", b"two")
        assert hdfs.read("/f") == b"two"

    def test_missing_file(self, hdfs):
        with pytest.raises(StorageError):
            hdfs.read("/ghost")

    def test_delete(self, hdfs):
        hdfs.write("/f", b"data")
        hdfs.delete("/f")
        assert not hdfs.exists("/f")
        with pytest.raises(StorageError):
            hdfs.read("/f")
        with pytest.raises(StorageError):
            hdfs.delete("/f")

    def test_list_files(self, hdfs):
        hdfs.write("/a/1", b"x")
        hdfs.write("/a/2", b"y")
        hdfs.write("/b/1", b"z")
        assert hdfs.list_files("/a/") == ["/a/1", "/a/2"]
        assert len(hdfs.list_files()) == 3

    def test_stats(self, hdfs):
        hdfs.write("/f", b"12345")
        hdfs.read("/f")
        assert hdfs.stats["writes"] == 1
        assert hdfs.stats["reads"] == 1
        assert hdfs.stats["bytes_written"] == 5


class TestReplication:
    def test_blocks_replicated(self, hdfs):
        hdfs.write("/f", b"replicated")
        holders = [n for n in hdfs.nodes.values() if n.blocks]
        assert len(holders) == 3

    def test_replication_capped_by_cluster_size(self):
        small = SimHdfs(datanodes=2, replication=3)
        small.write("/f", b"data")
        assert small.under_replicated_blocks() == 0

    def test_clock_charged(self):
        clock = SimClock()
        hdfs = SimHdfs(datanodes=3, replication=3, clock=clock)
        hdfs.write("/f", b"x" * 1000)
        assert clock.now() > 0


class TestFailures:
    def test_read_survives_single_failure(self, hdfs):
        hdfs.write("/f", b"durable data")
        victim = next(n.node_id for n in hdfs.nodes.values() if n.blocks)
        hdfs.kill_node(victim)
        assert hdfs.read("/f") == b"durable data"

    def test_rereplication_restores_target(self, hdfs):
        hdfs.write("/f", b"durable data")
        victim = next(n.node_id for n in hdfs.nodes.values() if n.blocks)
        hdfs.kill_node(victim)
        assert hdfs.under_replicated_blocks() == 0
        assert hdfs.stats["rereplications"] > 0

    def test_read_survives_two_failures(self, hdfs):
        hdfs.write("/f", b"very durable")
        holders = [n.node_id for n in hdfs.nodes.values() if n.blocks]
        hdfs.kill_node(holders[0])
        hdfs.kill_node(holders[1])
        assert hdfs.read("/f") == b"very durable"

    def test_total_loss_detected(self):
        hdfs = SimHdfs(datanodes=2, replication=2)
        hdfs.write("/f", b"doomed")
        for node_id in list(hdfs.nodes):
            hdfs.kill_node(node_id)
        with pytest.raises(StorageError, match="no live replica"):
            hdfs.read("/f")

    def test_kill_unknown_node(self, hdfs):
        with pytest.raises(StorageError):
            hdfs.kill_node("dn99")

    def test_writes_after_failure_use_live_nodes(self, hdfs):
        hdfs.kill_node("dn0")
        hdfs.write("/f", b"post-failure")
        assert hdfs.read("/f") == b"post-failure"
        assert not hdfs.nodes["dn0"].blocks

    def test_no_live_nodes(self):
        hdfs = SimHdfs(datanodes=1, replication=1)
        hdfs.kill_node("dn0")
        with pytest.raises(StorageError, match="no live datanodes"):
            hdfs.write("/f", b"x")


def test_needs_a_datanode():
    with pytest.raises(StorageError):
        SimHdfs(datanodes=0)
