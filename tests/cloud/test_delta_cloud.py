"""Delta transfers through the cloud stack: pool, portal, client.

The cloud side of delta routing stores manifests plus content-addressed
chunks and serves one-round-trip delta retrieves.  Everything here
checks the two invariants the design hangs on: reassembled bytes are
exactly the bytes full-mode storage would serve, and every failure mode
(missing chunk, over-assumed cache, rollback) either falls back to a
full transfer or raises — never silently corrupts.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudSystem, run_process_in_cloud
from repro.cloud.hbase import CerChunkStore, SimHBase
from repro.cloud.pool import DocumentPool
from repro.document import build_initial_document, verify_document
from repro.document.delta import chunk_document
from repro.errors import DeltaError, PortalError, TamperDetected
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS, figure9_responders

TFC = "tfc@cloud.example"


@pytest.fixture()
def delta_system(world, backend):
    return CloudSystem(world.directory, world.keypair(TFC), portals=2,
                       backend=backend, delta_routing=True)


@pytest.fixture()
def full_system(world, backend):
    return CloudSystem(world.directory, world.keypair(TFC), portals=2,
                       backend=backend)


@pytest.fixture()
def initial(world, fig9b, backend):
    return build_initial_document(fig9b, world.keypair(DESIGNER),
                                  backend=backend)


# -- pool --------------------------------------------------------------------


class TestDeltaPool:
    @pytest.fixture()
    def pool(self):
        return DocumentPool(SimHBase(region_servers=2), delta=True)

    def test_round_trips_byte_identical(self, pool, fig9a_trace):
        early = fig9a_trace.steps[0].document
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        assert pool.store(early) == 0
        assert pool.store(final) == 1
        assert pool.latest_bytes(final.process_id) == final.to_bytes()
        history = pool.history(final.process_id)
        assert [d.to_bytes() for d in history] == \
            [early.to_bytes(), final.to_bytes()]

    def test_versions_share_chunks(self, pool, fig9a_trace):
        # Parallel-branch snapshots are not mutually monotonic (each
        # branch lacks the sibling's CER until the join), so store the
        # growing subsequence a single submitting client would produce.
        documents = [s.document for s in fig9a_trace.steps]
        pool.register_process(documents[0].process_id)
        stored_cers: set[str] = set()
        stored = 0
        for document in documents:
            manifest, _ = chunk_document(document)
            if stored_cers <= set(manifest.cer_digests):
                pool.store(document)
                stored_cers = set(manifest.cer_digests)
                stored += 1
        assert stored >= 3
        stats = pool.chunks.stats
        assert stats["dedup_hits"] > 0
        # Shared CERs are stored once: unique storage is well under the
        # sum of all version sizes.
        assert stats["unique_bytes"] < stats["logical_bytes"] / 2

    def test_rollback_rejected(self, pool, fig9a_trace):
        early = fig9a_trace.steps[0].document
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        with pytest.raises(TamperDetected, match="rollback"):
            pool.store(early)

    def test_manifest_lookup_by_digest(self, pool, fig9a_trace):
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        manifest = pool.latest_manifest(final.process_id)
        assert pool.manifest_by_digest(manifest.doc_digest) == manifest
        assert pool.manifest_by_digest("0" * 64) is None

    def test_lost_chunk_raises_not_corrupts(self, pool, fig9a_trace):
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        victim = pool.latest_manifest(final.process_id).chunks[0]
        pool.hbase.delete_row(CerChunkStore.TABLE, victim.digest)
        with pytest.raises(DeltaError, match="missing"):
            pool.latest_bytes(final.process_id)

    def test_summarize_sees_full_size(self, pool, fig9a_trace):
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        summary = pool.summarize(final.process_id)
        assert summary.size_bytes == final.size_bytes
        assert summary.versions == 1


# -- portal + client protocol ------------------------------------------------


class TestDeltaProtocol:
    def _execute(self, system, world, backend, client, data, activity_id,
                 response):
        return client.agent.execute_activity(
            data, activity_id, response, mode="advanced",
            tfc_identity=system.tfc.identity,
            tfc_public_key=system.tfc.public_key,
        )

    def test_revisit_retrieve_is_a_delta(self, delta_system, world,
                                         backend, initial):
        designer = delta_system.client(world.keypair(DESIGNER))
        pid = designer.upload_initial(initial)
        client = delta_system.client(world.keypair(PARTICIPANTS["A"]))

        data = client.retrieve_bytes(pid)
        assert data == delta_system.pool.latest_bytes(pid)
        first_wire = client.bytes_received
        assert first_wire >= len(data)  # cold: manifest + every chunk

        result = self._execute(delta_system, world, backend, client, data,
                               "A", {"attachment": "x"})
        client.submit_document(result.document)
        # The submit shipped only the new CER chunks, not the document.
        assert client.bytes_sent < result.document.size_bytes

        before = client.bytes_received
        again = client.retrieve_bytes(pid)
        assert again == delta_system.pool.latest_bytes(pid)
        # The revisit moves the TFC's finalisation delta, not the
        # document: a small fraction of the full size.
        assert client.bytes_received - before < len(again) / 2

        portal_stats = [p.stats for p in delta_system.portals]
        assert sum(s["delta_retrievals"] for s in portal_stats) >= 2
        assert sum(s["delta_submissions"] for s in portal_stats) >= 1
        assert sum(s["delta_fallbacks"] for s in portal_stats) == 0

    def test_full_cloud_refuses_delta_retrieve(self, full_system, world,
                                               initial):
        designer = full_system.client(world.keypair(DESIGNER))
        pid = designer.upload_initial(initial)
        with pytest.raises(PortalError, match="does not serve delta"):
            designer.portal.retrieve_delta(designer.session, pid)

    def test_over_assumed_submit_falls_back(self, delta_system, world,
                                            backend, initial):
        """A client whose cloud-known set is wrong (it assumes the cloud
        holds chunks it does not) triggers the fallback path: the portal
        demands a full submit, the client complies, the process keeps
        moving."""
        designer = delta_system.client(world.keypair(DESIGNER))
        pid = designer.upload_initial(initial)
        client = delta_system.client(world.keypair(PARTICIPANTS["A"]))
        data = client.retrieve_bytes(pid)
        result = self._execute(delta_system, world, backend, client, data,
                               "A", {"attachment": "x"})
        # Poison the cache model: claim the cloud holds everything,
        # including the brand-new CER chunks it has never seen.
        manifest, _ = chunk_document(result.document)
        client._cloud_known.update(manifest.chunk_digests)

        entries = client.submit_document(result.document)
        assert {e.activity_id for e in entries} == {"B1", "B2"}
        assert sum(p.stats["delta_fallbacks"]
                   for p in delta_system.portals) >= 1
        # The fallback stored the real document: bytes round-trip.
        assert delta_system.pool.latest(pid).cers()


# -- end to end --------------------------------------------------------------


class TestDeltaCloudRun:
    def _run(self, system, world, fig9b, backend):
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        final = run_process_in_cloud(
            system, fig9b, initial, world.keypair(DESIGNER),
            world.keypairs, figure9_responders(1),
        )
        out = sum(p.stats["bytes_out"] for p in system.portals)
        into = sum(p.stats["bytes_in"] for p in system.portals)
        return final, into + out

    def test_delta_run_matches_full_run(self, delta_system, full_system,
                                        world, fig9b, backend):
        delta_final, delta_bytes = self._run(delta_system, world, fig9b,
                                             backend)
        full_final, full_bytes = self._run(full_system, world, fig9b,
                                           backend)
        # Same workflow, same responders → same executed history.
        assert len(delta_final.cers()) == len(full_final.cers())
        verify_document(delta_final, world.directory, backend,
                        tfc_identities={TFC})
        # The whole point: the delta cloud moved fewer bytes.
        assert delta_bytes < full_bytes
        assert delta_system.pool.chunks.stats["dedup_hits"] > 0
