"""Document pool: storage, history, TO-DO index, replay & rollback guards."""

from __future__ import annotations

import pytest

from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.document import build_initial_document
from repro.errors import ReplayDetected, StorageError, TamperDetected
from repro.workloads.figure9 import DESIGNER


@pytest.fixture()
def pool():
    return DocumentPool(SimHBase(region_servers=2))


@pytest.fixture()
def initial(world, fig9a, backend):
    return build_initial_document(fig9a, world.keypair(DESIGNER),
                                  backend=backend)


class TestRegistration:
    def test_register_then_store(self, pool, initial):
        pool.register_process(initial.process_id)
        assert pool.is_registered(initial.process_id)
        assert pool.store(initial) == 0

    def test_replay_rejected(self, pool, initial):
        pool.register_process(initial.process_id)
        with pytest.raises(ReplayDetected):
            pool.register_process(initial.process_id)

    def test_store_unregistered_rejected(self, pool, initial):
        with pytest.raises(StorageError, match="never registered"):
            pool.store(initial)


class TestVersioning:
    def test_latest_and_history(self, pool, initial, fig9a_trace):
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        # Reuse growing snapshots from the same instance: initial is a
        # different instance, so build history from the final doc only.
        pool.store(final)
        pool.store(final)
        assert len(pool.history(final.process_id)) == 2
        assert pool.latest(final.process_id).to_bytes() == final.to_bytes()

    def test_latest_missing(self, pool):
        with pytest.raises(StorageError):
            pool.latest("ghost")

    def test_process_ids(self, pool, initial, fig9a_trace):
        pool.register_process(initial.process_id)
        pool.register_process(fig9a_trace.final_document.process_id)
        assert set(pool.process_ids()) == {
            initial.process_id, fig9a_trace.final_document.process_id
        }


class TestRollbackGuard:
    def test_shrinking_document_rejected(self, pool, fig9a_trace):
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        truncated = final.clone()
        cers = truncated.results_section.findall("CER")
        truncated.results_section.remove(cers[-1])
        with pytest.raises(TamperDetected, match="rollback"):
            pool.store(truncated)

    def test_growing_document_accepted(self, world, fig9a, backend, pool,
                                       initial):
        from repro.core import ActivityExecutionAgent
        from repro.workloads.figure9 import PARTICIPANTS

        pool.register_process(initial.process_id)
        pool.store(initial)
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        grown = agent.execute_activity(initial, "A",
                                       {"attachment": "x"}).document
        pool.store(grown)
        assert pool.latest(initial.process_id).execution_count("A") == 1


class TestTodoIndex:
    def test_add_and_search(self, pool):
        pool.add_todo("alice@x", "p1", "A")
        pool.add_todo("alice@x", "p2", "B")
        pool.add_todo("bob@y", "p1", "C")
        entries = pool.todo_for("alice@x")
        assert {(e.process_id, e.activity_id) for e in entries} == \
            {("p1", "A"), ("p2", "B")}
        assert len(pool.todo_for("bob@y")) == 1
        assert pool.todo_for("carol@z") == []

    def test_add_idempotent(self, pool):
        pool.add_todo("alice@x", "p1", "A")
        pool.add_todo("alice@x", "p1", "A")
        assert len(pool.todo_for("alice@x")) == 1

    def test_remove(self, pool):
        pool.add_todo("alice@x", "p1", "A")
        pool.remove_todo("alice@x", "p1", "A")
        assert pool.todo_for("alice@x") == []

    def test_prefix_isolation(self, pool):
        # "alice@x" must not see "alice@xy"'s entries.
        pool.add_todo("alice@xy", "p1", "A")
        assert pool.todo_for("alice@x") == []
