"""Chunk-store lifecycle: refcounts, GC, compaction, retirement.

Hot storage must stay O(live instances): stored manifests pin the
chunks they name, completed instances release them via compaction and
retirement, and ``gc()`` deletes only zero-reference chunks — from the
base store's single table and from *every* replica shard.  The guard
property everything hangs on: a chunk referenced by any live manifest
can never be collected.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cloud.hbase import CerChunkStore, SimHBase
from repro.cloud.placement import ReplicatedChunkStore
from repro.cloud.pool import DOC_TABLE, MANIFEST_TABLE, DocumentPool
from repro.document.delta import chunk_document
from repro.errors import ReplayDetected, StorageError


def _chunks(*payloads: bytes) -> dict[str, bytes]:
    return {hashlib.sha256(p).hexdigest(): p for p in payloads}


def monotonic_versions(trace):
    """The growing version subsequence one submitting client produces.

    Parallel-branch snapshots are not mutually monotonic (each branch
    lacks the sibling's CER until the join), so only versions whose CER
    chunk set contains everything stored so far are storable.
    """
    versions = []
    stored: set[str] = set()
    for step in trace.steps:
        manifest, _ = chunk_document(step.document)
        if stored <= set(manifest.cer_digests):
            versions.append(step.document)
            stored = set(manifest.cer_digests)
    return versions


# -- refcounted GC on the base store ------------------------------------------


class TestRefcountedGc:
    @pytest.fixture()
    def store(self):
        return CerChunkStore(SimHBase(region_servers=2))

    def test_pin_and_refcount(self, store):
        chunks = _chunks(b"aaa", b"bbb")
        store.put_chunks(chunks)
        digests = sorted(chunks)
        store.pin(digests)
        store.pin([digests[0]])
        assert store.refcount(digests[0]) == 2
        assert store.refcount(digests[1]) == 1
        store.unpin(digests)
        assert store.refcount(digests[0]) == 1
        assert store.refcount(digests[1]) == 0

    def test_unpin_underflow_raises(self, store):
        chunks = _chunks(b"aaa")
        store.put_chunks(chunks)
        with pytest.raises(StorageError, match="refcount underflow"):
            store.unpin(sorted(chunks))

    def test_gc_spares_pinned_chunks(self, store):
        """The guard property: a pinned chunk is never collected."""
        pinned = _chunks(b"live chunk")
        dead = _chunks(b"dead chunk")
        store.put_chunks({**pinned, **dead})
        store.pin(sorted(pinned))
        deleted, reclaimed = store.gc()
        assert deleted == 1
        assert reclaimed == len(b"dead chunk")
        (live,) = pinned
        assert live in store
        assert store.get_chunks([live]) == pinned
        assert sorted(dead)[0] not in store

    def test_gc_keeps_known_stats_and_hbase_consistent(self, store):
        chunks = _chunks(b"x" * 10, b"y" * 20, b"z" * 30)
        store.put_chunks(chunks)
        survivor = max(chunks)
        store.pin([survivor])
        deleted, reclaimed = store.gc()
        assert deleted == 2
        assert reclaimed == sum(
            len(p) for d, p in chunks.items() if d != survivor
        )
        # _known, stats, and the durable rows all agree.
        assert store.stats["unique_chunks"] == 1
        assert store.stats["unique_bytes"] == len(chunks[survivor])
        for digest in chunks:
            row = store.hbase.get(store.TABLE, digest)
            if digest == survivor:
                assert digest in store
                assert row.get(("c", "b")) == chunks[digest]
            else:
                assert digest not in store
                assert row == {}

    def test_reput_after_gc_is_a_fresh_write(self, store):
        chunks = _chunks(b"come and go")
        store.put_chunks(chunks)
        store.gc()
        hits_before = store.stats["dedup_hits"]
        assert store.put_chunks(chunks) == 1
        assert store.stats["dedup_hits"] == hits_before
        assert store.stats["unique_chunks"] == 1

    def test_gc_lifecycle_counters(self, store):
        chunks = _chunks(b"one", b"two")
        store.put_chunks(chunks)
        store.pin(sorted(chunks))
        store.unpin(sorted(chunks))
        store.gc()
        store.gc()  # second sweep finds nothing
        assert store.lifecycle == {
            "pins": 2,
            "unpins": 2,
            "gc_runs": 2,
            "gc_chunks_deleted": 2,
            "gc_bytes_reclaimed": len(b"one") + len(b"two"),
        }


class TestReplicatedGc:
    def test_gc_deletes_every_replica_row(self):
        store = ReplicatedChunkStore(SimHBase(region_servers=3),
                                     shards=3, replicas=2)
        chunks = _chunks(b"replicated payload")
        store.put_chunks(chunks)
        (digest,) = chunks
        shards = store.replica_shards(digest)
        assert len(shards) == 2
        for shard_id in shards:
            row = store.hbase.get(store._table(shard_id), digest)
            assert row.get(("c", "b")) == chunks[digest]
        deleted, reclaimed = store.gc()
        assert (deleted, reclaimed) == (1, len(chunks[digest]))
        for shard_id in shards:
            assert store.hbase.get(store._table(shard_id), digest) == {}
        assert digest not in store

    def test_gc_spares_pinned_replicated_chunks(self):
        store = ReplicatedChunkStore(SimHBase(region_servers=2),
                                     shards=2, replicas=2)
        chunks = _chunks(b"pinned", b"collectable")
        store.put_chunks(chunks)
        pinned = min(chunks)
        store.pin([pinned])
        deleted, _ = store.gc()
        assert deleted == 1
        assert store.get_chunks([pinned]) == {pinned: chunks[pinned]}


# -- stats invariants (satellite) ---------------------------------------------


class TestStatsInvariants:
    @pytest.mark.parametrize("make_store", [
        lambda: CerChunkStore(SimHBase(region_servers=2)),
        lambda: ReplicatedChunkStore(SimHBase(region_servers=2),
                                     shards=2, replicas=2),
    ], ids=["base", "replicated"])
    def test_dedup_ratio_on_empty_store(self, make_store):
        assert make_store().dedup_ratio == 1.0

    def test_repeated_digests_across_put_calls(self):
        """Re-presented digests are dedup hits, never double-counted.

        Within one ``put_chunks`` call duplicate digests cannot occur
        (the payload dict is keyed by digest), so re-presentation is
        the only representable duplication.
        """
        store = CerChunkStore(SimHBase(region_servers=2))
        chunks = _chunks(b"payload-a", b"payload-b")
        assert store.put_chunks(chunks) == 2
        assert store.put_chunks(chunks) == 0
        assert store.stats["dedup_hits"] == 2
        assert store.stats["unique_chunks"] == 2
        total = sum(len(p) for p in chunks.values())
        assert store.stats["unique_bytes"] == total
        assert store.stats["logical_bytes"] == 2 * total
        assert store.dedup_ratio == 2.0

    def test_known_matches_hbase_after_deletes(self):
        store = CerChunkStore(SimHBase(region_servers=2))
        chunks = _chunks(*[f"chunk {i}".encode() for i in range(6)])
        store.put_chunks(chunks)
        keep = sorted(chunks)[:2]
        store.pin(keep)
        store.gc()
        for digest in chunks:
            in_known = digest in store._known
            in_hbase = store.hbase.get(store.TABLE, digest) != {}
            assert in_known == in_hbase == (digest in keep)
        assert store.stats["unique_chunks"] == len(keep)


# -- pool lifecycle: pin on store, compact, retire ----------------------------


class TestPoolLifecycle:
    @pytest.fixture()
    def pool(self):
        return DocumentPool(SimHBase(region_servers=2), delta=True)

    @pytest.fixture()
    def stored(self, pool, fig9a_trace):
        versions = monotonic_versions(fig9a_trace)
        assert len(versions) >= 3
        process_id = versions[0].process_id
        pool.register_process(process_id)
        for document in versions:
            pool.store(document)
        return process_id, versions

    def test_store_pins_manifest_chunks(self, pool, stored):
        process_id, versions = stored
        manifest = pool.latest_manifest(process_id)
        assert all(pool.chunks.refcount(d) >= 1
                   for d in manifest.chunk_digests)
        # One pin per stored version that names the chunk.
        final_chunks, _ = chunk_document(versions[-1])
        first_chunks, _ = chunk_document(versions[0])
        shared = set(first_chunks.chunk_digests) \
            & set(final_chunks.chunk_digests)
        assert any(pool.chunks.refcount(d) == len(versions)
                   for d in shared)

    def test_gc_cannot_touch_live_instance(self, pool, stored):
        process_id, versions = stored
        deleted, _ = pool.gc()
        assert deleted == 0
        assert pool.latest_bytes(process_id) == versions[-1].to_bytes()

    def test_compact_collapses_history(self, pool, stored):
        process_id, versions = stored
        old_manifests = [
            pool.latest_manifest(process_id)  # final, for reference
        ]
        removed = pool.compact(process_id)
        assert removed == len(versions) - 1
        history = pool.history(process_id)
        assert len(history) == 1
        assert history[0].to_bytes() == versions[-1].to_bytes()
        assert pool.latest_bytes(process_id) == versions[-1].to_bytes()
        # Refcounts collapsed to the single sealed manifest.
        final = old_manifests[0]
        assert all(pool.chunks.refcount(d) == 1
                   for d in final.chunk_digests)
        # Old versions' by-digest index rows are gone, the final stays.
        for document in versions[:-1]:
            manifest, _ = chunk_document(document)
            assert pool.manifest_by_digest(manifest.doc_digest) is None
        assert pool.manifest_by_digest(final.doc_digest) is not None

    def test_compact_is_idempotent(self, pool, stored):
        process_id, _ = stored
        assert pool.compact(process_id) > 0
        assert pool.compact(process_id) == 0

    def test_compact_then_gc_keeps_document_readable(self, pool, stored):
        """Compaction drops manifests, not shared chunks.

        With monotonic CER accumulation every intermediate version's
        chunks are a subset of the final manifest's, so a post-compact
        sweep finds nothing to delete — and must not break reads.
        """
        process_id, versions = stored
        before = pool.chunks.stats["unique_bytes"]
        pool.compact(process_id)
        deleted, reclaimed = pool.gc()
        assert (deleted, reclaimed) == (0, 0)
        assert pool.chunks.stats["unique_bytes"] == before
        # Still fully readable from the sealed manifest.
        assert pool.latest_bytes(process_id) == versions[-1].to_bytes()

    def test_retire_requires_archive(self, pool, stored):
        process_id, _ = stored
        with pytest.raises(StorageError, match="archived before"):
            pool.retire(process_id)

    def test_retire_frees_everything_but_blocks_replay(
            self, pool, stored):
        process_id, versions = stored
        pool.archive(process_id)
        pool.retire(process_id)
        assert pool.is_retired(process_id)
        deleted, _ = pool.gc()
        assert deleted > 0
        assert pool.chunks.stats["unique_chunks"] == 0
        assert pool.chunks.stats["unique_bytes"] == 0
        with pytest.raises(StorageError):
            pool.latest_bytes(process_id)
        # The manifest index is empty too.
        assert pool.hbase.scan(MANIFEST_TABLE) == []
        # Retired ids stay registered: replays and re-stores bounce.
        assert pool.is_registered(process_id)
        with pytest.raises(ReplayDetected):
            pool.register_process(process_id)
        with pytest.raises(StorageError, match="retired"):
            pool.store(versions[-1])

    def test_retire_is_idempotent(self, pool, stored):
        process_id, _ = stored
        pool.archive(process_id)
        pool.retire(process_id)
        pool.retire(process_id)
        assert pool.is_retired(process_id)

    def test_retiring_one_instance_spares_the_other(
            self, pool, fig9a_trace, fig9b_run):
        trace_b, _ = fig9b_run
        versions_a = monotonic_versions(fig9a_trace)
        versions_b = monotonic_versions(trace_b)
        for versions in (versions_a, versions_b):
            pool.register_process(versions[0].process_id)
            for document in versions:
                pool.store(document)
        pid_a = versions_a[0].process_id
        pid_b = versions_b[0].process_id
        pool.archive(pid_a)
        pool.retire(pid_a)
        pool.gc()
        assert pool.latest_bytes(pid_b) == versions_b[-1].to_bytes()
        manifest_b = pool.latest_manifest(pid_b)
        assert all(pool.chunks.refcount(d) >= 1
                   for d in manifest_b.chunk_digests)

    def test_purge_releases_chunk_refs(self, pool, stored):
        process_id, _ = stored
        pool.purge(process_id)
        deleted, _ = pool.gc()
        assert deleted > 0
        assert pool.chunks.stats["unique_chunks"] == 0

    def test_lifecycle_requires_delta_mode(self, fig9a_trace):
        pool = DocumentPool(SimHBase(region_servers=2))
        final = fig9a_trace.final_document
        pool.register_process(final.process_id)
        pool.store(final)
        with pytest.raises(StorageError, match="delta mode"):
            pool.compact(final.process_id)
        pool.archive(final.process_id)
        with pytest.raises(StorageError, match="delta mode"):
            pool.retire(final.process_id)
        with pytest.raises(StorageError, match="delta mode"):
            pool.gc()

    def test_region_data_bytes_shrink_after_lifecycle(self, pool, stored):
        process_id, _ = stored
        hb = pool.hbase

        def data_bytes() -> int:
            return sum(region.data_bytes
                       for server in hb.servers.values()
                       for region in server.regions)

        before = data_bytes()
        pool.archive(process_id)
        pool.retire(process_id)
        pool.gc()
        after = data_bytes()
        assert after < before
        # Only the metadata markers of the registered id remain in the
        # document table; chunk and manifest tables are empty.
        (row_key, row), = hb.scan(DOC_TABLE)
        assert row_key == process_id
        assert all(family == "meta" for (family, _) in row)
