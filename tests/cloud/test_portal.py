"""Portal servers: authentication, §4.2 operations, rejection paths."""

from __future__ import annotations

import pytest

from repro.cloud import CloudSystem
from repro.document import build_initial_document
from repro.errors import PortalError
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


@pytest.fixture()
def system(world, backend):
    return CloudSystem(world.directory,
                       world.keypair("tfc@cloud.example"),
                       portals=2, backend=backend)


@pytest.fixture()
def portal(system):
    return system.portals[0]


def login(portal, world, backend, identity):
    nonce = portal.challenge(identity)
    signature = backend.sign(world.keypair(identity).private_key,
                             b"dra4wfms-portal-login\x00" + nonce)
    return portal.login(identity, signature)


@pytest.fixture()
def designer_session(portal, world, backend):
    return login(portal, world, backend, DESIGNER)


@pytest.fixture()
def initial(world, fig9b, backend):
    return build_initial_document(fig9b, world.keypair(DESIGNER),
                                  backend=backend)


class TestAuthentication:
    def test_challenge_response(self, portal, world, backend):
        session = login(portal, world, backend, DESIGNER)
        assert session.identity == DESIGNER
        assert session.portal_id == portal.portal_id

    def test_unknown_identity(self, portal):
        with pytest.raises(PortalError, match="unknown identity"):
            portal.challenge("ghost@nowhere")

    def test_wrong_signature(self, portal, world, backend):
        portal.challenge(DESIGNER)
        wrong = backend.sign(
            world.keypair(PARTICIPANTS["A"]).private_key, b"whatever"
        )
        with pytest.raises(PortalError, match="authentication failed"):
            portal.login(DESIGNER, wrong)

    def test_nonce_single_use(self, portal, world, backend):
        nonce = portal.challenge(DESIGNER)
        signature = backend.sign(world.keypair(DESIGNER).private_key,
                                 b"dra4wfms-portal-login\x00" + nonce)
        portal.login(DESIGNER, signature)
        with pytest.raises(PortalError, match="no pending challenge"):
            portal.login(DESIGNER, signature)

    def test_invalid_session_rejected(self, portal, designer_session):
        from repro.cloud.portal import Session

        forged = Session(token="forged", identity=DESIGNER,
                         portal_id=portal.portal_id)
        with pytest.raises(PortalError, match="invalid or expired"):
            portal.search_todo(forged)


class TestUploadAndSubmit:
    def test_upload_initial(self, portal, designer_session, initial,
                            system):
        process_id = portal.upload_initial(designer_session,
                                           initial.to_bytes())
        assert process_id == initial.process_id
        first = PARTICIPANTS["A"]
        assert [e.activity_id for e in system.pool.todo_for(first)] == ["A"]
        assert system.notifier.inbox(first)

    def test_upload_replay_rejected(self, portal, designer_session,
                                    initial):
        portal.upload_initial(designer_session, initial.to_bytes())
        with pytest.raises(PortalError, match="rejected"):
            portal.upload_initial(designer_session, initial.to_bytes())

    def test_upload_tampered_rejected(self, portal, designer_session,
                                      initial):
        altered = initial.clone()
        altered.header.set("ProcessId", "forged")
        with pytest.raises(PortalError, match="rejected"):
            portal.upload_initial(designer_session, altered.to_bytes())
        assert portal.stats["rejected"] == 1

    def test_submit_unknown_process(self, portal, world, backend,
                                    designer_session, initial):
        # Never uploaded → submission refused.
        from repro.core import ActivityExecutionAgent

        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        result = agent.execute_activity(
            initial, "A", {"attachment": "x"}, mode="advanced",
            tfc_identity="tfc@cloud.example",
            tfc_public_key=world.directory.public_key_of(
                "tfc@cloud.example"),
        )
        with pytest.raises(PortalError, match="unknown to this cloud"):
            portal.submit(designer_session, result.document.to_bytes())

    def test_submit_basic_mode_document_rejected(self, portal, world,
                                                 backend, designer_session,
                                                 fig9a):
        # The cloud runs the advanced model; a basic-mode document has
        # no pending intermediate CER for the TFC.
        from repro.core import ActivityExecutionAgent

        initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                         backend=backend)
        portal.upload_initial(designer_session, initial.to_bytes())
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        executed = agent.execute_activity(initial, "A",
                                          {"attachment": "x"})
        with pytest.raises(PortalError, match="advanced operational"):
            portal.submit(designer_session, executed.document.to_bytes())

    def test_full_step_through_portal(self, portal, world, backend,
                                      designer_session, initial, system):
        from repro.core import ActivityExecutionAgent

        portal.upload_initial(designer_session, initial.to_bytes())
        session = login(portal, world, backend, PARTICIPANTS["A"])
        data = portal.retrieve(session, initial.process_id)
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        result = agent.execute_activity(
            data, "A", {"attachment": "x"}, mode="advanced",
            tfc_identity=system.tfc.identity,
            tfc_public_key=system.tfc.public_key,
        )
        entries = portal.submit(session, result.document.to_bytes())
        assert {e.activity_id for e in entries} == {"B1", "B2"}
        # A's TO-DO entry is cleared, the reviewers' are set.
        assert system.pool.todo_for(PARTICIPANTS["A"]) == []
        assert system.pool.todo_for(PARTICIPANTS["B1"])
        # Monitoring sees one completed execution.
        status = portal.monitor(session, initial.process_id)
        assert status.completed == [("A", 0)]
