"""Stateful property test: the document pool against a reference model.

Hypothesis drives random interleavings of register/store/todo/archive/
purge operations and checks the pool's observable behaviour against a
plain in-memory model after every step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.document import Dra4wfmsDocument
from repro.errors import ReplayDetected, StorageError

_TEMPLATE: bytes | None = None


def _template_bytes() -> bytes:
    """A small valid document, built once per process."""
    global _TEMPLATE
    if _TEMPLATE is None:
        from repro.crypto.fast import FastBackend
        from repro.document import build_initial_document
        from repro.workloads import build_world
        from repro.workloads.generator import chain_definition

        backend = FastBackend()
        world = build_world(["designer@enterprise.example",
                             "p0@enterprise.example"], bits=1024,
                            backend=backend)
        definition = chain_definition(1, ["p0@enterprise.example"],
                                      designer="designer@enterprise.example")
        _TEMPLATE = build_initial_document(
            definition, world.keypair("designer@enterprise.example"),
            backend=backend, process_id="template",
        ).to_bytes()
    return _TEMPLATE


def _doc_for(process_id: str) -> Dra4wfmsDocument:
    document = Dra4wfmsDocument.from_bytes(_template_bytes())
    document.header.set("ProcessId", process_id)
    return document


class PoolMachine(RuleBasedStateMachine):
    """Random pool workloads vs a dict model."""

    process_ids = Bundle("process_ids")

    def __init__(self) -> None:
        super().__init__()
        self.pool = DocumentPool(SimHBase(region_servers=2,
                                          split_threshold_rows=8))
        self.registered: set[str] = set()
        self.stored: dict[str, bytes] = {}
        self.purged: set[str] = set()
        self.todos: set[tuple[str, str, str]] = set()
        self._counter = 0

    @rule(target=process_ids)
    def register(self):
        self._counter += 1
        process_id = f"proc{self._counter:04d}"
        self.pool.register_process(process_id)
        self.registered.add(process_id)
        return process_id

    @rule(process_id=process_ids)
    def replay_rejected(self, process_id):
        try:
            self.pool.register_process(process_id)
            raise AssertionError("replay accepted")
        except ReplayDetected:
            pass

    @rule(process_id=process_ids)
    def store(self, process_id):
        if process_id in self.purged:
            return
        document = _doc_for(process_id)
        self.pool.store(document)
        self.stored[process_id] = document.to_bytes()

    @rule(process_id=process_ids,
          participant=st.sampled_from(["a@x", "b@y"]),
          activity=st.sampled_from(["A0", "A1"]))
    def add_todo(self, process_id, participant, activity):
        self.pool.add_todo(participant, process_id, activity)
        self.todos.add((participant, process_id, activity))

    @rule(process_id=process_ids,
          participant=st.sampled_from(["a@x", "b@y"]),
          activity=st.sampled_from(["A0", "A1"]))
    def remove_todo(self, process_id, participant, activity):
        self.pool.remove_todo(participant, process_id, activity)
        self.todos.discard((participant, process_id, activity))

    @rule(process_id=process_ids)
    def purge(self, process_id):
        if process_id not in self.registered:
            return
        self.pool.purge(process_id)
        self.purged.add(process_id)
        self.stored.pop(process_id, None)
        self.todos = {t for t in self.todos if t[1] != process_id}

    @invariant()
    def stored_documents_retrievable(self):
        for process_id, blob in self.stored.items():
            assert self.pool.latest(process_id).to_bytes() == blob

    @invariant()
    def purged_documents_gone(self):
        for process_id in self.purged:
            if process_id in self.stored:
                continue
            try:
                self.pool.latest(process_id)
                raise AssertionError("purged doc still retrievable")
            except StorageError:
                pass

    @invariant()
    def todo_lists_match_model(self):
        for participant in ("a@x", "b@y"):
            actual = {
                (entry.participant, entry.process_id, entry.activity_id)
                for entry in self.pool.todo_for(participant)
            }
            expected = {t for t in self.todos if t[0] == participant}
            assert actual == expected


PoolMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None,
)
TestPoolStateful = PoolMachine.TestCase
