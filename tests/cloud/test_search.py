"""Pool search & management interfaces (§4.2)."""

from __future__ import annotations

import pytest

from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.errors import StorageError
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


@pytest.fixture()
def populated_pool(fig9a_trace, world, fig9a, backend):
    from repro.document import build_initial_document

    pool = DocumentPool(SimHBase(region_servers=2))
    final = fig9a_trace.final_document
    pool.register_process(final.process_id)
    pool.store(final)
    # A second, barely-started instance.
    initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                     backend=backend)
    pool.register_process(initial.process_id)
    pool.store(initial)
    return pool, final, initial


class TestSummaries:
    def test_summary_of_finished_instance(self, populated_pool):
        pool, final, _ = populated_pool
        summary = pool.summarize(final.process_id)
        assert summary.process_name == "figure-9a"
        assert summary.designer == DESIGNER
        assert summary.executions == 10
        assert PARTICIPANTS["D"] in summary.participants
        assert summary.size_bytes == final.size_bytes
        assert summary.versions == 1

    def test_summary_of_fresh_instance(self, populated_pool):
        pool, _, initial = populated_pool
        summary = pool.summarize(initial.process_id)
        assert summary.executions == 0
        assert summary.participants == ()

    def test_summary_unknown(self, populated_pool):
        pool, _, _ = populated_pool
        with pytest.raises(StorageError):
            pool.summarize("ghost")


class TestSearch:
    def test_by_process_name(self, populated_pool):
        pool, _, _ = populated_pool
        assert len(pool.search(process_name="figure-9a")) == 2
        assert pool.search(process_name="other") == []

    def test_by_participant(self, populated_pool):
        pool, final, _ = populated_pool
        hits = pool.search(participant=PARTICIPANTS["D"])
        assert [h.process_id for h in hits] == [final.process_id]

    def test_designer_matches_participant_filter(self, populated_pool):
        pool, _, _ = populated_pool
        # The designer "participates" in both instances.
        assert len(pool.search(participant=DESIGNER)) == 2

    def test_by_min_executions(self, populated_pool):
        pool, final, _ = populated_pool
        hits = pool.search(min_executions=5)
        assert [h.process_id for h in hits] == [final.process_id]

    def test_combined_filters(self, populated_pool):
        pool, final, _ = populated_pool
        hits = pool.search(process_name="figure-9a",
                           participant=PARTICIPANTS["B1"],
                           min_executions=1)
        assert [h.process_id for h in hits] == [final.process_id]


class TestPortalSearch:
    def test_scoped_to_caller(self, world, fig9b, backend):
        from repro.cloud import CloudSystem, run_process_in_cloud
        from repro.document import build_initial_document
        from repro.workloads.figure9 import figure9_responders

        system = CloudSystem(world.directory,
                             world.keypair("tfc@cloud.example"),
                             portals=1, backend=backend)
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        run_process_in_cloud(system, fig9b, initial,
                             world.keypair(DESIGNER), world.keypairs,
                             figure9_responders(0))

        reviewer = system.client(world.keypair(PARTICIPANTS["B1"]))
        hits = reviewer.portal.search_documents(reviewer.session)
        assert len(hits) == 1
        assert hits[0].executions == 5

        outsider = system.client(world.keypair("eve@evil.example"))
        assert outsider.portal.search_documents(outsider.session) == []


class TestLifecycle:
    def test_archive_hides_from_default_search(self, populated_pool):
        pool, final, _ = populated_pool
        pool.archive(final.process_id)
        assert pool.is_archived(final.process_id)
        default_hits = {h.process_id for h in pool.search()}
        assert final.process_id not in default_hits
        all_hits = {h.process_id
                    for h in pool.search(include_archived=True)}
        assert final.process_id in all_hits
        # Archived documents remain retrievable.
        assert pool.latest(final.process_id).size_bytes == final.size_bytes

    def test_archive_unknown(self, populated_pool):
        pool, _, _ = populated_pool
        with pytest.raises(StorageError):
            pool.archive("ghost")

    def test_purge_deletes_but_blocks_replay(self, populated_pool):
        from repro.errors import ReplayDetected

        pool, final, _ = populated_pool
        pool.add_todo("someone@x", final.process_id, "A")
        pool.purge(final.process_id)
        with pytest.raises(StorageError):
            pool.latest(final.process_id)
        assert pool.todo_for("someone@x") == []
        # Replay of the purged instance is still rejected.
        with pytest.raises(ReplayDetected):
            pool.register_process(final.process_id)

    def test_purge_unknown(self, populated_pool):
        pool, _, _ = populated_pool
        with pytest.raises(StorageError):
            pool.purge("ghost")


class TestPortalManage:
    @pytest.fixture()
    def cloud(self, world, fig9b, backend):
        from repro.cloud import CloudSystem, run_process_in_cloud
        from repro.document import build_initial_document
        from repro.workloads.figure9 import figure9_responders

        system = CloudSystem(world.directory,
                             world.keypair("tfc@cloud.example"),
                             portals=1, backend=backend)
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        final = run_process_in_cloud(system, fig9b, initial,
                                     world.keypair(DESIGNER),
                                     world.keypairs,
                                     figure9_responders(0))
        return system, final

    def test_designer_archives(self, cloud, world):
        from repro.errors import PortalError

        system, final = cloud
        designer = system.client(world.keypair(DESIGNER))
        designer.portal.manage(designer.session, final.process_id,
                               "archive")
        assert system.pool.is_archived(final.process_id)

        with pytest.raises(PortalError, match="unknown manage action"):
            designer.portal.manage(designer.session, final.process_id,
                                   "explode")

    def test_non_designer_rejected(self, cloud, world):
        from repro.errors import PortalError

        system, final = cloud
        reviewer = system.client(world.keypair(PARTICIPANTS["B1"]))
        with pytest.raises(PortalError, match="only the designer"):
            reviewer.portal.manage(reviewer.session, final.process_id,
                                   "purge")
