"""Synthetic workload generators: structural guarantees."""

from __future__ import annotations

import pytest

from repro.model.controlflow import JoinKind, SplitKind
from repro.model.validate import validate_definition
from repro.workloads.generator import (
    chain_definition,
    diamond_definition,
    loop_definition,
    participant_pool,
    random_definition,
)


class TestParticipantPool:
    def test_deterministic(self):
        assert participant_pool(3) == participant_pool(3)

    def test_domain(self):
        pool = participant_pool(2, domain="acme.example")
        assert pool == ["p0@acme.example", "p1@acme.example"]


class TestChain:
    @pytest.mark.parametrize("length", [1, 2, 10])
    def test_shape(self, length):
        definition = chain_definition(length)
        assert len(definition.activities) == length
        validate_definition(definition)
        # Strict linear order.
        for i in range(length - 1):
            assert definition.successors(f"A{i}") == [f"A{i + 1}"]
        assert definition.end_activities() == [f"A{length - 1}"]

    def test_dataflow_links_neighbours(self):
        definition = chain_definition(4)
        assert definition.activity("A2").requests == ("v1",)
        assert definition.activity("A2").response_names == ("v2",)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain_definition(0)


class TestDiamond:
    @pytest.mark.parametrize("width", [2, 3, 6])
    def test_shape(self, width):
        definition = diamond_definition(width)
        validate_definition(definition)
        assert definition.activity("S").split is SplitKind.AND
        assert definition.activity("J").join is JoinKind.AND
        assert len(definition.successors("S")) == width
        assert definition.and_join_arity("J") == width

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            diamond_definition(1)


class TestLoop:
    @pytest.mark.parametrize("body", [1, 2, 4])
    def test_shape(self, body):
        definition = loop_definition(body)
        validate_definition(definition)
        first, last = "L0", f"L{body - 1}"
        assert definition.activity(first).join is JoinKind.XOR
        assert definition.activity(last).split is SplitKind.XOR
        assert definition.successors(last, {"verdict": "again"}) == [first]
        assert definition.successors(last, {"verdict": "done"}) == []

    def test_invalid_body(self):
        with pytest.raises(ValueError):
            loop_definition(0)


class TestRandom:
    @pytest.mark.parametrize("seed", range(12))
    def test_always_valid(self, seed):
        validate_definition(random_definition(seed, blocks=4))

    def test_deterministic_per_seed(self):
        a = random_definition(5, blocks=3)
        b = random_definition(5, blocks=3)
        assert a.to_dict() == b.to_dict()

    def test_seeds_differ(self):
        assert random_definition(1, blocks=3).to_dict() != \
            random_definition(2, blocks=3).to_dict()

    def test_size_scales_with_blocks(self):
        small = random_definition(3, blocks=1)
        large = random_definition(3, blocks=6)
        assert len(large.activities) > len(small.activities)
