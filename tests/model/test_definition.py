"""WorkflowDefinition topology and routing semantics."""

from __future__ import annotations

import pytest

from repro.errors import DefinitionError, RoutingError
from repro.model.activity import Activity, FieldSpec
from repro.model.builder import WorkflowBuilder
from repro.model.controlflow import END, JoinKind, SplitKind, Transition
from repro.model.definition import WorkflowDefinition
from repro.workloads.figure9 import figure_9a_definition


@pytest.fixture()
def fig9a_def():
    return figure_9a_definition()


class TestConstruction:
    def test_duplicate_activity_rejected(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x"))
        with pytest.raises(DefinitionError, match="duplicate"):
            definition.add_activity(Activity("A", "q@x"))

    def test_first_activity_becomes_start(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x"))
        assert definition.start_activity == "A"

    def test_transition_endpoints_checked(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x"))
        with pytest.raises(DefinitionError, match="unknown"):
            definition.add_transition(Transition("A", "ghost"))
        with pytest.raises(DefinitionError, match="unknown"):
            definition.add_transition(Transition("ghost", "A"))

    def test_end_sentinel_allowed_as_target(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x"))
        definition.add_transition(Transition("A", END))
        assert definition.end_activities() == ["A"]

    def test_unknown_activity_lookup(self, fig9a_def):
        with pytest.raises(DefinitionError):
            fig9a_def.activity("ghost")


class TestTopology:
    def test_fig9a_shape(self, fig9a_def):
        assert fig9a_def.start_activity == "A"
        assert set(fig9a_def.predecessors("C")) == {"B1", "B2"}
        assert fig9a_def.end_activities() == ["D"]
        assert fig9a_def.and_join_arity("C") == 2
        assert fig9a_def.and_join_arity("B1") == 1

    def test_outgoing_sorted_by_priority(self, fig9a_def):
        edges = fig9a_def.outgoing("D")
        assert edges[0].target == END
        assert edges[1].target == "A"

    def test_participants(self, fig9a_def):
        assert len(fig9a_def.participants) == 5

    def test_fields_produced(self, fig9a_def):
        produced = fig9a_def.fields_produced()
        assert produced["attachment"] == "A"
        assert produced["decision"] == "D"

    def test_conflicting_producers_rejected(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x",
                                         responses=(FieldSpec("v"),)))
        definition.add_activity(Activity("B", "q@x",
                                         responses=(FieldSpec("v"),)))
        with pytest.raises(DefinitionError, match="produced by both"):
            definition.fields_produced()

    def test_requesting_activities(self, fig9a_def):
        assert set(fig9a_def.requesting_activities("attachment")) == \
            {"B1", "B2"}


class TestSuccessors:
    def test_and_split(self, fig9a_def):
        assert fig9a_def.successors("A") == ["B1", "B2"]

    def test_sequence(self, fig9a_def):
        assert fig9a_def.successors("B1") == ["C"]
        assert fig9a_def.successors("C") == ["D"]

    def test_xor_guard_true_terminates(self, fig9a_def):
        assert fig9a_def.successors("D", {"decision": "accept"}) == []

    def test_xor_default_loops_back(self, fig9a_def):
        assert fig9a_def.successors("D",
                                    {"decision": "insufficient"}) == ["A"]

    def test_xor_without_variables(self, fig9a_def):
        with pytest.raises(RoutingError, match="needs variables"):
            fig9a_def.successors("D")

    def test_none_split_multiple_edges_rejected(self):
        definition = WorkflowDefinition("p", "d@x")
        for aid in ("A", "B", "C"):
            definition.add_activity(Activity(aid, "p@x"))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", "C"))
        with pytest.raises(RoutingError, match="split=NONE"):
            definition.successors("A")

    def test_xor_no_match_no_default(self):
        definition = (
            WorkflowBuilder("p", designer="d@x")
            .activity("A", "p@x", responses=["v"], split="xor")
            .activity("B", "q@x")
            .activity("C", "r@x")
            .transition("A", "B", condition="v == 'b'")
            .transition("A", "C", condition="v == 'c'")
            .build(validate=False)
        )
        with pytest.raises(RoutingError, match="no guard"):
            definition.successors("A", {"v": "neither"})

    def test_multiple_defaults_rejected(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.XOR))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_activity(Activity("C", "r@x"))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", "C"))
        with pytest.raises(RoutingError, match="multiple"):
            definition.successors("A", {})


class TestSerialization:
    def test_dict_roundtrip(self, fig9a_def):
        restored = WorkflowDefinition.from_dict(fig9a_def.to_dict())
        assert restored.to_dict() == fig9a_def.to_dict()
        assert restored.start_activity == fig9a_def.start_activity
        assert restored.activity("C").join is JoinKind.AND
