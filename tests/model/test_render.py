"""DOT and ASCII rendering of workflow definitions."""

from __future__ import annotations

import pytest

from repro.model.render import to_ascii, to_dot
from repro.workloads.chinese_wall import chinese_wall_definition
from repro.workloads.figure9 import figure_9a_definition
from repro.workloads.generator import chain_definition


@pytest.fixture()
def fig9a_def():
    return figure_9a_definition()


class TestDot:
    def test_contains_all_activities_and_edges(self, fig9a_def):
        dot = to_dot(fig9a_def)
        for activity_id in fig9a_def.activities:
            assert f'"{activity_id}"' in dot
        assert '"A" -> "B1"' in dot
        assert '"D" -> __end__' in dot
        assert '"D" -> "A"' in dot

    def test_guards_label_edges(self, fig9a_def):
        dot = to_dot(fig9a_def)
        assert "decision == 'accept'" in dot

    def test_split_join_shapes(self, fig9a_def):
        dot = to_dot(fig9a_def)
        # A is AND-split → doubled box; D is XOR-split → diamond.
        assert "peripheries=2" in dot
        assert "diamond" in dot

    def test_participants_toggle(self, fig9a_def):
        with_people = to_dot(fig9a_def, include_participants=True)
        without = to_dot(fig9a_def, include_participants=False)
        assert "submitter@acme.example" in with_people
        assert "submitter@acme.example" not in without

    def test_start_marker(self, fig9a_def):
        assert '__start__ -> "A"' in to_dot(fig9a_def)

    def test_implicit_end(self):
        # A chain without explicit END edges still gets an end marker.
        definition = chain_definition(2)
        dot = to_dot(definition)
        assert "__end__" in dot

    def test_quoting(self):
        from repro.model.builder import WorkflowBuilder

        definition = (
            WorkflowBuilder('with "quotes"', designer="d@x")
            .activity("A", "p@x", name='say "hi"')
            .build()
        )
        dot = to_dot(definition)
        assert '\\"hi\\"' in dot

    def test_output_is_dot_shaped(self, fig9a_def):
        dot = to_dot(fig9a_def)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")


class TestAscii:
    def test_summary(self, fig9a_def):
        text = to_ascii(fig9a_def)
        assert "figure-9a" in text
        assert "A: submitter@acme.example [start, split=and, join=xor]" \
            in text
        assert "-> (end)" in text
        assert "when decision == 'accept'" in text

    def test_chinese_wall(self):
        text = to_ascii(chinese_wall_definition())
        assert "split=xor" in text
        assert "tony@consultalot.example" in text
