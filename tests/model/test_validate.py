"""Structural validation: every ill-formed workflow is rejected."""

from __future__ import annotations

import pytest

from repro.errors import DefinitionError, PolicyError
from repro.model.activity import Activity, FieldSpec
from repro.model.builder import WorkflowBuilder
from repro.model.controlflow import END, JoinKind, SplitKind, Transition
from repro.model.definition import WorkflowDefinition
from repro.model.policy import FieldRule, ReaderClause
from repro.model.validate import definition_graph, validate_definition
from repro.workloads.figure9 import figure_9a_definition
from repro.workloads.chinese_wall import chinese_wall_definition
from repro.workloads.generator import (
    chain_definition,
    diamond_definition,
    loop_definition,
    random_definition,
)


def minimal() -> WorkflowDefinition:
    definition = WorkflowDefinition("p", "d@x")
    definition.add_activity(Activity("A", "p@x"))
    return definition


class TestValidWorkflows:
    @pytest.mark.parametrize("factory", [
        figure_9a_definition,
        chinese_wall_definition,
        lambda: chain_definition(4),
        lambda: diamond_definition(3),
        lambda: loop_definition(2),
        lambda: random_definition(11, blocks=4),
    ])
    def test_accepted(self, factory):
        validate_definition(factory())

    def test_single_activity(self):
        validate_definition(minimal())


class TestInvalidStructure:
    def test_empty(self):
        with pytest.raises(DefinitionError, match="no activities"):
            validate_definition(WorkflowDefinition("p", "d@x"))

    def test_missing_start(self):
        definition = minimal()
        definition.start_activity = "ghost"
        with pytest.raises(DefinitionError, match="start"):
            validate_definition(definition)

    def test_unreachable_activity(self):
        definition = minimal()
        definition.add_activity(Activity("island", "q@x"))
        with pytest.raises(DefinitionError, match="unreachable"):
            validate_definition(definition)

    def test_no_end(self):
        definition = minimal()
        definition.add_activity(Activity("B", "q@x",
                                         join=JoinKind.XOR))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("B", "B"))
        with pytest.raises(DefinitionError):
            validate_definition(definition)

    def test_none_split_fanout(self):
        definition = minimal()
        definition.add_activity(Activity("B", "q@x"))
        definition.add_activity(Activity("C", "r@x"))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", "C"))
        with pytest.raises(DefinitionError, match="split=NONE"):
            validate_definition(definition)

    def test_and_split_single_edge(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.AND))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_transition(Transition("A", "B"))
        with pytest.raises(DefinitionError, match="AND-split"):
            validate_definition(definition)

    def test_and_split_to_end_rejected(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.AND))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", END))
        with pytest.raises(DefinitionError, match="cannot.*target END"):
            validate_definition(definition)

    def test_xor_split_single_edge(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.XOR))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_transition(Transition("A", "B"))
        with pytest.raises(DefinitionError, match="XOR-split"):
            validate_definition(definition)

    def test_xor_multiple_defaults(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.XOR))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_activity(Activity("C", "r@x"))
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", "C"))
        with pytest.raises(DefinitionError, match="default"):
            validate_definition(definition)

    def test_none_join_fanin(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.AND))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_activity(Activity("C", "r@x"))
        definition.add_activity(Activity("D", "s@x"))  # join=NONE
        definition.add_transition(Transition("A", "B"))
        definition.add_transition(Transition("A", "C"))
        definition.add_transition(Transition("B", "D"))
        definition.add_transition(Transition("C", "D"))
        with pytest.raises(DefinitionError, match="join=NONE"):
            validate_definition(definition)

    def test_and_join_single_edge(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x"))
        definition.add_activity(Activity("B", "q@x", join=JoinKind.AND))
        definition.add_transition(Transition("A", "B"))
        with pytest.raises(DefinitionError, match="AND-join"):
            validate_definition(definition)

    def test_guard_reads_unproduced_variable(self):
        builder = (
            WorkflowBuilder("p", designer="d@x")
            .activity("A", "p@x", responses=["v"], split="xor")
            .activity("B", "q@x")
            .transition("A", "B", condition="ghost == 1")
            .transition("A", END, priority=1)
        )
        with pytest.raises(DefinitionError, match="ghost"):
            builder.build()

    def test_request_of_unproduced_variable(self):
        builder = (
            WorkflowBuilder("p", designer="d@x")
            .activity("A", "p@x", requests=["never_made"])
        )
        with pytest.raises(DefinitionError, match="never_made"):
            builder.build()

    def test_loop_without_xor_join(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x", split=SplitKind.XOR,
                                         responses=(FieldSpec("v"),)))
        definition.add_activity(Activity("B", "q@x"))
        definition.add_transition(Transition("A", "B", condition="v == 'x'"))
        definition.add_transition(Transition("A", "A", priority=1))
        with pytest.raises(DefinitionError, match="XOR-join"):
            validate_definition(definition)


class TestInvalidPolicy:
    def test_rule_for_unknown_activity(self):
        definition = minimal()
        definition.policy.add_rule(FieldRule(
            "ghost", "X", (ReaderClause(readers=("a@x",)),)
        ))
        with pytest.raises(PolicyError, match="unknown activity"):
            validate_definition(definition)

    def test_rule_for_unproduced_field(self):
        definition = minimal()
        definition.policy.add_rule(FieldRule(
            "A", "nothere", (ReaderClause(readers=("a@x",)),)
        ))
        with pytest.raises(PolicyError, match="does not produce"):
            validate_definition(definition)

    def test_policy_guard_reads_unproduced_variable(self):
        definition = WorkflowDefinition("p", "d@x")
        definition.add_activity(Activity("A", "p@x",
                                         responses=(FieldSpec("X"),)))
        definition.policy.add_rule(FieldRule(
            "A", "X",
            (ReaderClause(readers=("a@x",), condition="ghost == 1"),
             ReaderClause(readers=("b@x",))),
        ))
        with pytest.raises(PolicyError, match="ghost"):
            validate_definition(definition)


class TestGraph:
    def test_definition_graph(self):
        definition = figure_9a_definition()
        graph = definition_graph(definition)
        assert set(graph.nodes) == set(definition.activities)
        assert graph.has_edge("A", "B1")
        assert not graph.has_node(END)

    def test_definition_graph_with_end(self):
        graph = definition_graph(figure_9a_definition(), include_end=True)
        assert graph.has_edge("D", END)
