"""XPDL-like XML serialization of definitions."""

from __future__ import annotations

import pytest

from repro.errors import DefinitionError
from repro.model.xpdl import definition_from_xml, definition_to_xml
from repro.workloads.chinese_wall import chinese_wall_definition
from repro.workloads.figure9 import figure_9a_definition, figure_9b_definition
from repro.workloads.generator import (
    chain_definition,
    diamond_definition,
    loop_definition,
    random_definition,
)
from repro.xmlsec.canonical import canonicalize, parse_xml


@pytest.mark.parametrize("factory", [
    figure_9a_definition,
    figure_9b_definition,
    chinese_wall_definition,
    lambda: chain_definition(3),
    lambda: diamond_definition(2),
    lambda: loop_definition(2),
    lambda: random_definition(3, blocks=3),
], ids=["fig9a", "fig9b", "chinese-wall", "chain", "diamond", "loop",
        "random"])
def test_roundtrip_semantics(factory):
    original = factory()
    restored = definition_from_xml(definition_to_xml(original))
    assert restored.to_dict() == original.to_dict()


def test_roundtrip_is_canonically_stable():
    # designer signature stability depends on this
    definition = figure_9a_definition()
    once = canonicalize(definition_to_xml(definition))
    twice = canonicalize(definition_to_xml(
        definition_from_xml(parse_xml(once))
    ))
    assert once == twice


def test_policy_survives():
    definition = chinese_wall_definition()
    restored = definition_from_xml(definition_to_xml(definition))
    assert restored.policy.requires_tfc
    assert restored.policy.conceal_flow_from == \
        definition.policy.conceal_flow_from
    rule = restored.policy.rule_for("A2", "Y")
    assert rule is not None and rule.conditional


def test_end_transition_survives():
    definition = figure_9a_definition()
    restored = definition_from_xml(definition_to_xml(definition))
    assert restored.end_activities() == ["D"]


def test_wrong_root_tag_rejected():
    with pytest.raises(DefinitionError):
        definition_from_xml(parse_xml(b"<NotADefinition/>"))


def test_missing_activities_section_rejected():
    with pytest.raises(DefinitionError):
        definition_from_xml(parse_xml(
            b'<WorkflowDefinition ProcessName="p" Designer="d" '
            b'StartActivity="A"></WorkflowDefinition>'
        ))


def test_field_types_survive():
    from repro.model.activity import FieldSpec
    from repro.model.builder import WorkflowBuilder
    from repro.model.controlflow import END

    definition = (
        WorkflowBuilder("typed", designer="d@x")
        .activity("A", "p@x", responses=[FieldSpec("count", "int"),
                                         FieldSpec("ratio", "float")])
        .transition("A", END)
        .build()
    )
    restored = definition_from_xml(definition_to_xml(definition))
    specs = {s.name: s.ftype for s in restored.activity("A").responses}
    assert specs == {"count": "int", "ratio": "float"}
