"""The fluent WorkflowBuilder."""

from __future__ import annotations

import pytest

from repro.errors import DefinitionError
from repro.model.builder import WorkflowBuilder
from repro.model.controlflow import END, JoinKind, SplitKind


def test_basic_chain():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x", responses=["v"])
        .activity("B", "q@x", requests=["v"])
        .transition("A", "B")
        .build()
    )
    assert definition.start_activity == "A"
    assert definition.successors("A") == ["B"]


def test_transitions_may_precede_activities():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .transition("A", "B")
        .activity("A", "p@x")
        .activity("B", "q@x")
        .build()
    )
    assert definition.successors("A") == ["B"]


def test_explicit_start():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("Z", "p@x")
        .activity("A", "q@x")
        .transition("A", "Z")
        .start("A")
        .build()
    )
    assert definition.start_activity == "A"


def test_unknown_start_rejected():
    builder = WorkflowBuilder("p", designer="d@x").activity("A", "p@x")
    with pytest.raises(DefinitionError):
        builder.start("ghost").build()


def test_split_join_kinds():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x", split="and")
        .activity("B", "q@x")
        .activity("C", "r@x")
        .activity("D", "s@x", join="and")
        .transition("A", "B").transition("A", "C")
        .transition("B", "D").transition("C", "D")
        .build()
    )
    assert definition.activity("A").split is SplitKind.AND
    assert definition.activity("D").join is JoinKind.AND


def test_readers_accumulate_clauses():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x", responses=["X", "Y"])
        .activity("B", "q@x", requests=["Y"])
        .transition("A", "B")
        .readers("A", "X", ["john@a"], condition="Y == 'yes'")
        .readers("A", "X", ["mary@b"])
        .build()
    )
    rule = definition.policy.rule_for("A", "X")
    assert rule is not None
    assert len(rule.clauses) == 2
    assert rule.conditional


def test_extra_readers_deduplicated():
    builder = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x")
        .extra_readers("auditor@hq", "auditor@hq")
        .extra_readers("auditor@hq", "second@hq")
    )
    definition = builder.build()
    assert definition.policy.extra_readers == ("auditor@hq", "second@hq")


def test_conceal_flow_marks_tfc_required():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x")
        .conceal_flow_from("tony@x")
        .build()
    )
    assert definition.policy.requires_tfc


def test_require_timestamps():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x")
        .require_timestamps()
        .build()
    )
    assert definition.policy.require_timestamps


def test_validation_can_be_skipped():
    # An AND-split with one edge is invalid, but build(validate=False)
    # lets tests construct it anyway.
    builder = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x", split="and")
        .activity("B", "q@x")
        .transition("A", "B")
    )
    with pytest.raises(DefinitionError):
        builder2 = (
            WorkflowBuilder("p", designer="d@x")
            .activity("A", "p@x", split="and")
            .activity("B", "q@x")
            .transition("A", "B")
        )
        builder2.build()
    definition = builder.build(validate=False)
    assert "A" in definition.activities


def test_end_transition():
    definition = (
        WorkflowBuilder("p", designer="d@x")
        .activity("A", "p@x")
        .transition("A", END)
        .build()
    )
    assert definition.end_activities() == ["A"]
