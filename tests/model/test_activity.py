"""Activity and FieldSpec model validation and serialization."""

from __future__ import annotations

import pytest

from repro.errors import DefinitionError
from repro.model.activity import Activity, FieldSpec
from repro.model.controlflow import JoinKind, SplitKind, Transition


class TestFieldSpec:
    def test_defaults(self):
        spec = FieldSpec("amount")
        assert spec.ftype == "string"

    def test_typed(self):
        assert FieldSpec("n", "int").ftype == "int"

    @pytest.mark.parametrize("name", ["", "with space", "1leading", "a-b"])
    def test_invalid_names(self, name):
        with pytest.raises(DefinitionError):
            FieldSpec(name)

    def test_invalid_type(self):
        with pytest.raises(DefinitionError):
            FieldSpec("x", "decimal")

    def test_roundtrip(self):
        spec = FieldSpec("x", "float", "a measurement")
        assert FieldSpec.from_dict(spec.to_dict()) == spec


class TestActivity:
    def test_minimal(self):
        activity = Activity(activity_id="A1", participant="p@x")
        assert activity.split is SplitKind.NONE
        assert activity.join is JoinKind.NONE
        assert activity.response_names == ()

    def test_requires_id_and_participant(self):
        with pytest.raises(DefinitionError):
            Activity(activity_id="", participant="p@x")
        with pytest.raises(DefinitionError):
            Activity(activity_id="A1", participant="")

    def test_duplicate_responses_rejected(self):
        with pytest.raises(DefinitionError):
            Activity(activity_id="A1", participant="p@x",
                     responses=(FieldSpec("x"), FieldSpec("x")))

    def test_response_names(self):
        activity = Activity(activity_id="A1", participant="p@x",
                            responses=(FieldSpec("a"), FieldSpec("b")))
        assert activity.response_names == ("a", "b")

    def test_roundtrip(self):
        activity = Activity(
            activity_id="A1", participant="p@x", name="Review",
            description="look at it", requests=("q",),
            responses=(FieldSpec("a", "int"),),
            split=SplitKind.XOR, join=JoinKind.AND,
            metadata={"sla": "24h"},
        )
        restored = Activity.from_dict(activity.to_dict())
        assert restored == activity
        assert restored.metadata == {"sla": "24h"}


class TestTransition:
    def test_defaults(self):
        t = Transition("A", "B")
        assert t.condition is None
        assert t.priority == 0

    def test_roundtrip(self):
        t = Transition("A", "B", condition="x > 1", priority=2)
        assert Transition.from_dict(t.to_dict()) == t

    def test_roundtrip_none_condition(self):
        t = Transition("A", "B")
        assert Transition.from_dict(t.to_dict()) == t
