"""Guard expression compilation, evaluation, and sandboxing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError
from repro.model.expressions import (
    evaluate_guard,
    guard_variables,
    validate_guard,
)


class TestEvaluation:
    @pytest.mark.parametrize("expr,variables,expected", [
        ("X == 'accept'", {"X": "accept"}, True),
        ("X == 'accept'", {"X": "reject"}, False),
        ("X != 'accept'", {"X": "reject"}, True),
        ("amount > 1000", {"amount": 1500}, True),
        ("amount > 1000", {"amount": 1000}, False),
        ("amount >= 1000", {"amount": 1000}, True),
        ("amount < limit", {"amount": 5, "limit": 10}, True),
        ("a <= b <= c", {"a": 1, "b": 2, "c": 3}, True),
        ("a <= b <= c", {"a": 1, "b": 5, "c": 3}, False),
        ("approved and amount > 0", {"approved": True, "amount": 1}, True),
        ("approved and amount > 0", {"approved": False, "amount": 1}, False),
        ("a or b", {"a": False, "b": True}, True),
        ("not rejected", {"rejected": False}, True),
        ("status in ('open', 'review')", {"status": "review"}, True),
        ("status not in ('open',)", {"status": "closed"}, True),
        ("x + y == 10", {"x": 4, "y": 6}, True),
        ("x * 2 > y - 1", {"x": 3, "y": 8}, False),
        ("x % 2 == 0", {"x": 4}, True),
        ("-x < 0", {"x": 5}, True),
        ("True", {}, True),
        ("x / 2 == 2.5", {"x": 5}, True),
    ])
    def test_cases(self, expr, variables, expected):
        assert evaluate_guard(expr, variables) is expected

    def test_undefined_variable(self):
        with pytest.raises(ExpressionError, match="undefined variable"):
            evaluate_guard("missing == 1", {"present": 1})

    def test_type_error_surfaced(self):
        with pytest.raises(ExpressionError):
            evaluate_guard("x < y", {"x": "text", "y": 3})

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            evaluate_guard("x / 0 > 1", {"x": 4})

    def test_short_circuit_and(self):
        # The right operand would fail; `and` must not evaluate it.
        assert evaluate_guard("present and missing", {"present": False,
                                                      "missing": True}) \
            is False


class TestSandbox:
    @pytest.mark.parametrize("expr", [
        "__import__('os').system('true')",
        "open('/etc/passwd')",
        "x.__class__",
        "[i for i in range(3)]",
        "lambda: 1",
        "x[0]",
        "f'{x}'",
        "x := 3",
        "x ** 99",
        "{1: 2}",
        "b'bytes' == b'bytes'",
    ])
    def test_disallowed_constructs(self, expr):
        with pytest.raises(ExpressionError):
            validate_guard(expr)

    @pytest.mark.parametrize("expr", ["", "   ", "==", "x ==", "1 +"])
    def test_malformed(self, expr):
        with pytest.raises(ExpressionError):
            validate_guard(expr)

    def test_non_string(self):
        with pytest.raises(ExpressionError):
            validate_guard(None)  # type: ignore[arg-type]


class TestGuardVariables:
    def test_collects_names(self):
        assert guard_variables("x > 0 and status == 'ok' or y in (1, 2)") \
            == {"x", "status", "y"}

    def test_no_names(self):
        assert guard_variables("1 < 2") == set()


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_property_comparison_agrees_with_python(x, y):
    assert evaluate_guard("x < y", {"x": x, "y": y}) == (x < y)
    assert evaluate_guard("x == y", {"x": x, "y": y}) == (x == y)


@given(st.booleans(), st.booleans())
def test_property_boolean_ops(a, b):
    assert evaluate_guard("a and b", {"a": a, "b": b}) == (a and b)
    assert evaluate_guard("a or not b", {"a": a, "b": b}) == (a or not b)
