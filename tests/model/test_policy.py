"""Security policy: reader clauses, conditional resolution, TFC demand."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.model.builder import WorkflowBuilder
from repro.model.controlflow import END
from repro.model.policy import FieldRule, ReaderClause, SecurityPolicy


def make_rule(*clauses: ReaderClause) -> FieldRule:
    return FieldRule(activity_id="A1", fieldname="X", clauses=clauses)


class TestReaderClause:
    def test_requires_readers(self):
        with pytest.raises(PolicyError):
            ReaderClause(readers=())

    def test_condition_validated(self):
        with pytest.raises(Exception):
            ReaderClause(readers=("a@x",), condition="import os")

    def test_roundtrip(self):
        clause = ReaderClause(readers=("a@x", "b@y"), condition="v == 1")
        assert ReaderClause.from_dict(clause.to_dict()) == clause


class TestFieldRule:
    def test_requires_clauses(self):
        with pytest.raises(PolicyError):
            make_rule()

    def test_single_default_clause(self):
        rule = make_rule(ReaderClause(readers=("a@x",)))
        assert not rule.conditional
        assert rule.resolve(None) == ("a@x",)

    def test_multiple_defaults_rejected(self):
        with pytest.raises(PolicyError, match="multiple"):
            make_rule(ReaderClause(readers=("a@x",)),
                      ReaderClause(readers=("b@y",)))

    def test_conditional_resolution(self):
        rule = make_rule(
            ReaderClause(readers=("john@a",), condition="v == 'yes'"),
            ReaderClause(readers=("mary@b",)),
        )
        assert rule.conditional
        assert rule.resolve({"v": "yes"}) == ("john@a",)
        assert rule.resolve({"v": "no"}) == ("mary@b",)

    def test_clause_order_matters(self):
        rule = make_rule(
            ReaderClause(readers=("first@x",), condition="v > 0"),
            ReaderClause(readers=("second@x",), condition="v > 1"),
            ReaderClause(readers=("fallback@x",)),
        )
        assert rule.resolve({"v": 5}) == ("first@x",)

    def test_conditional_without_variables_is_the_fig4_problem(self):
        rule = make_rule(
            ReaderClause(readers=("john@a",), condition="v == 'yes'"),
            ReaderClause(readers=("mary@b",)),
        )
        with pytest.raises(PolicyError, match="advanced model"):
            rule.resolve(None)

    def test_no_match_no_default(self):
        rule = make_rule(ReaderClause(readers=("a@x",), condition="v == 1"))
        with pytest.raises(PolicyError, match="no clause"):
            rule.resolve({"v": 2})

    def test_guard_variables(self):
        rule = make_rule(
            ReaderClause(readers=("a@x",), condition="v == 1 and w > 2"),
            ReaderClause(readers=("b@x",)),
        )
        assert rule.guard_variables() == {"v", "w"}

    def test_roundtrip(self):
        rule = make_rule(
            ReaderClause(readers=("a@x",), condition="v == 1"),
            ReaderClause(readers=("b@x",)),
        )
        assert FieldRule.from_dict(rule.to_dict()) == rule


class TestSecurityPolicy:
    def test_duplicate_rule_rejected(self):
        policy = SecurityPolicy()
        policy.add_rule(make_rule(ReaderClause(readers=("a@x",))))
        with pytest.raises(PolicyError, match="duplicate"):
            policy.add_rule(make_rule(ReaderClause(readers=("b@x",))))

    def test_requires_tfc(self):
        assert not SecurityPolicy().requires_tfc
        assert SecurityPolicy(conceal_flow_from=("tony@x",)).requires_tfc
        assert SecurityPolicy(require_timestamps=True).requires_tfc
        conditional = SecurityPolicy()
        conditional.add_rule(make_rule(
            ReaderClause(readers=("a@x",), condition="v == 1"),
            ReaderClause(readers=("b@x",)),
        ))
        assert conditional.requires_tfc

    def test_roundtrip(self):
        policy = SecurityPolicy(
            extra_readers=("auditor@hq",),
            conceal_flow_from=("tony@x",),
            require_timestamps=True,
        )
        policy.add_rule(make_rule(ReaderClause(readers=("a@x",))))
        restored = SecurityPolicy.from_dict(policy.to_dict())
        assert restored.extra_readers == ("auditor@hq",)
        assert restored.conceal_flow_from == ("tony@x",)
        assert restored.require_timestamps
        assert restored.rule_for("A1", "X") is not None


class TestReadersFor:
    @pytest.fixture()
    def definition(self):
        return (
            WorkflowBuilder("p", designer="d@x")
            .activity("A1", "peter@x", responses=["X"])
            .activity("A2", "tony@x", requests=["X"], responses=["Y"])
            .activity("A3", "amy@x", requests=["X", "Y"])
            .transition("A1", "A2").transition("A2", "A3")
            .transition("A3", END)
            .build()
        )

    def test_default_readers_are_requesters(self, definition):
        readers = definition.policy.readers_for(definition, "A1", "X")
        # Requesters (tony, amy) plus the producer (peter).
        assert set(readers) == {"peter@x", "tony@x", "amy@x"}

    def test_explicit_rule_overrides(self, definition):
        definition.policy.add_rule(FieldRule(
            "A1", "X", (ReaderClause(readers=("amy@x",)),)
        ))
        readers = definition.policy.readers_for(definition, "A1", "X")
        # Rule readers plus the producer — but NOT tony.
        assert set(readers) == {"amy@x", "peter@x"}

    def test_extra_readers_always_included(self, definition):
        definition.policy.extra_readers = ("auditor@hq",)
        readers = definition.policy.readers_for(definition, "A2", "Y")
        assert "auditor@hq" in readers

    def test_producer_always_reads_own_field(self, definition):
        readers = definition.policy.readers_for(definition, "A2", "Y")
        assert "tony@x" in readers
