"""Unit tests for the deterministic metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)


class TestMetricKey:
    def test_plain_name(self):
        assert metric_key("hops_total", {}) == "hops_total"

    def test_labels_sorted(self):
        key = metric_key("wire_bytes", {"direction": "to_cloud"})
        assert key == "wire_bytes{direction=to_cloud}"
        assert (metric_key("x", {"b": "2", "a": "1"})
                == metric_key("x", {"a": "1", "b": "2"})
                == "x{a=1,b=2}")


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucket_placement(self):
        hist = Histogram(buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 2.0, 100.0):
            hist.observe(value)
        # Non-cumulative: <=1.0 gets two, (1, 5] one, overflow one.
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min_value == 0.5
        assert hist.max_value == 100.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))

    def test_to_dict_shape(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.25)
        snap = hist.to_dict()
        assert snap["count"] == 1
        assert snap["sum"] == 0.25
        assert snap["buckets"] == {"1.0": 1, "+Inf": 0}

    def test_empty_snapshot_is_json_safe(self):
        assert json.dumps(Histogram().to_dict())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1") is reg.counter("a", x="1")
        assert reg.counter("a", x="1") is not reg.counter("a", x="2")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(2)
        reg.counter("a_total").inc(0.5)
        reg.gauge("depth", station="portal").set(3)
        reg.histogram("lat").observe(0.2)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a_total", "b_total"]
        # Whole-number counters emit as ints, fractional ones as floats.
        assert snap["counters"]["b_total"] == 2
        assert isinstance(snap["counters"]["b_total"], int)
        assert snap["counters"]["a_total"] == 0.5
        assert snap["gauges"]["depth{station=portal}"] == 3.0
        assert snap["histograms"]["lat"]["count"] == 1
        assert json.dumps(snap)  # JSON-safe end to end

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z").inc()
            reg.counter("a").inc()
            reg.gauge("g").set(1)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
