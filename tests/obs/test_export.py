"""Unit tests for the trace exporters and the trace validator."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    to_chrome_trace,
    to_folded_stacks,
    summarize_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer, microseconds


def drive(tracer: Tracer) -> Tracer:
    """A small two-instance trace exercising every event kind."""
    with tracer.span("hop", component="fleet", instance="i1", hop="A"):
        with tracer.span("portal.submit", component="portal"):
            tracer.leaf("portal", 0.25)
        tracer.instant("station.portal", detail="0.25")
    with tracer.span("hop", component="fleet", instance="i2", hop="A"):
        with tracer.span("hbase.put", component="hbase"):
            tracer.leaf("pool", 0.5)
    return tracer


class TestChromeTrace:
    def test_valid_and_counted(self):
        payload = to_chrome_trace(drive(Tracer()))
        counts = validate_chrome_trace(payload)
        assert counts == {"spans": 4, "leaves": 2, "instants": 1,
                          "metadata": 4}  # process + 3 threads

    def test_thread_per_instance(self):
        payload = to_chrome_trace(drive(Tracer()))
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"(shared)", "i1", "i2"}

    def test_same_input_byte_identical(self):
        one = json.dumps(to_chrome_trace(drive(Tracer())), sort_keys=True)
        two = json.dumps(to_chrome_trace(drive(Tracer())), sort_keys=True)
        assert one == two

    def test_write_returns_byte_count(self, tmp_path):
        path = tmp_path / "trace.json"
        size = write_chrome_trace(drive(Tracer()), path)
        data = path.read_bytes()
        assert len(data) == size
        assert data.endswith(b"\n")
        validate_chrome_trace(json.loads(data))


class TestValidator:
    def payload(self):
        return to_chrome_trace(drive(Tracer()))

    def events(self, payload, phase):
        return [e for e in payload["traceEvents"] if e["ph"] == phase]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_key(self):
        payload = self.payload()
        del self.events(payload, "X")[0]["ts"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(payload)

    def test_rejects_time_travel(self):
        payload = self.payload()
        self.events(payload, "E")[-1]["ts"] = -5
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def test_rejects_unbalanced_spans(self):
        payload = self.payload()
        begin = self.events(payload, "B")[0]
        payload["traceEvents"].remove(begin)
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def test_rejects_mismatched_names(self):
        payload = self.payload()
        self.events(payload, "B")[0]["name"] = "wrong"
        with pytest.raises(ValueError, match="closes"):
            validate_chrome_trace(payload)

    def test_rejects_missing_dur(self):
        payload = self.payload()
        del self.events(payload, "X")[0]["dur"]
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(payload)


class TestFoldedStacks:
    def test_weights_sum_to_cursor(self):
        tracer = drive(Tracer())
        folded = to_folded_stacks(tracer)
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in folded.splitlines())
        assert total == tracer.now_us

    def test_paths_nest(self):
        folded = to_folded_stacks(drive(Tracer()))
        assert f"hop;portal.submit;portal {microseconds(0.25)}\n" in folded
        assert f"hop;hbase.put;pool {microseconds(0.5)}\n" in folded


class TestSummary:
    def test_rows_sorted_by_sim_time(self):
        rows = summarize_chrome_trace(to_chrome_trace(drive(Tracer())))
        by_component = {row["component"]: row for row in rows}
        assert by_component["portal"]["sim_us"] == microseconds(0.25)
        assert by_component["hbase"]["sim_us"] == microseconds(0.5)
        assert rows[0]["component"] == "hbase"  # largest first
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        # fleet has spans but zero charged time
        assert by_component["fleet"]["spans"] == 2
        assert by_component["fleet"]["sim_us"] == 0
