"""Unit tests for the deterministic span tracer.

The invariants pinned here are the ones the exporters and the fleet
integration rely on: a monotone cursor advanced only by charges,
parents strictly enclosing children, CostCapture-compatible per-tag
totals, and a lossless cross-process payload/absorb round trip.
"""

from __future__ import annotations

import pytest

from repro.cloud.simclock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, capture_totals_us, microseconds


class TestMicroseconds:
    def test_rounding(self):
        assert microseconds(0.0) == 0
        assert microseconds(1.0) == 1_000_000
        assert microseconds(0.0000005) == 0  # banker's rounding at .5
        assert microseconds(0.0000015) == 2


class TestSpans:
    def test_parent_encloses_child(self):
        tracer = Tracer()
        with tracer.span("outer", component="portal"):
            tracer.leaf("portal", 0.25)
            with tracer.span("inner"):
                tracer.leaf("pool", 0.5)
            tracer.leaf("portal", 0.125)
        inner, outer = tracer.spans  # close order
        assert inner.name == "inner"
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us
        assert outer.dur_us == microseconds(0.875)
        assert inner.dur_us == microseconds(0.5)

    def test_context_inheritance(self):
        tracer = Tracer()
        with tracer.span("hop", component="fleet", instance="i1",
                         hop="A"):
            with tracer.span("portal.submit", component="portal"):
                tracer.leaf("portal", 0.1)
        submit, hop = tracer.spans
        assert submit.instance == "i1"
        assert submit.hop == "A"
        assert submit.component == "portal"
        assert hop.component == "fleet"
        leaf = tracer.charges[0]
        assert (leaf.instance, leaf.hop) == ("i1", "A")

    def test_leaf_component_resolution(self):
        """A leaf's name stays the raw tag; its component comes from the
        innermost open span (the hbase/hdfs split), else the tag."""
        tracer = Tracer()
        with tracer.span("hbase.put", component="hbase"):
            tracer.leaf("pool", 0.5)
        tracer.leaf("pool", 0.25)
        inside, outside = tracer.charges
        assert (inside.name, inside.component) == ("pool", "hbase")
        assert (outside.name, outside.component) == ("pool", "pool")
        assert tracer.tag_totals() == {"pool": microseconds(0.75)}
        assert tracer.component_totals() == {
            "hbase": microseconds(0.5), "pool": microseconds(0.25),
        }

    def test_instant_does_not_advance_cursor(self):
        tracer = Tracer()
        with tracer.span("hop", component="fleet"):
            tracer.instant("station.portal", detail="0.5")
        assert tracer.now_us == 0
        marker = tracer.charges[0]
        assert marker.phase == "i"
        assert marker.dur_us == 0
        assert marker.detail == "0.5"


class TestCaptureCompatibility:
    def test_tag_totals_match_capture_to_the_microsecond(self):
        """A tracer watching a captured charge stream reports exactly
        what :func:`capture_totals_us` computes from the capture."""
        clock = SimClock()
        tracer = Tracer()
        clock.tracer = tracer
        with clock.capture() as captured:
            for i in range(100):
                clock.advance(0.0000005 + i * 0.0013, component="portal")
                clock.advance(0.0021 * i, component="notify")
                clock.advance(0.0007)  # untagged -> "misc"
        assert tracer.tag_totals() == capture_totals_us(captured)
        assert sum(tracer.tag_totals().values()) == tracer.now_us

    def test_untagged_advances_outside_capture_not_traced(self):
        """``advance_to`` idle time is not work — only tagged charges
        trace outside a capture."""
        clock = SimClock()
        tracer = Tracer()
        clock.tracer = tracer
        clock.advance(5.0)  # scheduler idle: untagged, uncaptured
        clock.advance(0.5, component="portal")
        assert tracer.tag_totals() == {"portal": microseconds(0.5)}

    def test_trace_muted_suppresses_charges(self):
        clock = SimClock()
        tracer = Tracer()
        clock.tracer = tracer
        with clock.trace_muted():
            with clock.capture():
                clock.advance(1.0, component="portal")
        assert tracer.now_us == 0
        assert clock.tracer is tracer  # restored


class TestMetricsTap:
    def test_collect_false_keeps_totals_drops_events(self):
        reg = MetricsRegistry()
        tracer = Tracer(collect=False, metrics=reg)
        with tracer.span("hbase.put", component="hbase"):
            tracer.leaf("pool", 0.5)
        assert tracer.spans == []
        assert tracer.charges == []
        assert tracer.component_totals() == {"hbase": microseconds(0.5)}
        snap = reg.snapshot()
        assert (snap["counters"]["sim_us_total{component=hbase}"]
                == microseconds(0.5))


class TestPayloadAbsorb:
    def build_worker(self):
        worker = Tracer()
        with worker.span("instance", component="fleet", instance="w1"):
            with worker.span("portal.submit", component="portal"):
                worker.leaf("portal", 0.25)
        return worker

    def test_round_trip_rebases(self):
        parent = Tracer()
        parent.leaf("portal", 1.0)  # parent cursor at 1s
        base = parent.now_us
        worker = self.build_worker()
        parent.absorb(worker.payload())
        assert parent.now_us == base + worker.now_us
        merged = parent.spans[-1]
        assert merged.start_us >= base
        assert parent.tag_totals()["portal"] == microseconds(1.25)

    def test_absorb_feeds_metrics(self):
        reg = MetricsRegistry()
        parent = Tracer(metrics=reg)
        parent.absorb(self.build_worker().payload())
        assert (reg.snapshot()["counters"]["sim_us_total{component=portal}"]
                == microseconds(0.25))

    def test_open_span_cannot_serialize(self):
        tracer = Tracer()
        with tracer.span("open"):
            with pytest.raises(RuntimeError):
                tracer.payload()

    def test_cannot_absorb_mid_span(self):
        parent = Tracer()
        payload = self.build_worker().payload()
        with parent.span("open"):
            with pytest.raises(RuntimeError):
                parent.absorb(payload)

    def test_merge_order_independence_of_totals(self):
        a, b = self.build_worker(), self.build_worker()
        parent1, parent2 = Tracer(), Tracer()
        parent1.absorb(a.payload())
        parent1.absorb(b.payload())
        parent2.absorb(b.payload())
        parent2.absorb(a.payload())
        assert parent1.tag_totals() == parent2.tag_totals()
        assert parent1.now_us == parent2.now_us
