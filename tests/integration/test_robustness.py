"""Robustness: hostile inputs must raise ReproError, never crash oddly.

A document pool and portals accept bytes from untrusted parties; every
parser/verifier entry point must fail *closed* with a library error —
no unhandled exceptions, no acceptance.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.document import Dra4wfmsDocument, verify_document
from repro.errors import ReproError
from repro.model.xpdl import definition_from_xml
from repro.xmlsec.canonical import parse_xml

_quiet = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestGarbageBytes:
    @_quiet
    @given(st.binary(max_size=300))
    def test_document_parser_fails_closed(self, data):
        try:
            Dra4wfmsDocument.from_bytes(data)
        except ReproError:
            pass  # the only acceptable failure mode

    @_quiet
    @given(st.text(max_size=200))
    def test_xml_parser_fails_closed(self, text):
        try:
            parse_xml(text.encode("utf-8", errors="ignore"))
        except ReproError:
            pass


class TestStructurallyValidGarbage:
    """Well-formed XML that is not a valid DRA4WfMS artefact."""

    @pytest.mark.parametrize("payload", [
        b"<DRA4WfMSDocument/>",
        b"<DRA4WfMSDocument><Header/></DRA4WfMSDocument>",
        b'<DRA4WfMSDocument><Header Id="hdr" ProcessId="p"/>'
        b"<ActivityExecutionResults/></DRA4WfMSDocument>",
        b'<DRA4WfMSDocument><Header Id="hdr" ProcessId="p"/>'
        b"<ApplicationDefinition><CER/></ApplicationDefinition>"
        b"</DRA4WfMSDocument>",
    ])
    def test_skeleton_fragments_rejected(self, payload, world, backend):
        with pytest.raises(ReproError):
            document = Dra4wfmsDocument.from_bytes(payload)
            verify_document(document, world.directory, backend)

    @pytest.mark.parametrize("payload", [
        b"<WorkflowDefinition/>",
        b'<WorkflowDefinition ProcessName="p" Designer="d" '
        b'StartActivity="A"><Activities>'
        b'<Activity ActivityId="A" Participant="p" Split="sideways"/>'
        b"</Activities></WorkflowDefinition>",
    ])
    def test_malformed_definitions_rejected(self, payload):
        with pytest.raises((ReproError, ValueError)):
            definition_from_xml(parse_xml(payload))


class TestMutatedRealDocument:
    @_quiet
    @given(data=st.data())
    def test_random_byte_edits_never_verify(self, fig9a_trace, world,
                                            backend, data):
        """Flip a random byte of the serialized document.

        The result must either fail to parse or fail to verify — it can
        never parse AND verify (unless the flip hit semantically dead
        bytes, which canonical serialization doesn't have outside text
        that equals its replacement).
        """
        blob = bytearray(fig9a_trace.final_document.to_bytes())
        position = data.draw(st.integers(0, len(blob) - 1))
        original = blob[position]
        replacement = data.draw(st.integers(0, 255))
        if replacement == original:
            return
        blob[position] = replacement
        try:
            document = Dra4wfmsDocument.from_bytes(bytes(blob))
        except ReproError:
            return  # failed to parse: fine
        except Exception:
            return  # undecodable UTF-8 etc. — parse layer, acceptable
        try:
            verify_document(document, world.directory, backend)
        except ReproError:
            return  # failed to verify: fine
        # Verified despite the flip?  Only legitimate if the canonical
        # form is unchanged (e.g. flip inside ignorable content — which
        # our canonical serialization does not produce).
        assert document.to_bytes() == \
            fig9a_trace.final_document.to_bytes()
