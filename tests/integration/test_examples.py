"""Every example script must run to completion (examples never rot)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_are_covered():
    assert set(EXAMPLES) == {
        "quickstart.py",
        "purchase_order.py",
        "chinese_wall.py",
        "cloud_deployment.py",
        "attack_demo.py",
        "dynamic_delegation.py",
        "insurance_claim.py",
        "load_test.py",
    }


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Examples call main() under __main__; run them as scripts.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
    assert "BUG" not in out
