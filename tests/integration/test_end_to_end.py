"""Cross-module integration scenarios."""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import (
    build_initial_document,
    covers_whole_document,
    verify_document,
)
from repro.errors import PolicyError
from repro.workloads import (
    auto_responders,
    build_world,
    chain_definition,
    chinese_wall_definition,
    chinese_wall_responders,
    diamond_definition,
    loop_definition,
    random_definition,
)
from repro.workloads.chinese_wall import DESIGNER as CW_DESIGNER
from repro.workloads.chinese_wall import PARTICIPANTS as CW_PARTICIPANTS
from repro.workloads.generator import participant_pool

GENERIC_DESIGNER = "designer@enterprise.example"


@pytest.fixture(scope="module")
def generic_world(backend):
    return build_world([GENERIC_DESIGNER, *participant_pool(6)],
                       bits=1024, backend=backend)


class TestGeneratedWorkflows:
    @pytest.mark.parametrize("factory,expected_steps", [
        (lambda: chain_definition(6), 6),
        (lambda: diamond_definition(4), 6),
        (lambda: loop_definition(3), 9),     # 2 extra iterations below
    ], ids=["chain", "diamond", "loop"])
    def test_basic_execution(self, generic_world, backend, factory,
                             expected_steps):
        definition = factory()
        initial = build_initial_document(
            definition, generic_world.keypair(GENERIC_DESIGNER),
            backend=backend,
        )
        runtime = InMemoryRuntime(generic_world.directory,
                                  generic_world.keypairs, backend=backend)
        trace = runtime.run(initial, definition,
                            auto_responders(definition, loop_iterations=2),
                            mode="basic")
        assert len(trace.steps) == expected_steps
        verify_document(trace.final_document, generic_world.directory,
                        backend)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_workflows(self, generic_world, backend, seed):
        definition = random_definition(seed, blocks=3)
        initial = build_initial_document(
            definition, generic_world.keypair(GENERIC_DESIGNER),
            backend=backend,
        )
        runtime = InMemoryRuntime(generic_world.directory,
                                  generic_world.keypairs, backend=backend)
        trace = runtime.run(initial, definition,
                            auto_responders(definition), mode="basic")
        verify_document(trace.final_document, generic_world.directory,
                        backend)
        final_cer = trace.final_document.cers(
            include_definition=False)[-1]
        assert covers_whole_document(trace.final_document, final_cer)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_workflows_advanced(self, generic_world, backend, seed):
        definition = random_definition(seed, blocks=2)
        if "tfc@cloud.example" not in generic_world.directory:
            generic_world.add_participant("tfc@cloud.example")
        initial = build_initial_document(
            definition, generic_world.keypair(GENERIC_DESIGNER),
            backend=backend,
        )
        tfc = TfcServer(generic_world.keypair("tfc@cloud.example"),
                        generic_world.directory, backend=backend)
        runtime = InMemoryRuntime(generic_world.directory,
                                  generic_world.keypairs, tfc=tfc,
                                  backend=backend)
        trace = runtime.run(initial, definition,
                            auto_responders(definition), mode="advanced")
        verify_document(trace.final_document, generic_world.directory,
                        backend, tfc_identities={tfc.identity})


class TestChineseWall:
    @pytest.fixture(scope="class")
    def cw_world(self, backend):
        return build_world(
            [CW_DESIGNER, *CW_PARTICIPANTS.values(), "tfc@cloud.example"],
            bits=1024, backend=backend,
        )

    def test_basic_model_refuses(self, cw_world, backend):
        definition = chinese_wall_definition()
        initial = build_initial_document(
            definition, cw_world.keypair(CW_DESIGNER), backend=backend
        )
        runtime = InMemoryRuntime(cw_world.directory, cw_world.keypairs,
                                  backend=backend)
        with pytest.raises(PolicyError, match="advanced"):
            runtime.run(initial, definition, chinese_wall_responders(),
                        mode="basic")

    @pytest.mark.parametrize("target,branch,reader,non_reader", [
        ("bank-a-engagement", "A4", "john@bank-a.example",
         "mary@bank-b.example"),
        ("bank-b-engagement", "A5", "mary@bank-b.example",
         "john@bank-a.example"),
    ], ids=["func-true", "func-false"])
    def test_conditional_routing_and_encryption(self, cw_world, backend,
                                                target, branch, reader,
                                                non_reader):
        definition = chinese_wall_definition()
        initial = build_initial_document(
            definition, cw_world.keypair(CW_DESIGNER), backend=backend
        )
        tfc = TfcServer(cw_world.keypair("tfc@cloud.example"),
                        cw_world.directory, backend=backend)
        runtime = InMemoryRuntime(cw_world.directory, cw_world.keypairs,
                                  tfc=tfc, backend=backend)
        trace = runtime.run(initial, definition,
                            chinese_wall_responders(target),
                            mode="advanced")
        executed = [s.activity_id for s in trace.steps]
        assert branch in executed
        # Y is encrypted for exactly the branch the guard selected.
        field = trace.final_document.find_cer("A2", 0, "tfc") \
            .encrypted_field("Y")
        assert reader in field.recipients
        assert non_reader not in field.recipients

    def test_x_concealed_from_tony(self, cw_world, backend):
        definition = chinese_wall_definition()
        initial = build_initial_document(
            definition, cw_world.keypair(CW_DESIGNER), backend=backend
        )
        tfc = TfcServer(cw_world.keypair("tfc@cloud.example"),
                        cw_world.directory, backend=backend)
        runtime = InMemoryRuntime(cw_world.directory, cw_world.keypairs,
                                  tfc=tfc, backend=backend)
        trace = runtime.run(initial, definition,
                            chinese_wall_responders(), mode="advanced")
        x_field = trace.final_document.find_cer("A1", 0, "tfc") \
            .encrypted_field("X")
        tony = CW_PARTICIPANTS["A2"]
        assert tony not in x_field.recipients
        assert CW_PARTICIPANTS["A6"] in x_field.recipients  # Amy


class TestCrossEnterprise:
    def test_participants_span_enterprises(self, world, fig9a_trace):
        document = fig9a_trace.final_document
        domains = {
            cer.participant.split("@")[1]
            for cer in document.cers(include_definition=False)
        }
        assert len(domains) == 3  # acme, partner, megacorp

    def test_offline_third_party_audit(self, world, fig9a_trace, backend):
        # An auditor with only the PKI directory and the document bytes
        # can verify everything — no server involved.
        blob = fig9a_trace.final_document.to_bytes()
        from repro.document import Dra4wfmsDocument

        document = Dra4wfmsDocument.from_bytes(blob)
        report = verify_document(document, world.directory, backend)
        assert report.signatures_verified == 11
