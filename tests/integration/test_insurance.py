"""The insurance-claim workload: both branches, loop, field policy."""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import build_initial_document, verify_document
from repro.workloads import build_world
from repro.workloads.insurance import (
    DESIGNER,
    PARTICIPANTS,
    insurance_definition,
    insurance_responders,
)

TFC = "tfc@cloud.example"


@pytest.fixture(scope="module")
def insurance_world(backend):
    identities = sorted({DESIGNER, *PARTICIPANTS.values(), TFC})
    return build_world(identities, bits=1024, backend=backend)


@pytest.fixture(scope="module")
def executed(insurance_world, backend):
    definition = insurance_definition()
    initial = build_initial_document(
        definition, insurance_world.keypair(DESIGNER), backend=backend
    )
    runtime = InMemoryRuntime(insurance_world.directory,
                              insurance_world.keypairs, backend=backend)
    trace = runtime.run(initial, definition, insurance_responders(),
                        mode="basic")
    return definition, trace


class TestExecutionPath:
    @staticmethod
    def _passes(trace):
        # Split the step list at the re-filing (FILE iteration 1).
        activities = [(s.activity_id, s.iteration) for s in trace.steps]
        refiling = activities.index(("FILE", 1))
        return ([a for a, _ in activities[:refiling]],
                [a for a, _ in activities[refiling:]])

    def test_first_pass_takes_full_review(self, executed):
        _, trace = executed
        first_pass, _ = self._passes(trace)
        assert "DISPATCH" in first_pass
        assert "MEDICAL" in first_pass and "FRAUD" in first_pass
        assert "FAST" not in first_pass

    def test_refiled_claim_takes_fast_track(self, executed):
        _, trace = executed
        _, second_pass = self._passes(trace)
        assert "FAST" in second_pass
        assert "DISPATCH" not in second_pass

    def test_ends_with_payment(self, executed):
        _, trace = executed
        assert trace.steps[-1].activity_id == "PAY"
        assert trace.final_document.execution_count("NOTIFY") == 0

    def test_step_count(self, executed):
        # Pass 1: FILE TRIAGE DISPATCH MEDICAL FRAUD CONSOLIDATE DECIDE
        # Pass 2: FILE TRIAGE FAST DECIDE PAY
        _, trace = executed
        assert len(trace.steps) == 12

    def test_verifies(self, executed, insurance_world, backend):
        _, trace = executed
        report = verify_document(trace.final_document,
                                 insurance_world.directory, backend)
        assert report.signatures_verified == 13


class TestFieldPolicy:
    def test_bank_account_only_for_payments_desk(self, executed):
        _, trace = executed
        field = trace.final_document.find_cer("FILE", 0) \
            .encrypted_field("bank_account")
        assert set(field.recipients) == {
            PARTICIPANTS["PAY"], PARTICIPANTS["FILE"],
        }

    def test_medical_report_never_reaches_bank(self, executed):
        _, trace = executed
        field = trace.final_document.find_cer("MEDICAL", 0) \
            .encrypted_field("medical_report")
        assert PARTICIPANTS["PAY"] not in field.recipients
        assert PARTICIPANTS["CONSOLIDATE"] in field.recipients

    def test_bank_cannot_decrypt_medical_report(self, executed,
                                                insurance_world, backend):
        from repro.errors import XmlEncryptionError

        _, trace = executed
        bank = insurance_world.keypair(PARTICIPANTS["PAY"])
        field = trace.final_document.find_cer("MEDICAL", 0) \
            .encrypted_field("medical_report")
        with pytest.raises(XmlEncryptionError):
            field.decrypt(bank.identity, bank.private_key, backend)


class TestRejectionPath:
    def test_rejection_routes_to_notify(self, insurance_world, backend):
        definition = insurance_definition()
        responders = insurance_responders()

        def reject(context):
            return {"decision": "rejected"}

        responders["DECIDE"] = reject
        initial = build_initial_document(
            definition, insurance_world.keypair(DESIGNER),
            backend=backend,
        )
        runtime = InMemoryRuntime(insurance_world.directory,
                                  insurance_world.keypairs,
                                  backend=backend)
        trace = runtime.run(initial, definition, responders,
                            mode="basic")
        assert trace.steps[-1].activity_id == "NOTIFY"
        assert trace.final_document.execution_count("PAY") == 0


class TestAdvancedModel:
    def test_runs_through_tfc(self, insurance_world, backend):
        definition = insurance_definition()
        definition.policy.require_timestamps = True
        initial = build_initial_document(
            definition, insurance_world.keypair(DESIGNER),
            backend=backend,
        )
        tfc = TfcServer(insurance_world.keypair(TFC),
                        insurance_world.directory, backend=backend)
        runtime = InMemoryRuntime(insurance_world.directory,
                                  insurance_world.keypairs, tfc=tfc,
                                  backend=backend)
        trace = runtime.run(initial, definition, insurance_responders(),
                            mode="advanced")
        assert len(tfc.records) == 12
        verify_document(trace.final_document, insurance_world.directory,
                        backend, tfc_identities={tfc.identity})
