"""Hypothesis property tests on whole-document security invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.document import Dra4wfmsDocument, verify_document
from repro.document.nonrepudiation import (
    nonrepudiation_scope_ids,
    signs_relation,
)
from repro.errors import ReproError

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def doc_bytes(fig9a_trace):
    return fig9a_trace.final_document.to_bytes()


class TestTamperProperties:
    @_slow
    @given(data=st.data())
    def test_any_base64_payload_mutation_detected(self, doc_bytes, world,
                                                  backend, data):
        """Flipping any digit inside any base64 text node is detected.

        Covers ciphertexts, wrapped keys, digests and signature values
        uniformly: whatever an attacker flips, verification fails.
        """
        document = Dra4wfmsDocument.from_bytes(doc_bytes)
        nodes = [
            node for node in document.root.iter()
            if node.tag in ("CipherValue", "DigestValue", "SignatureValue")
            and node.text
        ]
        node = data.draw(st.sampled_from(nodes))
        position = data.draw(st.integers(0, max(len(node.text) - 5, 0)))
        original = node.text
        replacement = "A" if original[position] != "A" else "B"
        node.text = (original[:position] + replacement
                     + original[position + 1:])
        if node.text == original:  # pragma: no cover - safety
            return
        with pytest.raises(ReproError):
            verify_document(document, world.directory, backend)

    @_slow
    @given(data=st.data())
    def test_any_cer_attribute_mutation_detected(self, doc_bytes, world,
                                                 backend, data):
        """Editing CER metadata (activity, iteration, participant) fails."""
        document = Dra4wfmsDocument.from_bytes(doc_bytes)
        cers = document.results_section.findall("CER")
        cer = data.draw(st.sampled_from(cers))
        attribute = data.draw(st.sampled_from(
            ["Activity", "Iteration", "Participant"]))
        cer.set(attribute, {"Activity": "Z9", "Iteration": "42",
                            "Participant": "mallory@evil.example"}[attribute])
        with pytest.raises(ReproError):
            verify_document(document, world.directory, backend)

    @_slow
    @given(data=st.data())
    def test_removing_any_nonfinal_cer_detected(self, doc_bytes, world,
                                                backend, data):
        """Deleting any countersigned CER breaks the cascade."""
        document = Dra4wfmsDocument.from_bytes(doc_bytes)
        relation = signs_relation(document)
        countersigned = set()
        for signed in relation.values():
            countersigned |= signed
        victims = [
            node for node in document.results_section.findall("CER")
            if node.get("Id") in countersigned
        ]
        victim = data.draw(st.sampled_from(victims))
        document.results_section.remove(victim)
        with pytest.raises(ReproError):
            verify_document(document, world.directory, backend)


class TestScopeProperties:
    def test_scopes_form_a_lattice_under_union(self, fig9a_trace):
        """Scope of any CER equals {self} ∪ scopes of directly-signed CERs."""
        document = fig9a_trace.final_document
        relation = signs_relation(document)
        by_id = {c.cer_id: c for c in document.cers()}
        for cer in document.cers():
            expected = {cer.cer_id}
            for signed_id in relation[cer.cer_id]:
                expected |= nonrepudiation_scope_ids(document,
                                                     by_id[signed_id])
            assert nonrepudiation_scope_ids(document, cer) == expected

    def test_every_scope_contains_definition_except_definition(
            self, fig9a_trace):
        document = fig9a_trace.final_document
        for cer in document.cers(include_definition=False):
            assert "cer-def" in nonrepudiation_scope_ids(document, cer)


class TestSerializationProperties:
    @_slow
    @given(st.integers(0, 9))
    def test_reserialization_is_identity(self, doc_bytes, _round):
        document = Dra4wfmsDocument.from_bytes(doc_bytes)
        assert document.to_bytes() == doc_bytes

    def test_clone_preserves_bytes(self, fig9a_trace):
        document = fig9a_trace.final_document
        assert document.clone().to_bytes() == document.to_bytes()
