"""Delta routing equivalence: O(new CER) transfers, identical documents.

Delta routing changes only what crosses the wire — a manifest plus the
chunks the receiver has never seen — never what the receiver verifies.
These tests drive randomly shaped workflows (the same generator the
signature-cache fuzzer uses) through delta-routed runtimes and check,
at **every hop**:

* the materialized document passes a cold, trust-nothing verification;
* the trace shape matches a full-routing run of the same definition
  (same activities, same participants, same CER counts); and
* the wire accounting shows the win: revisiting participants receive
  a fraction of the document instead of all of it.
"""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.core.parallel import ThreadedRuntime
from repro.document import build_initial_document
from repro.document.verify import verify_document
from repro.workloads import build_world
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    diamond_definition,
    loop_definition,
    participant_pool,
    random_definition,
)

DESIGNER = "designer@enterprise.example"
TFC_IDENTITY = "tfc@cloud.example"
#: Small pool for revisit-heavy chains; the world enrolls the full
#: six-participant pool :func:`random_definition` draws from.
POOL = participant_pool(4)
RANDOM_SEEDS = range(10)


@pytest.fixture(scope="module")
def delta_world(backend):
    return build_world([DESIGNER, TFC_IDENTITY, *participant_pool(6)],
                       bits=1024, backend=backend)


def _run(delta_world, backend, definition, mode, *, delta_routing,
         runtime_cls=InMemoryRuntime, loop_iterations=1):
    initial = build_initial_document(
        definition, delta_world.keypair(DESIGNER), backend=backend
    )
    tfc = None
    if mode == "advanced":
        tfc = TfcServer(delta_world.keypair(TFC_IDENTITY),
                        delta_world.directory, backend=backend)
    runtime = runtime_cls(delta_world.directory, delta_world.keypairs,
                          tfc=tfc, backend=backend,
                          delta_routing=delta_routing)
    trace = runtime.run(
        initial, definition,
        auto_responders(definition, loop_iterations=loop_iterations),
        mode=mode,
    )
    return initial, trace, tfc


def assert_hops_cold_verify(initial, trace, delta_world, backend, tfc=None):
    """Every routed document must survive a trust-nothing verification
    — reassembly from chunks can never weaken what the verifier sees."""
    tfc_identities = {tfc.identity} if tfc is not None else None
    for document in [initial] + [s.document for s in trace.steps]:
        verify_document(document, delta_world.directory, backend,
                        tfc_identities=tfc_identities)


def assert_same_shape(delta_trace, full_trace):
    """Same definition, same responders → same executed path.  Documents
    differ only in signing timestamps, so compare structure, not bytes."""
    assert delta_trace.routing == "delta"
    assert full_trace.routing == "full"
    assert [(s.activity_id, s.participant, s.iteration)
            for s in delta_trace.steps] == \
        [(s.activity_id, s.participant, s.iteration)
         for s in full_trace.steps]
    for ours, theirs in zip(delta_trace.steps, full_trace.steps):
        assert len(ours.document.cers()) == len(theirs.document.cers())


class TestRandomTopologies:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_basic_model(self, delta_world, backend, seed):
        definition = random_definition(seed, blocks=3, designer=DESIGNER)
        initial, delta_trace, _ = _run(delta_world, backend, definition,
                                       "basic", delta_routing=True)
        _, full_trace, _ = _run(delta_world, backend, definition, "basic",
                                delta_routing=False)
        assert_same_shape(delta_trace, full_trace)
        assert_hops_cold_verify(initial, delta_trace, delta_world, backend)

    @pytest.mark.parametrize("seed", range(5))
    def test_advanced_model(self, delta_world, backend, seed):
        definition = random_definition(seed, blocks=2, designer=DESIGNER)
        initial, delta_trace, tfc = _run(delta_world, backend, definition,
                                         "advanced", delta_routing=True)
        _, full_trace, _ = _run(delta_world, backend, definition,
                                "advanced", delta_routing=False)
        assert_same_shape(delta_trace, full_trace)
        assert_hops_cold_verify(initial, delta_trace, delta_world, backend,
                                tfc=tfc)


class TestWireAccounting:
    def test_initial_delivery_is_full(self, delta_world, backend):
        definition = chain_definition(3, POOL, designer=DESIGNER)
        initial, trace, _ = _run(delta_world, backend, definition, "basic",
                                 delta_routing=True)
        # The first hop ships the whole initial document (the receiver
        # has no chunks yet); its wire cost reflects that.
        assert trace.steps[0].wire_bytes >= initial.size_bytes

    def test_revisits_ship_a_fraction(self, delta_world, backend):
        """A chain cycling 4 participants over 12 activities: from the
        second lap on, each receiver already holds most chunks."""
        definition = chain_definition(12, POOL, designer=DESIGNER)
        _, delta_trace, _ = _run(delta_world, backend, definition, "basic",
                                 delta_routing=True)
        _, full_trace, _ = _run(delta_world, backend, definition, "basic",
                                delta_routing=False)
        assert delta_trace.total_wire_bytes < \
            full_trace.total_wire_bytes * 0.6
        # A revisit catches up on the ~len(POOL) CERs appended since the
        # participant last held the document, independent of how big the
        # document has grown — so from the second revisit onward each
        # delivery is a shrinking fraction of the full document.
        for step in delta_trace.steps[2 * len(POOL):]:
            assert step.wire_bytes < step.document.size_bytes / 2

    def test_full_routing_charges_document_sizes(self, delta_world,
                                                 backend):
        definition = chain_definition(4, POOL, designer=DESIGNER)
        initial, trace, _ = _run(delta_world, backend, definition, "basic",
                                 delta_routing=False)
        sizes = [initial.size_bytes] + \
            [s.document.size_bytes for s in trace.steps[:-1]]
        assert [s.wire_bytes for s in trace.steps] == sizes

    def test_and_join_sums_branch_wire(self, delta_world, backend):
        definition = diamond_definition(3, POOL, designer=DESIGNER)
        _, trace, _ = _run(delta_world, backend, definition, "basic",
                           delta_routing=True)
        join_step = trace.steps[-1]
        branch_steps = trace.steps[1:-1]
        # The join consumed one delivery per branch; its wire cost is
        # the sum, so it exceeds any single branch delivery.
        assert join_step.wire_bytes > max(
            s.wire_bytes for s in branch_steps)
        assert trace.total_wire_bytes == \
            sum(s.wire_bytes for s in trace.steps)


class TestStructuredTopologies:
    @pytest.mark.parametrize("mode", ["basic", "advanced"])
    def test_loop(self, delta_world, backend, mode):
        definition = loop_definition(2, POOL, designer=DESIGNER)
        initial, trace, tfc = _run(delta_world, backend, definition, mode,
                                   delta_routing=True, loop_iterations=2)
        assert len({s.iteration for s in trace.steps}) > 1
        assert_hops_cold_verify(initial, trace, delta_world, backend,
                                tfc=tfc)

    @pytest.mark.parametrize("mode", ["basic", "advanced"])
    def test_diamond(self, delta_world, backend, mode):
        definition = diamond_definition(3, POOL, designer=DESIGNER)
        initial, trace, tfc = _run(delta_world, backend, definition, mode,
                                   delta_routing=True)
        assert_hops_cold_verify(initial, trace, delta_world, backend,
                                tfc=tfc)


class TestThreadedRuntime:
    def test_delta_threaded_matches_sequential_shape(self, delta_world,
                                                     backend):
        definition = diamond_definition(4, POOL, designer=DESIGNER)
        initial, threaded, _ = _run(delta_world, backend, definition,
                                    "basic", delta_routing=True,
                                    runtime_cls=ThreadedRuntime)
        _, sequential, _ = _run(delta_world, backend, definition, "basic",
                                delta_routing=True)
        assert threaded.routing == "delta"
        assert {(s.activity_id, s.participant) for s in threaded.steps} == \
            {(s.activity_id, s.participant) for s in sequential.steps}
        assert_hops_cold_verify(initial, threaded, delta_world, backend)
