"""Fixed-seed workflow fuzzing: incremental verification ≡ cold verification.

The central safety property of the shared signature cache is
*equivalence*: for any document a workflow can produce, at any hop, a
verification that reuses cached signature checks must return the exact
same report a cold (trust-nothing) verification returns.  This module
drives ~50 randomly shaped workflows — loops, AND-diamonds, XOR
choices, run-time amendments — through both operational models and
checks the equivalence at **every hop**, not just on the final
document.

Seeds are fixed so failures reproduce; the topologies come from
:func:`repro.workloads.generator.random_definition`, which composes
valid workflows by construction.
"""

from __future__ import annotations

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.document import build_initial_document
from repro.document.amendments import DelegateActivity, GrantReader
from repro.document.vcache import VerificationCache
from repro.document.verify import verify_document
from repro.workloads import build_world
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    diamond_definition,
    loop_definition,
    participant_pool,
    random_definition,
)

DESIGNER = "designer@enterprise.example"
TFC_IDENTITY = "tfc@cloud.example"
POOL = participant_pool(6)
RANDOM_SEEDS = range(20)


@pytest.fixture(scope="module")
def fuzz_world(backend):
    return build_world([DESIGNER, TFC_IDENTITY, *POOL], bits=1024,
                       backend=backend)


def _run(fuzz_world, backend, definition, mode, loop_iterations=1):
    """Execute *definition* and return (trace, tfc or None)."""
    initial = build_initial_document(
        definition, fuzz_world.keypair(DESIGNER), backend=backend
    )
    tfc = None
    if mode == "advanced":
        tfc = TfcServer(fuzz_world.keypair(TFC_IDENTITY),
                        fuzz_world.directory, backend=backend)
    runtime = InMemoryRuntime(fuzz_world.directory, fuzz_world.keypairs,
                              tfc=tfc, backend=backend)
    trace = runtime.run(
        initial, definition,
        auto_responders(definition, loop_iterations=loop_iterations),
        mode=mode,
    )
    return initial, trace, tfc


def assert_incremental_equals_cold(documents, fuzz_world, backend,
                                   tfc=None):
    """Verify each hop document cold and warm; reports must be equal.

    *documents* is the hop sequence (initial document, then one per
    executed step).  One shared cache carries across hops, exactly as a
    portal or AEA would hold it across a process instance.
    """
    cache = VerificationCache()
    tfc_identities = {tfc.identity} if tfc is not None else None
    total_hits = 0
    for hop, document in enumerate(documents):
        cold = verify_document(document, fuzz_world.directory, backend,
                               tfc_identities=tfc_identities)
        warm = verify_document(document, fuzz_world.directory, backend,
                               tfc_identities=tfc_identities, cache=cache)
        assert warm == cold, f"hop {hop}: warm report diverged from cold"
        assert warm.cache_hits + warm.cache_misses == \
            warm.signatures_verified
        if hop > 0:
            # The previous hop's cascade prefix must be reused.
            assert warm.cache_hits > 0, f"hop {hop}: no cache reuse"
        total_hits += warm.cache_hits
    assert total_hits > 0
    return cache


def hop_documents(initial, trace):
    return [initial] + [step.document for step in trace.steps]


class TestRandomTopologies:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_basic_model(self, fuzz_world, backend, seed):
        definition = random_definition(seed, blocks=3, designer=DESIGNER)
        initial, trace, _ = _run(fuzz_world, backend, definition, "basic")
        assert_incremental_equals_cold(hop_documents(initial, trace),
                                       fuzz_world, backend)

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_advanced_model(self, fuzz_world, backend, seed):
        definition = random_definition(seed, blocks=2, designer=DESIGNER)
        initial, trace, tfc = _run(fuzz_world, backend, definition,
                                   "advanced")
        assert_incremental_equals_cold(hop_documents(initial, trace),
                                       fuzz_world, backend, tfc=tfc)


class TestStructuredTopologies:
    @pytest.mark.parametrize("mode", ["basic", "advanced"])
    def test_loop(self, fuzz_world, backend, mode):
        definition = loop_definition(2, POOL, designer=DESIGNER)
        initial, trace, tfc = _run(fuzz_world, backend, definition, mode,
                                   loop_iterations=2)
        # Loops revisit activities: iterations must key separately.
        iterations = {s.iteration for s in trace.steps}
        assert len(iterations) > 1
        assert_incremental_equals_cold(hop_documents(initial, trace),
                                       fuzz_world, backend, tfc=tfc)

    @pytest.mark.parametrize("mode", ["basic", "advanced"])
    def test_diamond(self, fuzz_world, backend, mode):
        definition = diamond_definition(3, POOL, designer=DESIGNER)
        initial, trace, tfc = _run(fuzz_world, backend, definition, mode)
        assert_incremental_equals_cold(hop_documents(initial, trace),
                                       fuzz_world, backend, tfc=tfc)

    @pytest.mark.parametrize("mode", ["basic", "advanced"])
    def test_chain(self, fuzz_world, backend, mode):
        definition = chain_definition(6, POOL, designer=DESIGNER)
        initial, trace, tfc = _run(fuzz_world, backend, definition, mode)
        assert_incremental_equals_cold(hop_documents(initial, trace),
                                       fuzz_world, backend, tfc=tfc)


class TestAmendedWorkflows:
    """Run-time amendments append CERs mid-history; the cache must
    treat the amended document exactly like the cold verifier does."""

    def _amend(self, fuzz_world, backend, document, amendment):
        from repro.core.aea import ActivityExecutionAgent

        designer_agent = ActivityExecutionAgent(
            fuzz_world.keypair(DESIGNER), fuzz_world.directory, backend
        )
        return designer_agent.amend(document, amendment)

    @pytest.mark.parametrize("index", range(2))
    def test_grant_reader(self, fuzz_world, backend, index):
        definition = chain_definition(4, POOL, designer=DESIGNER)
        initial, trace, _ = _run(fuzz_world, backend, definition, "basic")
        amended = self._amend(
            fuzz_world, backend, trace.final_document,
            GrantReader(activity_id=f"A{index + 1}",
                        fieldname=f"v{index + 1}",
                        reader=POOL[5],
                        reason="fuzz: post-hoc audit grant"),
        )
        documents = hop_documents(initial, trace) + [amended]
        assert_incremental_equals_cold(documents, fuzz_world, backend)

    def test_delegation(self, fuzz_world, backend):
        definition = chain_definition(4, POOL, designer=DESIGNER)
        initial, trace, _ = _run(fuzz_world, backend, definition, "basic")
        amended = self._amend(
            fuzz_world, backend, trace.final_document,
            DelegateActivity(activity_id="A3", new_participant=POOL[4],
                             reason="fuzz: reassignment"),
        )
        documents = hop_documents(initial, trace) + [amended]
        assert_incremental_equals_cold(documents, fuzz_world, backend)

    def test_stacked_amendments(self, fuzz_world, backend):
        definition = diamond_definition(2, POOL, designer=DESIGNER)
        initial, trace, _ = _run(fuzz_world, backend, definition, "basic")
        once = self._amend(
            fuzz_world, backend, trace.final_document,
            GrantReader(activity_id="S", fieldname="subject",
                        reader=POOL[4], reason="fuzz: first grant"),
        )
        twice = self._amend(
            fuzz_world, backend, once,
            GrantReader(activity_id="J", fieldname="verdict",
                        reader=POOL[5], reason="fuzz: second grant"),
        )
        documents = hop_documents(initial, trace) + [once, twice]
        assert_incremental_equals_cold(documents, fuzz_world, backend)


class TestSharedCacheAcrossInstances:
    def test_one_cache_many_instances(self, fuzz_world, backend):
        """A portal-style cache serving several process instances at
        once never confuses them: every instance's report still equals
        its cold report."""
        cache = VerificationCache()
        definition = chain_definition(4, POOL, designer=DESIGNER)
        for _ in range(3):
            initial, trace, _ = _run(fuzz_world, backend, definition,
                                     "basic")
            for document in hop_documents(initial, trace):
                cold = verify_document(document, fuzz_world.directory,
                                       backend)
                warm = verify_document(document, fuzz_world.directory,
                                       backend, cache=cache)
                assert warm == cold
