"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.workloads.participants import World


@pytest.fixture(scope="module")
def demo_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("dra-demo")
    assert main(["demo", "--out", str(out), "--loops", "0"]) == 0
    return out


class TestDemo:
    def test_artifacts_written(self, demo_dir):
        assert (demo_dir / "world.json").exists()
        assert (demo_dir / "initial_document.xml").exists()
        assert (demo_dir / "final_document.xml").exists()

    def test_world_roundtrips(self, demo_dir):
        data = json.loads((demo_dir / "world.json").read_text())
        world = World.from_dict(data)
        assert "designer@acme.example" in world.keypairs
        world.directory.public_key_of("designer@acme.example")

    def test_restored_world_can_enroll_more(self, demo_dir, backend):
        data = json.loads((demo_dir / "world.json").read_text())
        world = World.from_dict(data, backend=backend)
        world.add_participant("newcomer@acme.example")
        world.directory.public_key_of("newcomer@acme.example")


class TestInspect:
    def test_inspect(self, demo_dir, capsys):
        assert main(["inspect",
                     str(demo_dir / "final_document.xml")]) == 0
        out = capsys.readouterr().out
        assert "figure-9a" in out
        assert "cer-D-0" in out

    def test_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/doc.xml"]) == 2


class TestVerify:
    def test_valid(self, demo_dir, capsys):
        code = main(["verify", "--world", str(demo_dir / "world.json"),
                     str(demo_dir / "final_document.xml")])
        assert code == 0
        assert "VALID" in capsys.readouterr().out

    def test_tampered(self, demo_dir, tmp_path, capsys):
        data = (demo_dir / "final_document.xml").read_bytes()
        corrupt = data.replace(b"<CipherValue>", b"<CipherValue>QUJD", 1)
        bad = tmp_path / "tampered.xml"
        bad.write_bytes(corrupt)
        code = main(["verify", "--world", str(demo_dir / "world.json"),
                     str(bad)])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out


class TestTrailScopeEvidence:
    def test_trail(self, demo_dir, capsys):
        assert main(["trail", str(demo_dir / "final_document.xml")]) == 0
        out = capsys.readouterr().out
        assert "[execution] activity 'A'" in out

    def test_scope(self, demo_dir, capsys):
        assert main(["scope", str(demo_dir / "final_document.xml"),
                     "--activity", "C"]) == 0
        out = capsys.readouterr().out
        assert "cer-B1-0" in out and "cer-B2-0" in out

    def test_scope_missing_cer(self, demo_dir, capsys):
        assert main(["scope", str(demo_dir / "final_document.xml"),
                     "--activity", "C", "--iteration", "9"]) == 1

    def test_evidence(self, demo_dir, capsys):
        code = main(["evidence", "--world",
                     str(demo_dir / "world.json"),
                     "--activity", "D",
                     str(demo_dir / "final_document.xml")])
        assert code == 0
        out = capsys.readouterr().out
        assert "BOUND" in out
        assert "approver@megacorp.example" in out


class TestRender:
    def test_ascii(self, demo_dir, capsys):
        assert main(["render",
                     str(demo_dir / "final_document.xml")]) == 0
        out = capsys.readouterr().out
        assert "A: submitter@acme.example" in out

    def test_dot(self, demo_dir, capsys):
        assert main(["render", "--format", "dot",
                     str(demo_dir / "final_document.xml")]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"A" -> "B1"' in out


class TestPublicTrust:
    def test_trust_file_written(self, demo_dir):
        data = json.loads((demo_dir / "trust.json").read_text())
        assert "public_key" in data["authorities"][0]
        # No private material anywhere in the trust file.
        assert '"d"' not in (demo_dir / "trust.json").read_text()
        assert "keypairs" not in data

    def test_auditor_verifies_with_public_trust_only(self, demo_dir,
                                                     capsys):
        code = main(["verify", "--world", str(demo_dir / "trust.json"),
                     str(demo_dir / "final_document.xml")])
        assert code == 0
        assert "VALID" in capsys.readouterr().out

    def test_public_world_cannot_issue(self, demo_dir):
        from repro.errors import CertificateError

        data = json.loads((demo_dir / "trust.json").read_text())
        world = World.from_public_dict(data)
        assert world.keypairs == {}
        ca = next(iter(world.authorities.values()))
        assert ca.verification_only
        with pytest.raises(CertificateError, match="verification-only"):
            ca.issue("mallory@evil", ca.public_key)

    def test_evidence_with_public_trust(self, demo_dir, capsys):
        code = main(["evidence", "--world",
                     str(demo_dir / "trust.json"),
                     "--activity", "D",
                     str(demo_dir / "final_document.xml")])
        assert code == 0
        assert "BOUND" in capsys.readouterr().out


class TestLoadtest:
    def test_open_loop_report(self, capsys):
        code = main(["loadtest", "--instances", "6", "--seed", "7",
                     "--workflow", "chain:3", "--rate", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet run: chain:3 [open loop, seed 7]" in out
        assert "instances : 6/6 completed" in out
        assert "0 failures" in out

    def test_closed_loop_json(self, capsys):
        code = main(["loadtest", "--instances", "6", "--mode", "closed",
                     "--concurrency", "2", "--workflow", "chain:2",
                     "--audit-every", "3", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "closed"
        assert report["instances_completed"] == 6
        assert report["instances_audited"] == 2
        assert report["audit_failures"] == 0
        assert set(report["stations"]) >= {"portal", "pool", "tfc",
                                           "notify"}

    def test_unknown_workflow_spec(self, capsys):
        assert main(["loadtest", "--workflow", "mesh:2"]) == 2
        assert "error" in capsys.readouterr().err


class TestCliErrorPaths:
    def test_render_encrypted_definition_fails_closed(self, tmp_path,
                                                      world, fig9a,
                                                      backend, capsys):
        from repro.document import build_initial_document
        from repro.workloads.figure9 import DESIGNER

        document = build_initial_document(
            fig9a, world.keypair(DESIGNER),
            encrypt_definition_for={
                DESIGNER: world.directory.public_key_of(DESIGNER),
            },
            backend=backend,
        )
        path = tmp_path / "enc.xml"
        path.write_bytes(document.to_bytes())
        assert main(["render", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_verify_against_wrong_world(self, demo_dir, tmp_path,
                                        capsys, backend):
        import json as _json

        from repro.workloads import build_world

        stranger = build_world(["nobody@elsewhere.example"],
                               bits=1024, backend=backend)
        wrong = tmp_path / "wrong-world.json"
        wrong.write_text(_json.dumps(stranger.to_dict()))
        code = main(["verify", "--world", str(wrong),
                     str(demo_dir / "final_document.xml")])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out
