"""Baseline 2: the engine-based distributed WfMS (paper Fig. 1B).

Multiple workflow engines, each with its own database, execute a shared
process: activities are assigned to engines, and the process instance
**migrates** between them over a public network.  This reproduces the
paper's working model and its three weaknesses:

* **transit exposure** — migrating instances can be eavesdropped or
  altered unless the channel is SSL-protected (``use_ssl``);
* **per-engine superusers** — "the overall security is insufficient if
  the security mechanism is broken in any one of the servers";
* **coherence/ownership** — only one engine may own an instance at a
  time; the single-owner token protocol is implemented and its
  violation raised as an error (the scalability bottleneck of §1).
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import AuthorizationError, RuntimeFault, StorageError
from ..model.controlflow import JoinKind
from ..model.definition import WorkflowDefinition
from .database import EngineDatabase, Superuser

__all__ = ["MigrationEvent", "WorkflowEngine", "DistributedWfms"]

#: Hook observing/altering instance payloads in transit (the attacker).
TransitHook = Callable[[str, str, dict], dict]


@dataclass
class MigrationEvent:
    """One instance migration between engines."""

    source: str
    target: str
    process_id: str
    nbytes: int
    protected: bool


@dataclass
class WorkflowEngine:
    """One engine: a database plus the instances it currently owns."""

    engine_id: str
    database: EngineDatabase = None  # type: ignore[assignment]
    owned: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = EngineDatabase(f"db-{self.engine_id}")
            self.database.create_table("instances")

    def store_instance(self, process_id: str, state: dict) -> None:
        """Persist an owned instance's state."""
        payload = json.dumps(state, sort_keys=True)
        rows = self.database.tables["instances"]
        if process_id in rows:
            self.database.update("instances", process_id,
                                 {"state": payload})
        else:
            self.database.insert("instances", process_id,
                                 {"state": payload})

    def load_instance(self, process_id: str) -> dict:
        """Fetch an owned instance's state."""
        row = self.database.get("instances", process_id)
        return json.loads(row["state"])

    def superuser(self) -> Superuser:
        """This engine's database administrator."""
        return self.database.superuser()


class DistributedWfms:
    """A set of engines executing one workflow cooperatively."""

    def __init__(self, definition: WorkflowDefinition,
                 engines: int = 3, use_ssl: bool = True) -> None:
        if engines < 1:
            raise RuntimeFault("need at least one engine")
        self.definition = definition
        self.use_ssl = use_ssl
        self.engines = [WorkflowEngine(f"engine{i}") for i in range(engines)]
        self._assignment: dict[str, WorkflowEngine] = {}
        for index, activity_id in enumerate(definition.activities):
            self._assignment[activity_id] = self.engines[index % engines]
        self._ids = itertools.count(1)
        self.migrations: list[MigrationEvent] = []
        #: Everything an eavesdropper on the public network captured.
        self.wire_captures: list[dict] = []
        self._transit_hook: TransitHook | None = None

    # -- attacker surface ---------------------------------------------------------

    def install_transit_hook(self, hook: TransitHook) -> None:
        """Install a man-in-the-middle on the inter-engine network."""
        self._transit_hook = hook

    def engine_for(self, activity_id: str) -> WorkflowEngine:
        """Which engine hosts an activity."""
        return self._assignment[activity_id]

    # -- migration ---------------------------------------------------------------------

    def _migrate(self, process_id: str, source: WorkflowEngine,
                 target: WorkflowEngine) -> None:
        if source is target:
            return
        if process_id not in source.owned:
            raise StorageError(
                f"coherence violation: {source.engine_id} does not own "
                f"{process_id!r}"
            )
        state = source.load_instance(process_id)
        payload = dict(state)
        nbytes = len(json.dumps(payload))
        if not self.use_ssl:
            # Plaintext on the public network: observable and mutable.
            self.wire_captures.append(
                {"from": source.engine_id, "to": target.engine_id,
                 "state": json.loads(json.dumps(payload))}
            )
            if self._transit_hook is not None:
                payload = self._transit_hook(
                    source.engine_id, target.engine_id, payload
                )
        self.migrations.append(MigrationEvent(
            source=source.engine_id,
            target=target.engine_id,
            process_id=process_id,
            nbytes=nbytes,
            protected=self.use_ssl,
        ))
        source.owned.discard(process_id)
        target.owned.add(process_id)
        target.store_instance(process_id, payload)

    # -- execution ----------------------------------------------------------------------

    def run(self, responders: Mapping[str, object],
            max_steps: int = 10_000,
            ) -> tuple[str, list[MigrationEvent]]:
        """Run one process across the engine fleet."""
        from ..core.aea import ActivityContext

        process_id = f"dproc-{next(self._ids)}"
        first_engine = self.engine_for(self.definition.start_activity)
        first_engine.owned.add(process_id)
        first_engine.store_instance(process_id, {"variables": {},
                                                 "counts": {}})
        current = first_engine

        queue: deque[str] = deque([self.definition.start_activity])
        joins: dict[str, int] = {}
        steps = 0
        migrations_before = len(self.migrations)

        while queue:
            if steps >= max_steps:
                raise RuntimeFault("distributed engine exceeded step budget")
            activity_id = queue.popleft()
            activity = self.definition.activity(activity_id)
            if activity.join is JoinKind.AND:
                arity = len(self.definition.incoming(activity_id))
                joins[activity_id] = joins.get(activity_id, 0) + 1
                if joins[activity_id] < arity:
                    continue
                joins[activity_id] = 0

            target = self.engine_for(activity_id)
            self._migrate(process_id, current, target)
            current = target

            state = current.load_instance(process_id)
            variables: dict[str, str] = state["variables"]
            counts: dict[str, int] = state["counts"]
            iteration = counts.get(activity_id, 0)
            counts[activity_id] = iteration + 1

            responder = responders[activity_id]
            context = ActivityContext(
                activity_id=activity_id,
                iteration=iteration,
                participant=activity.participant,
                requests={k: variables[k] for k in activity.requests
                          if k in variables},
                expected_responses={s.name: s.ftype
                                    for s in activity.responses},
                definition=self.definition,
                process_id=process_id,
            )
            values = (responder(context) if callable(responder)
                      else dict(responder))
            variables.update(values)
            current.store_instance(process_id, state)
            steps += 1

            typed = self._typed(variables)
            for nxt in self.definition.successors(activity_id, typed):
                queue.append(nxt)

        return process_id, self.migrations[migrations_before:]

    def _typed(self, variables: dict[str, str]) -> dict[str, object]:
        types = {
            spec.name: spec.ftype
            for activity in self.definition.activities.values()
            for spec in activity.responses
        }
        out: dict[str, object] = {}
        for name, text in variables.items():
            ftype = types.get(name, "string")
            if ftype == "int":
                out[name] = int(text)
            elif ftype == "float":
                out[name] = float(text)
            elif ftype == "bool":
                out[name] = str(text).lower() in ("1", "true", "yes")
            else:
                out[name] = text
        return out

    # -- the security gap ------------------------------------------------------------------

    def can_prove_result(self, process_id: str, activity_id: str) -> bool:
        """Engines hold no cryptographic evidence either."""
        return False

    def detect_tampering(self, process_id: str) -> bool:
        """In-transit (without SSL) and at-rest edits leave no trace."""
        return False

    def stored_variables(self, process_id: str) -> dict[str, str]:
        """The owning engine's view of the instance variables."""
        for engine in self.engines:
            if process_id in engine.owned:
                return dict(engine.load_instance(process_id)["variables"])
        raise StorageError(f"no engine owns {process_id!r}")
