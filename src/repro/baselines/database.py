"""A toy relational store with a superuser — the baselines' Achilles heel.

Paper §1: "superusers exist in the administration domain of WfMSs …
the administrator of a relational database always has the privilege to
update the contents and logs in the database.  It is obvious that the
central WfMS also cannot guarantee the nonrepudiation requirement."

Regular operations append to an audit log.  The superuser interface can
rewrite rows **and** rewrite the log, leaving no trace — which is
exactly what makes repudiation claims undecidable for engine-based
systems and what the attack harness demonstrates.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from ..errors import StorageError

__all__ = ["AuditEntry", "EngineDatabase", "Superuser"]


@dataclass(frozen=True)
class AuditEntry:
    """One audit-log line."""

    sequence: int
    timestamp: float
    operation: str
    table: str
    row_id: str
    detail: str


@dataclass
class EngineDatabase:
    """Tables of rows plus an (alterable) audit log."""

    name: str
    tables: dict[str, dict[str, dict[str, str]]] = field(default_factory=dict)
    audit_log: list[AuditEntry] = field(default_factory=list)
    _sequence: itertools.count = field(default_factory=lambda: itertools.count(1))

    def create_table(self, table: str) -> None:
        """Create an empty table."""
        if table in self.tables:
            raise StorageError(f"table {table!r} already exists")
        self.tables[table] = {}

    def _log(self, operation: str, table: str, row_id: str,
             detail: str) -> None:
        self.audit_log.append(AuditEntry(
            sequence=next(self._sequence),
            timestamp=time.time(),
            operation=operation,
            table=table,
            row_id=row_id,
            detail=detail,
        ))

    def insert(self, table: str, row_id: str, row: dict[str, str]) -> None:
        """Insert a row (audited)."""
        rows = self._rows(table)
        if row_id in rows:
            raise StorageError(f"duplicate row {row_id!r} in {table!r}")
        rows[row_id] = dict(row)
        self._log("insert", table, row_id, f"columns={sorted(row)}")

    def update(self, table: str, row_id: str, changes: dict[str, str]) -> None:
        """Update columns of a row (audited)."""
        row = self.get(table, row_id)
        row.update(changes)
        self._log("update", table, row_id, f"columns={sorted(changes)}")

    def get(self, table: str, row_id: str) -> dict[str, str]:
        """Fetch a row by id."""
        rows = self._rows(table)
        row = rows.get(row_id)
        if row is None:
            raise StorageError(f"no row {row_id!r} in {table!r}")
        return row

    def select(self, table: str) -> dict[str, dict[str, str]]:
        """All rows of a table."""
        return dict(self._rows(table))

    def _rows(self, table: str) -> dict[str, dict[str, str]]:
        rows = self.tables.get(table)
        if rows is None:
            raise StorageError(f"no such table {table!r}")
        return rows

    def superuser(self) -> "Superuser":
        """The administrator handle — unrestricted, unaudited access."""
        return Superuser(self)


@dataclass
class Superuser:
    """Administrator powers: silent edits, log rewriting.

    Nothing here is an "exploit" — it is the *legitimate* capability
    every DBA has, which is precisely the paper's trust-model argument.
    """

    database: EngineDatabase

    def silent_update(self, table: str, row_id: str,
                      changes: dict[str, str]) -> None:
        """Change row contents without touching the audit log."""
        row = self.database.get(table, row_id)
        row.update(changes)

    def rewrite_log(self, drop_row_id: str | None = None) -> int:
        """Erase audit entries (optionally only those about one row).

        Returns the number of removed entries.
        """
        before = len(self.database.audit_log)
        if drop_row_id is None:
            self.database.audit_log.clear()
        else:
            self.database.audit_log = [
                entry for entry in self.database.audit_log
                if entry.row_id != drop_row_id
            ]
        return before - len(self.database.audit_log)

    def forge_log_entry(self, operation: str, table: str, row_id: str,
                        detail: str) -> None:
        """Insert a fabricated audit line."""
        self.database._log(operation, table, row_id, detail)
