"""Baseline 1: the centralized engine-based WfMS (paper Fig. 1A).

A single workflow engine executes every process: participants connect
client/server-style, the engine shows them the relevant data, stores
their results in its relational database, and evaluates the control
flow.  Transport may be SSL-protected (confidentiality + integrity *in
transit*), but the stored process instance is protected only by the
server — and the server has a superuser.

The two security findings the paper derives for this architecture are
reproduced as observable behaviours:

* :meth:`CentralizedWfms.can_prove_result` is always ``False`` — there
  is no cryptographic evidence binding a participant to a stored
  result, so a repudiation claim ("that is not what I submitted / what
  I was shown") cannot be decided;
* the :class:`~repro.baselines.database.Superuser` can alter results
  and erase the traces, and :meth:`detect_tampering` has nothing to
  detect it with.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import AuthorizationError, RuntimeFault
from ..model.controlflow import JoinKind
from ..model.definition import WorkflowDefinition
from .database import EngineDatabase, Superuser

__all__ = ["EngineStepTrace", "CentralizedWfms"]

_INSTANCES = "process_instances"
_RESULTS = "activity_results"


@dataclass
class EngineStepTrace:
    """Timing of one engine-mediated activity execution."""

    activity_id: str
    iteration: int
    participant: str
    engine_seconds: float
    transport_bytes: int


@dataclass
class CentralizedWfms:
    """A single-engine WfMS over one database."""

    definition: WorkflowDefinition
    use_ssl: bool = True
    database: EngineDatabase = field(default_factory=lambda: EngineDatabase("engine-db"))
    _ids: itertools.count = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        for table in (_INSTANCES, _RESULTS):
            if table not in self.database.tables:
                self.database.create_table(table)

    # -- engine operations ---------------------------------------------------

    def start_process(self) -> str:
        """Create a new process instance; returns its id."""
        process_id = f"proc-{next(self._ids)}"
        self.database.insert(_INSTANCES, process_id, {
            "state": "running",
            "definition": self.definition.process_name,
        })
        return process_id

    @staticmethod
    def _result_row_id(process_id: str, activity_id: str,
                       iteration: int) -> str:
        return f"{process_id}/{activity_id}/{iteration}"

    def execute(self, process_id: str, activity_id: str, participant: str,
                values: Mapping[str, str], iteration: int = 0,
                ) -> EngineStepTrace:
        """A participant executes an activity through the engine."""
        start = time.perf_counter()
        activity = self.definition.activity(activity_id)
        if activity.participant != participant:
            raise AuthorizationError(
                f"{participant!r} is not the designated participant of "
                f"{activity_id!r}"
            )
        payload = json.dumps(dict(values), sort_keys=True)
        self.database.insert(
            _RESULTS,
            self._result_row_id(process_id, activity_id, iteration),
            {"participant": participant, "values": payload,
             "stored_at": repr(time.time())},
        )
        return EngineStepTrace(
            activity_id=activity_id,
            iteration=iteration,
            participant=participant,
            engine_seconds=time.perf_counter() - start,
            transport_bytes=len(payload),
        )

    def stored_result(self, process_id: str, activity_id: str,
                      iteration: int = 0) -> dict[str, str]:
        """The engine's authoritative copy of an execution result."""
        row = self.database.get(
            _RESULTS, self._result_row_id(process_id, activity_id, iteration)
        )
        return json.loads(row["values"])

    def variables_of(self, process_id: str) -> dict[str, str]:
        """All stored variables (the engine sees everything, plaintext)."""
        variables: dict[str, str] = {}
        for row_id, row in sorted(self.database.select(_RESULTS).items()):
            if row_id.startswith(f"{process_id}/"):
                variables.update(json.loads(row["values"]))
        return variables

    def run(self, responders: Mapping[str, Mapping[str, str] | object],
            max_steps: int = 10_000) -> tuple[str, list[EngineStepTrace]]:
        """Run one complete process through the engine."""
        from ..core.aea import ActivityContext  # lightweight reuse

        process_id = self.start_process()
        counts: dict[str, int] = {}
        queue: deque[str] = deque([self.definition.start_activity])
        joins: dict[str, int] = {}
        steps: list[EngineStepTrace] = []
        typed_cache: dict[str, object] = {}

        while queue:
            if len(steps) >= max_steps:
                raise RuntimeFault("engine exceeded step budget")
            activity_id = queue.popleft()
            activity = self.definition.activity(activity_id)
            if activity.join is JoinKind.AND:
                arity = len(self.definition.incoming(activity_id))
                joins[activity_id] = joins.get(activity_id, 0) + 1
                if joins[activity_id] < arity:
                    continue
                joins[activity_id] = 0

            iteration = counts.get(activity_id, 0)
            counts[activity_id] = iteration + 1
            responder = responders[activity_id]
            variables = self.variables_of(process_id)
            context = ActivityContext(
                activity_id=activity_id,
                iteration=iteration,
                participant=activity.participant,
                requests={k: variables[k] for k in activity.requests
                          if k in variables},
                expected_responses={s.name: s.ftype
                                    for s in activity.responses},
                definition=self.definition,
                process_id=process_id,
            )
            values = (responder(context) if callable(responder)
                      else dict(responder))
            steps.append(self.execute(
                process_id, activity_id, activity.participant, values,
                iteration,
            ))
            typed = self._typed(self.variables_of(process_id))
            typed_cache.update(typed)
            for nxt in self.definition.successors(activity_id, typed):
                queue.append(nxt)
        self.database.update(_INSTANCES, process_id, {"state": "finished"})
        return process_id, steps

    def _typed(self, variables: dict[str, str]) -> dict[str, object]:
        types = {
            spec.name: spec.ftype
            for activity in self.definition.activities.values()
            for spec in activity.responses
        }
        out: dict[str, object] = {}
        for name, text in variables.items():
            ftype = types.get(name, "string")
            if ftype == "int":
                out[name] = int(text)
            elif ftype == "float":
                out[name] = float(text)
            elif ftype == "bool":
                out[name] = text.lower() in ("1", "true", "yes")
            else:
                out[name] = text
        return out

    # -- the security gap, made explicit -----------------------------------------

    def superuser(self) -> Superuser:
        """The administrator of the engine's database."""
        return self.database.superuser()

    def can_prove_result(self, process_id: str, activity_id: str,
                         iteration: int = 0) -> bool:
        """Can the system *prove* who produced the stored result?

        Always ``False``: the stored row carries no digital signature,
        so the participant can repudiate it and the engine cannot rebut.
        """
        return False

    def detect_tampering(self, process_id: str) -> bool:
        """Did the system detect any alteration of stored results?

        Always ``False``: without per-result cryptographic evidence the
        engine cannot distinguish a superuser edit from the original.
        """
        return False
