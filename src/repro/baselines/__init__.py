"""Engine-based baseline WfMSs (the systems the paper argues against).

Both baselines execute the same workflow definitions as DRA4WfMS, so
the security attack harness (:mod:`repro.security`) and the comparison
benches can run identical workloads across all three architectures.
"""

from .centralized import CentralizedWfms, EngineStepTrace
from .database import AuditEntry, EngineDatabase, Superuser
from .distributed import DistributedWfms, MigrationEvent, WorkflowEngine

__all__ = [
    "AuditEntry",
    "CentralizedWfms",
    "DistributedWfms",
    "EngineDatabase",
    "EngineStepTrace",
    "MigrationEvent",
    "Superuser",
    "WorkflowEngine",
]
