"""Parallel execution of independent workflow branches.

The document-routing architecture is embarrassingly parallel across
AND-split branches: each branch owns an independent copy of the
document, and the branches only meet again at the join, where the CER
sets are unioned.  :class:`ThreadedRuntime` exploits that: every round
it executes all currently-ready deliveries concurrently in a thread
pool (the RSA work underneath releases the GIL in the OpenSSL-backed
fast backend), then routes, buffers AND-joins, and repeats.

Semantics are identical to :class:`~repro.core.runtime.InMemoryRuntime`
— same traces, same final documents modulo nondeterministic branch
interleaving in the CER order of merged sections — and the test suite
checks both runtimes produce verifiable, equivalent results.

In advanced mode the TFC finalisation stays sequential (it is one
logical server with an ordered record log); only the AEA work fans out.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping

from ..document.document import Dra4wfmsDocument
from ..errors import RuntimeFault
from ..model.controlflow import JoinKind
from ..model.definition import WorkflowDefinition
from .aea import Responder
from .runtime import ExecutionTrace, InMemoryRuntime, StepTrace, _Delivery

__all__ = ["ThreadedRuntime"]


@dataclass
class _Ready:
    activity_id: str
    document: Dra4wfmsDocument
    merge_with: list[Dra4wfmsDocument]
    wire_bytes: int


class ThreadedRuntime(InMemoryRuntime):
    """Runs independent branches on a thread pool.

    Parameters
    ----------
    max_workers:
        Thread-pool width; defaults to 8 (plenty for the branch widths
        real processes exhibit).
    """

    def __init__(self, *args, max_workers: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_workers = max_workers

    def run(self,
            initial_document: Dra4wfmsDocument,
            definition: WorkflowDefinition,
            responders: Mapping[str, Responder | Mapping[str, str]],
            mode: str = "basic",
            max_steps: int = 10_000) -> ExecutionTrace:
        """Execute the whole process, fanning out ready branches."""
        if mode == "advanced" and self.tfc is None:
            raise RuntimeFault("advanced mode requires a TFC server")

        trace = ExecutionTrace(
            process_id=initial_document.process_id,
            mode=mode,
            initial_size=initial_document.size_bytes,
            routing="delta" if self.delta_routing else "full",
        )
        # Packaged like every later hop, so delta mode primes the start
        # participant's chunk cache (see ProcessExecution.__init__).
        pending: list[_Delivery] = [
            self.package(definition, definition.start_activity,
                         initial_document)
        ]
        join_buffers: dict[str, list[tuple[Dra4wfmsDocument, int]]] = {}
        step = 0

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            while pending:
                # Partition this wave into executable work, buffering
                # AND-join arrivals until all branches are present.
                # Deltas are decoded here, sequentially, against the
                # receiving agent's chunk cache — the expensive crypto
                # below still fans out.
                batch: list[_Ready] = []
                for delivery in pending:
                    activity_id = delivery.activity_id
                    activity = definition.activity(activity_id)
                    agent = self.agent_for(activity.participant)
                    document = agent._materialize(delivery.payload)
                    if activity.join is JoinKind.AND:
                        arity = len(definition.incoming(activity_id))
                        buffer = join_buffers.setdefault(activity_id, [])
                        buffer.append((document, delivery.wire_bytes))
                        if len(buffer) < arity:
                            continue
                        join_buffers[activity_id] = []
                        batch.append(_Ready(
                            activity_id, buffer[0][0],
                            [doc for doc, _ in buffer[1:]],
                            sum(wire for _, wire in buffer),
                        ))
                    else:
                        batch.append(_Ready(activity_id, document, [],
                                            delivery.wire_bytes))
                pending = []
                if not batch:
                    break
                if step + len(batch) > max_steps:
                    raise RuntimeFault(
                        f"process exceeded {max_steps} steps "
                        f"(runaway loop?)"
                    )

                def execute(item: _Ready):
                    activity = definition.activity(item.activity_id)
                    responder = responders.get(item.activity_id)
                    if responder is None:
                        raise RuntimeFault(
                            f"no responder registered for activity "
                            f"{item.activity_id!r}"
                        )
                    agent = self.agent_for(activity.participant)
                    if mode == "basic":
                        return agent.execute_activity(
                            item.document, item.activity_id, responder,
                            mode="basic", merge_with=item.merge_with,
                        )
                    return agent.execute_activity(
                        item.document, item.activity_id, responder,
                        mode="advanced",
                        tfc_identity=self.tfc.identity,
                        tfc_public_key=self.tfc.public_key,
                        merge_with=item.merge_with,
                    )

                results = list(pool.map(execute, batch))

                # Routing + trace bookkeeping stays sequential (and for
                # advanced mode, so does the TFC — one logical notary).
                for item, result in zip(batch, results):
                    intermediate_size = None
                    if mode == "basic":
                        routing = result.routing
                        document = result.document
                        gamma = None
                        alpha = result.timings.verify_seconds
                    else:
                        intermediate_size = result.document.size_bytes
                        tfc_result = self.tfc.process(result.document)
                        routing = tfc_result.routing
                        document = tfc_result.document
                        gamma = tfc_result.sign_seconds
                        alpha = (result.timings.verify_seconds
                                 + tfc_result.verify_seconds)
                    step += 1
                    activity = definition.activity(item.activity_id)
                    trace.steps.append(StepTrace(
                        step=step,
                        label=f"X''_{result.activity_id}"
                              f"^{result.iteration}",
                        activity_id=result.activity_id,
                        iteration=result.iteration,
                        participant=activity.participant,
                        alpha=alpha,
                        beta=result.timings.sign_seconds,
                        gamma=gamma,
                        size_bytes=document.size_bytes,
                        signatures_verified=(
                            result.timings.signatures_verified),
                        num_cers=len(
                            document.cers(include_definition=False)),
                        mode=mode,
                        wire_bytes=item.wire_bytes,
                        intermediate_size_bytes=intermediate_size,
                        document=document,
                    ))
                    trace.final_document = document
                    for next_activity in routing.next_activities:
                        pending.append(self.package(
                            definition, next_activity, document))

        leftover = {
            aid: len(docs) for aid, docs in join_buffers.items() if docs
        }
        if leftover:
            raise RuntimeFault(
                f"process ended with unsatisfied AND-joins: {leftover}"
            )
        return trace
