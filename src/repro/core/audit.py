"""Offline auditing and dispute evidence extraction.

Nonrepudiation is only useful if a third party can actually *decide a
dispute*.  This module packages what an arbitrator needs:

* :func:`extract_evidence` — for one contested activity execution,
  bundle the CER, the signer's PKI certificate, the verified
  nonrepudiation scope (Algorithm 1), and the verification outcome into
  an :class:`EvidenceBundle` with a human-readable report;
* :func:`audit_trail` — a chronological narrative of the whole process
  instance (executions, TFC timestamps, run-time amendments) derived
  purely from the document.

Nothing here needs decryption keys: signatures cover ciphertext, so an
auditor can establish *who did what, in which order, over which state*
without ever reading confidential payloads — the separation of
integrity evidence from confidentiality that §2.3 is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pki import Certificate, KeyDirectory
from ..document.amendments import KIND_AMENDMENT, SPEC_TAG, amendment_from_xml
from ..document.cer import CER
from ..document.document import Dra4wfmsDocument
from ..document.nonrepudiation import nonrepudiation_scope
from ..document.sections import KIND_STANDARD, KIND_TFC
from ..document.verify import verify_document
from ..errors import DocumentError, ReproError

__all__ = ["EvidenceBundle", "TrailEntry", "extract_evidence",
           "audit_trail", "render_trail"]


@dataclass
class EvidenceBundle:
    """Everything an arbitrator needs to decide one repudiation claim."""

    process_id: str
    activity_id: str
    iteration: int
    participant: str
    certificate: Certificate
    cer_id: str
    signature_value_hex: str
    scope_cer_ids: list[str]
    document_valid: bool
    verification_detail: str
    timestamp: float | None = None

    def verdict(self) -> str:
        """One-line arbitration outcome."""
        if not self.document_valid:
            return (f"INCONCLUSIVE: the presented document fails "
                    f"verification ({self.verification_detail}); no party "
                    f"is bound by it")
        return (f"BOUND: {self.participant} signed CER {self.cer_id} "
                f"with their certified key; they cannot deny producing "
                f"this result over the {len(self.scope_cer_ids)} CERs in "
                f"its nonrepudiation scope")

    def render_report(self) -> str:
        """Multi-line report suitable for filing with the dispute."""
        lines = [
            "=== DRA4WfMS dispute evidence ===",
            f"process instance : {self.process_id}",
            f"contested step   : {self.activity_id} "
            f"(iteration {self.iteration})",
            f"signer           : {self.participant}",
            f"certificate      : serial {self.certificate.serial}, "
            f"issued by {self.certificate.issuer}",
            f"signature        : {self.signature_value_hex[:32]}… "
            f"(RSA over the canonical SignedInfo)",
        ]
        if self.timestamp is not None:
            lines.append(f"TFC witnessed at : {self.timestamp}")
        lines.append(f"document valid   : "
                     f"{'yes' if self.document_valid else 'NO'}")
        lines.append("nonrepudiation scope (everything the signer is "
                     "bound to):")
        for cer_id in self.scope_cer_ids:
            lines.append(f"  - {cer_id}")
        lines.append(f"verdict          : {self.verdict()}")
        return "\n".join(lines)


def extract_evidence(
    document: Dra4wfmsDocument,
    directory: KeyDirectory,
    activity_id: str,
    iteration: int = 0,
    backend: CryptoBackend | None = None,
    workers: int | None = None,
) -> EvidenceBundle:
    """Build the evidence bundle for one contested activity execution.

    The verification here is always **cold** — an arbitrator must not
    rely on anyone's cached trust — but *workers* may fan the
    independent RSA checks of a long cascade across a thread pool,
    since a dispute audit is exactly the offline, whole-history verify
    the pool was built for.
    """
    backend = backend or default_backend()
    cer = (document.find_cer(activity_id, iteration, KIND_STANDARD)
           or document.find_cer(activity_id, iteration, KIND_TFC))
    if cer is None:
        raise DocumentError(
            f"document contains no CER for {activity_id}^{iteration}"
        )

    valid, detail = True, "all signatures verified"
    try:
        verify_document(document, directory, backend, workers=workers)
    except ReproError as exc:
        valid, detail = False, f"{type(exc).__name__}: {exc}"

    scope = nonrepudiation_scope(document, cer)
    return EvidenceBundle(
        process_id=document.process_id,
        activity_id=activity_id,
        iteration=iteration,
        participant=cer.participant,
        certificate=directory.certificate_of(cer.participant),
        cer_id=cer.cer_id,
        signature_value_hex=cer.signature.signature_value.hex(),
        scope_cer_ids=[item.cer_id for item in scope],
        document_valid=valid,
        verification_detail=detail,
        timestamp=cer.timestamp,
    )


@dataclass(frozen=True)
class TrailEntry:
    """One event in the chronological audit trail."""

    kind: str                 # "execution" | "tfc" | "amendment"
    description: str
    participant: str
    activity_id: str
    iteration: int
    timestamp: float | None = None


def audit_trail(document: Dra4wfmsDocument) -> list[TrailEntry]:
    """Chronological narrative of a process instance.

    Document order *is* execution order (every CER countersigns its
    predecessors), so the trail is derived without any server log.
    """
    entries: list[TrailEntry] = []
    definition_cer = document.definition_cer
    entries.append(TrailEntry(
        kind="definition",
        description=(f"workflow {document.process_name!r} instantiated "
                     f"and signed by the designer"),
        participant=definition_cer.participant,
        activity_id=definition_cer.activity_id,
        iteration=0,
    ))
    for cer in document.cers(include_definition=False):
        if cer.kind == KIND_AMENDMENT:
            spec = cer.element.find(SPEC_TAG)
            amendment = amendment_from_xml(spec)
            entries.append(TrailEntry(
                kind="amendment",
                description=(f"run-time amendment "
                             f"[{amendment.kind}] applied"
                             + (f": {amendment.reason}"
                                if amendment.reason else "")),
                participant=cer.participant,
                activity_id=cer.activity_id,
                iteration=cer.iteration,
            ))
        elif cer.kind == KIND_STANDARD:
            entries.append(TrailEntry(
                kind="execution",
                description=(f"activity {cer.activity_id!r} executed "
                             f"(iteration {cer.iteration})"),
                participant=cer.participant,
                activity_id=cer.activity_id,
                iteration=cer.iteration,
            ))
        elif cer.kind == KIND_TFC:
            entries.append(TrailEntry(
                kind="tfc",
                description=(f"activity {cer.activity_id!r} finalised "
                             f"and timestamped by the TFC server"),
                participant=cer.participant,
                activity_id=cer.activity_id,
                iteration=cer.iteration,
                timestamp=cer.timestamp,
            ))
        # Intermediate CERs are subsumed by their TFC entry.
    return entries


def render_trail(document: Dra4wfmsDocument) -> str:
    """The audit trail as printable text."""
    lines = [f"audit trail for process {document.process_id}"]
    for index, entry in enumerate(audit_trail(document)):
        stamp = (f" @ t={entry.timestamp}"
                 if entry.timestamp is not None else "")
        lines.append(f"{index:3d}. [{entry.kind}] {entry.description} "
                     f"— by {entry.participant}{stamp}")
    return "\n".join(lines)
