"""Control-flow evaluation over routed documents.

Decides, after an activity completes, which signatures the new CER must
countersign (the cascade) and which activities receive the document
next.  Used by AEAs in the basic model and by the TFC server in the
advanced model.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Mapping

from ..document.document import Dra4wfmsDocument
from ..document.nonrepudiation import frontier_cers
from ..document.sections import KIND_INTERMEDIATE
from ..errors import JoinNotReady, RoutingError
from ..model.controlflow import JoinKind
from ..model.definition import WorkflowDefinition

__all__ = ["RoutingDecision", "cascade_targets", "check_join_ready",
           "route_after"]


@dataclass(frozen=True)
class RoutingDecision:
    """Where a document goes after an activity completes."""

    #: Ids of the next activities (empty when the process terminates).
    next_activities: tuple[str, ...]
    #: Identities of the participants of those activities.
    next_participants: tuple[str, ...]
    #: True when the completed activity ends the workflow.
    terminal: bool


def cascade_targets(document: Dra4wfmsDocument,
                    definition: WorkflowDefinition,
                    activity_id: str) -> list[ET.Element]:
    """Signature elements the CER of *activity_id* must countersign.

    Implements the paper's cascade rule: the new signature covers
    ``Sig(X''_Ap1), …, Sig(X''_Apn)`` — the signature of the **latest
    CER of every predecessor activity that has executed**.  For the
    first activity of a fresh instance (no predecessor has run) the
    target is the workflow designer's signature, i.e. ``Sig(X''_A0)``.

    In the advanced model a predecessor's cascade signature is its TFC
    CER's signature (which itself covers the participant's intermediate
    signature), so the chain runs participant → TFC → participant …
    """
    if document.pending_intermediate():
        pending = document.pending_intermediate()[0]
        raise RoutingError(
            f"document has an unfinalised intermediate CER for "
            f"{pending.activity_id}^{pending.iteration}; route it to the "
            f"TFC server first"
        )
    targets: list[ET.Element] = []
    for pred in definition.predecessors(activity_id):
        executed = document.execution_count(pred)
        if executed == 0:
            continue
        cer = document.cascade_signature_of(pred, executed - 1)
        if cer is not None:
            targets.append(cer.signature.element)
    if not targets:
        # Start of the process: countersign the designer (CER(A0)).
        targets.append(document.definition_cer.signature.element)
    # Run-time amendments not yet countersigned join the cascade here,
    # so later scopes cover them (the amendment becomes as
    # nonrepudiable as any execution result).
    from ..document.amendments import KIND_AMENDMENT as _AMD

    for cer in frontier_cers(document):
        if cer.kind == _AMD:
            targets.append(cer.signature.element)
    return targets


def check_join_ready(document: Dra4wfmsDocument,
                     definition: WorkflowDefinition,
                     activity_id: str) -> None:
    """Raise :class:`JoinNotReady` unless *activity_id* may execute.

    An AND-join requires a completed CER from **every** incoming branch
    whose results have not yet been consumed: the frontier must contain
    one CER per predecessor activity.  Other joins need at least one
    completed predecessor (or none at all for the start activity).
    """
    activity = definition.activity(activity_id)
    predecessors = set(definition.predecessors(activity_id))
    if not predecessors:
        return
    frontier_activities = {
        cer.activity_id for cer in frontier_cers(document)
    }
    if activity.join is JoinKind.AND:
        missing = predecessors - frontier_activities
        if missing:
            raise JoinNotReady(
                f"AND-join {activity_id!r} is missing branches from "
                f"{sorted(missing)} (frontier: {sorted(frontier_activities)})"
            )
    else:
        # NONE/XOR joins: some predecessor must have completed at least
        # once.  (A parallel sibling may already have countersigned the
        # predecessor's CER, so the frontier alone is not the test; the
        # cascade signature still binds this execution to what it saw.)
        if activity_id == definition.start_activity:
            return
        if document.execution_count(activity_id) > 0:
            return
        if not any(
            document.execution_count(pred) > 0 for pred in predecessors
        ):
            raise JoinNotReady(
                f"no predecessor of {activity_id!r} has completed yet"
            )


def route_after(definition: WorkflowDefinition,
                activity_id: str,
                variables: Mapping[str, object] | None) -> RoutingDecision:
    """Evaluate the split of *activity_id* and name the next participants."""
    successors = definition.successors(activity_id, variables)
    participants = tuple(
        definition.activity(aid).participant for aid in successors
    )
    return RoutingDecision(
        next_activities=tuple(successors),
        next_participants=participants,
        terminal=not successors,
    )
