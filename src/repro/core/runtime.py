"""In-memory execution of complete workflow processes.

The runtime plays postman between simulated participants: it delivers
routed documents to the right AEA, buffers branch documents at AND-
joins, relays intermediate documents to the TFC server in the advanced
model, and records the per-step measurements (α, β, γ, document size)
that the paper's Tables 1 and 2 report.

It deliberately holds **no** authority: every security property is
enforced by the documents and agents themselves.  The runtime could be
replaced by SMTP and the system would work identically — that is the
paper's point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pki import KeyDirectory
from ..document.delta import DeltaDocument, encode_delta
from ..document.document import Dra4wfmsDocument
from ..errors import RuntimeFault
from ..model.controlflow import JoinKind
from ..model.definition import WorkflowDefinition
from .aea import ActivityExecutionAgent, Responder
from .tfc import TfcServer

__all__ = ["StepTrace", "ExecutionTrace", "ProcessExecution",
           "InMemoryRuntime"]


@dataclass
class StepTrace:
    """Measurements for one executed activity (one row of Table 1/2)."""

    step: int
    label: str                      # e.g. ``X''_B1^0``
    activity_id: str
    iteration: int
    participant: str
    #: Decrypt + verify seconds (AEA; plus TFC verify in advanced mode).
    alpha: float
    #: AEA encrypt + sign seconds.
    beta: float
    #: TFC encrypt + sign seconds (advanced mode only).
    gamma: float | None
    #: Canonical size of the produced document in bytes (Σ).
    size_bytes: int
    #: Signatures verified when the document was received.
    signatures_verified: int
    #: CERs in the produced document (excluding the definition CER).
    num_cers: int
    mode: str
    #: Bytes that crossed the wire to deliver this step's input
    #: document(s) — the full canonical size, or the manifest + unseen
    #: chunks when the runtime routes deltas.  AND-joins sum all
    #: buffered branch deliveries.
    wire_bytes: int = 0
    #: Advanced mode only: size of the intermediate document the AEA
    #: handed to the TFC (the paper's ``X_Ai`` rows in Table 2).
    intermediate_size_bytes: int | None = None
    #: The document as produced at this step (the per-hop snapshot an
    #: incremental verifier sees; excluded from repr — it is large).
    document: Dra4wfmsDocument | None = field(default=None, repr=False)


@dataclass
class ExecutionTrace:
    """Full record of one process execution."""

    process_id: str
    mode: str
    initial_size: int
    #: ``"full"`` or ``"delta"`` — how documents moved between agents.
    routing: str = "full"
    steps: list[StepTrace] = field(default_factory=list)
    final_document: Dra4wfmsDocument | None = None

    @property
    def total_alpha(self) -> float:
        """Sum of verify times across all steps."""
        return sum(s.alpha for s in self.steps)

    @property
    def total_wire_bytes(self) -> int:
        """Bytes moved between participants across the whole process."""
        return sum(s.wire_bytes for s in self.steps)

    @property
    def total_beta(self) -> float:
        """Sum of AEA sign times across all steps."""
        return sum(s.beta for s in self.steps)

    @property
    def final_size(self) -> int:
        """Size of the last produced document."""
        return self.steps[-1].size_bytes if self.steps else self.initial_size


@dataclass
class _Delivery:
    activity_id: str
    #: What travels: the document itself (full routing) or a
    #: :class:`DeltaDocument` holding only the chunks the receiving
    #: agent has not seen yet (delta routing).
    payload: Dra4wfmsDocument | DeltaDocument
    #: Simulated transfer size of this delivery.
    wire_bytes: int


class ProcessExecution:
    """One in-flight process instance, advanced a hop at a time.

    Created by :meth:`InMemoryRuntime.start`.  Each :meth:`step` call
    executes at most one activity (delivering buffered AND-join branch
    documents along the way) and returns its :class:`StepTrace`, or
    ``None`` once the instance has run to completion.  Schedulers such
    as the fleet fabric interleave many executions by round-robining
    :meth:`step` across them; :meth:`InMemoryRuntime.run` is just
    "step until done" on a single instance.
    """

    def __init__(self,
                 runtime: "InMemoryRuntime",
                 initial_document: Dra4wfmsDocument,
                 definition: WorkflowDefinition,
                 responders: Mapping[str, Responder | Mapping[str, str]],
                 mode: str = "basic",
                 max_steps: int = 10_000) -> None:
        if mode == "advanced" and runtime.tfc is None:
            raise RuntimeFault("advanced mode requires a TFC server")
        self.runtime = runtime
        self.definition = definition
        self.responders = responders
        self.mode = mode
        self.max_steps = max_steps
        self.trace = ExecutionTrace(
            process_id=initial_document.process_id,
            mode=mode,
            initial_size=initial_document.size_bytes,
            routing="delta" if runtime.delta_routing else "full",
        )
        # The initial hand-off is always a full document: no agent has
        # seen any of its chunks yet, so a delta would only add the
        # manifest on top.
        # The initial hand-off goes through the same packaging as every
        # later hop: in delta mode the start participant has no chunks
        # yet, so the wire cost is the full document plus manifest — but
        # decoding it primes that agent's cache for later revisits.
        self._queue: deque[_Delivery] = deque(
            [runtime.package(definition, definition.start_activity,
                             initial_document)]
        )
        # AND-join branch buffers: activity id → (branch doc, wire bytes).
        self._join_buffers: dict[str, list[tuple[Dra4wfmsDocument, int]]] = {}
        self._step = 0

    @property
    def done(self) -> bool:
        """True once no deliveries remain (the process has finished)."""
        return not self._queue

    def pending(self) -> list[str]:
        """Activity ids queued for delivery, in delivery order."""
        return [delivery.activity_id for delivery in self._queue]

    def step(self) -> StepTrace | None:
        """Execute the next activity; ``None`` when the process is done.

        Deliveries that merely buffer a branch document at an AND-join
        are consumed silently — the call keeps going until an activity
        actually executes or the queue drains.
        """
        while self._queue:
            if self._step >= self.max_steps:
                raise RuntimeFault(
                    f"process exceeded {self.max_steps} steps "
                    f"(runaway loop?)"
                )
            delivery = self._queue.popleft()
            activity = self.definition.activity(delivery.activity_id)
            agent = self.runtime.agent_for(activity.participant)
            # Materialise the payload with the *receiving* agent so a
            # delta is decoded against (and folded into) its chunk
            # cache — exactly what a remote AEA would do.
            incoming = agent._materialize(delivery.payload)
            wire_bytes = delivery.wire_bytes

            merge_with: list[Dra4wfmsDocument] = []
            if activity.join is JoinKind.AND:
                arity = len(self.definition.incoming(activity.activity_id))
                buffer = self._join_buffers.setdefault(
                    activity.activity_id, [])
                buffer.append((incoming, wire_bytes))
                if len(buffer) < arity:
                    continue
                self._join_buffers[activity.activity_id] = []
                incoming = buffer[0][0]
                merge_with = [doc for doc, _ in buffer[1:]]
                wire_bytes = sum(wire for _, wire in buffer)

            activity_id = activity.activity_id
            responder = self.responders.get(activity_id)
            if responder is None:
                raise RuntimeFault(
                    f"no responder registered for activity "
                    f"{activity_id!r}"
                )

            tfc = self.runtime.tfc
            if self.mode == "basic":
                result = agent.execute_activity(
                    incoming, activity_id, responder,
                    mode="basic", merge_with=merge_with,
                )
                routing = result.routing
                document = result.document
                gamma = None
                alpha = result.timings.verify_seconds
            else:
                result = agent.execute_activity(
                    incoming, activity_id, responder,
                    mode="advanced",
                    tfc_identity=tfc.identity,
                    tfc_public_key=tfc.public_key,
                    merge_with=merge_with,
                )
                intermediate_size = result.document.size_bytes
                tfc_result = tfc.process(result.document)
                routing = tfc_result.routing
                document = tfc_result.document
                gamma = tfc_result.sign_seconds
                alpha = (result.timings.verify_seconds
                         + tfc_result.verify_seconds)

            self._step += 1
            step_trace = StepTrace(
                step=self._step,
                label=f"X''_{result.activity_id}^{result.iteration}",
                activity_id=result.activity_id,
                iteration=result.iteration,
                participant=activity.participant,
                alpha=alpha,
                beta=result.timings.sign_seconds,
                gamma=gamma,
                size_bytes=document.size_bytes,
                signatures_verified=result.timings.signatures_verified,
                num_cers=len(document.cers(include_definition=False)),
                mode=self.mode,
                wire_bytes=wire_bytes,
                intermediate_size_bytes=(
                    intermediate_size if self.mode == "advanced" else None),
                document=document,
            )
            self.trace.steps.append(step_trace)
            self.trace.final_document = document

            assert routing is not None
            for next_activity in routing.next_activities:
                self._queue.append(self._outgoing(next_activity, document))
            return step_trace

        self._check_joins_drained()
        return None

    def _outgoing(self, next_activity: str,
                  document: Dra4wfmsDocument) -> _Delivery:
        return self.runtime.package(self.definition, next_activity, document)

    def _check_joins_drained(self) -> None:
        leftover = {
            aid: len(docs)
            for aid, docs in self._join_buffers.items() if docs
        }
        if leftover:
            raise RuntimeFault(
                f"process ended with unsatisfied AND-joins: {leftover}"
            )


class InMemoryRuntime:
    """Drives a workflow process to completion among simulated parties."""

    def __init__(self,
                 directory: KeyDirectory,
                 participants: Mapping[str, KeyPair],
                 tfc: TfcServer | None = None,
                 backend: CryptoBackend | None = None,
                 delta_routing: bool = False) -> None:
        self.directory = directory
        self.backend = backend or default_backend()
        self.tfc = tfc
        #: When True, routed documents travel as deltas against each
        #: receiving agent's content-addressed chunk cache instead of
        #: full canonical bytes (see docs/ROUTING.md).
        self.delta_routing = delta_routing
        self._agents: dict[str, ActivityExecutionAgent] = {
            identity: ActivityExecutionAgent(keypair, directory, self.backend)
            for identity, keypair in participants.items()
        }

    def agent_for(self, identity: str) -> ActivityExecutionAgent:
        """The AEA acting for *identity*."""
        try:
            return self._agents[identity]
        except KeyError:
            raise RuntimeFault(
                f"no key pair registered for participant {identity!r}"
            ) from None

    def package(self, definition: WorkflowDefinition, next_activity: str,
                document: Dra4wfmsDocument) -> _Delivery:
        """Package *document* for delivery to *next_activity*'s agent.

        Delta routing diffs against the receiving agent's chunk cache
        at send time: only the manifest and the CER chunks that agent
        has never seen travel.  The receiver rebuilds the full byte-
        identical document before verifying — nothing in the security
        path changes, only the transfer size.
        """
        if self.delta_routing:
            recipient = definition.activity(next_activity).participant
            agent = self.agent_for(recipient)
            delta = encode_delta(document, known=agent.chunk_cache)
            return _Delivery(next_activity, delta, delta.wire_bytes)
        return _Delivery(next_activity, document.clone(),
                         document.size_bytes)

    def start(self,
              initial_document: Dra4wfmsDocument,
              definition: WorkflowDefinition,
              responders: Mapping[str, Responder | Mapping[str, str]],
              mode: str = "basic",
              max_steps: int = 10_000) -> ProcessExecution:
        """Begin a resumable execution (see :class:`ProcessExecution`).

        Multiple executions can share one runtime and be stepped in any
        interleaving — all per-instance state lives on the execution.
        """
        return ProcessExecution(
            self, initial_document, definition, responders,
            mode=mode, max_steps=max_steps,
        )

    def run(self,
            initial_document: Dra4wfmsDocument,
            definition: WorkflowDefinition,
            responders: Mapping[str, Responder | Mapping[str, str]],
            mode: str = "basic",
            max_steps: int = 10_000) -> ExecutionTrace:
        """Execute the whole process and return the measured trace.

        Parameters
        ----------
        responders:
            activity id → responder (callable or fixed value mapping).
            A responder is invoked once per loop iteration; callables
            can inspect :class:`~repro.core.aea.ActivityContext` (which
            carries the iteration) to vary answers.
        mode:
            ``"basic"`` or ``"advanced"`` — selects the operational
            model for *every* step.
        """
        execution = self.start(initial_document, definition, responders,
                               mode=mode, max_steps=max_steps)
        while execution.step() is not None:
            pass
        return execution.trace
