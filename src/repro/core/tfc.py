"""The Timestamp-and-Flow-Control (TFC) server.

Paper §2.2: "analogous to a notary public" — the TFC is *not* a
workflow engine.  It never executes activities and holds no
authoritative process state; it only

* **timestamps** each finished activity (monitoring needs a trusted
  finish time);
* **applies the security policy** the participant could not: it decrypts
  the TFC-addressed result bundle, re-encrypts each field for the reader
  set the policy prescribes (resolving conditional clauses with guard
  variables the participant was not allowed to see — Fig. 4);
* **forwards** the document according to the control flow; and
* keeps a record of every processed document so the status of workflow
  executions can be queried (§2.2, monitoring).

Crucially the TFC *also signs into the cascade*: its CER countersigns
the participant's intermediate signature, so even a malicious TFC
cannot repudiate its processing, and any alteration it makes is
detectable by the same verification every AEA already runs.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ContextManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.tracer import Tracer

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pki import KeyDirectory
from ..crypto.pure.rsa import RsaPublicKey
from ..document.builder import (
    INTERMEDIATE_BUNDLE_FIELD,
    make_tfc_cer,
    parse_result_bundle,
)
from ..document.document import Dra4wfmsDocument
from ..document.vcache import VerificationCache
from ..document.verify import VerificationReport, verify_document
from ..errors import RuntimeFault
from ..model.definition import WorkflowDefinition
from .router import RoutingDecision, route_after
from .state import VariableView

__all__ = ["TfcRecord", "TfcResult", "TfcServer"]


@dataclass(frozen=True)
class TfcRecord:
    """One monitoring record: an activity finished at a witnessed time."""

    process_id: str
    activity_id: str
    iteration: int
    participant: str
    timestamp: float


@dataclass
class TfcResult:
    """Outcome of TFC processing for one intermediate CER."""

    document: Dra4wfmsDocument
    activity_id: str
    iteration: int
    routing: RoutingDecision
    timestamp: float
    #: Verification + bundle decryption time (contributes to Table 2's α).
    verify_seconds: float
    #: Re-encryption + signature time (Table 2's γ).
    sign_seconds: float


class TfcServer:
    """A timestamp and flow control server (advanced operational model)."""

    def __init__(self, keypair: KeyPair, directory: KeyDirectory,
                 backend: CryptoBackend | None = None,
                 clock: Callable[[], float] | None = None,
                 keep_copies: bool = True,
                 trusted_tfcs: set[str] | None = None,
                 verify_cache: VerificationCache | None = None,
                 verify_workers: int | None = None,
                 verify_batch: bool | None = None) -> None:
        self.keypair = keypair
        self.directory = directory
        self.backend = backend or default_backend()
        if clock is None:
            # Deterministic by default: timestamps come from a private
            # simulated clock ticking one second per witnessed event,
            # not the host wall clock, so timestamp-monotonicity is
            # exact and test runs are reproducible.  Deployments pass
            # their own clock (e.g. ``SimClock.now`` or ``time.time``).
            from ..cloud.simclock import SimClock

            own_clock = SimClock()
            clock = lambda: own_clock.advance(1.0)  # noqa: E731
        self.clock = clock
        self.keep_copies = keep_copies
        #: Opt-in shared signature cache for incremental verification
        #: (``None`` keeps every ``process()`` a cold verify).
        self.verify_cache = verify_cache
        #: Batched RSA verification knobs forwarded to
        #: :func:`verify_document` (see its *workers*/*batch* docs).
        self.verify_workers = verify_workers
        self.verify_batch = verify_batch
        #: TFC identities whose CERs this server accepts in incoming
        #: documents.  Cross-enterprise deployments run one TFC per
        #: enterprise (Fig. 6 shows a TFC per hop); list the federation
        #: here.  Always includes this server itself.
        self.trusted_tfcs = set(trusted_tfcs or ()) | {keypair.identity}
        #: Monitoring records, in processing order.
        self.records: list[TfcRecord] = []
        #: Copies of every forwarded document (workflow monitoring).
        self.document_log: list[bytes] = []
        #: Optional observability hook (:class:`repro.obs.Tracer`) —
        #: the TFC has no :class:`SimClock` of its own (its *clock* is a
        #: bare timestamp callable), so the span hook attaches here.
        self.tracer: "Tracer | None" = None

    def _trace(self, name: str, component: str) -> ContextManager[object]:
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, component=component)

    @property
    def identity(self) -> str:
        """The TFC's identity (the key results are addressed to)."""
        return self.keypair.identity

    @property
    def public_key(self) -> RsaPublicKey:
        """The key participants encrypt intermediate bundles to."""
        return self.keypair.public_key

    def process(self, data: bytes | Dra4wfmsDocument) -> TfcResult:
        """Finalise the pending intermediate CER of a routed document.

        Verifies the document, decrypts the TFC-addressed bundle,
        re-encrypts the result per policy, timestamps, signs, records,
        and computes the routing decision.
        """
        with self._trace("tfc.process", "tfc"):
            return self._process(data)

    def _process(self, data: bytes | Dra4wfmsDocument) -> TfcResult:
        verify_start = time.perf_counter()
        with self._trace("tfc.verify", "crypto"):
            document = (data if isinstance(data, Dra4wfmsDocument)
                        else Dra4wfmsDocument.from_bytes(data))
            report: VerificationReport = verify_document(
                document, self.directory, self.backend,
                definition_reader=(self.identity, self.keypair.private_key),
                tfc_identities=self.trusted_tfcs,
                cache=self.verify_cache,
                workers=self.verify_workers,
                batch=self.verify_batch,
            )
            from ..document.amendments import effective_definition

            definition: WorkflowDefinition = effective_definition(
                document, self.identity, self.keypair.private_key,
                self.backend
            ) if document.definition_is_encrypted else effective_definition(
                document, backend=self.backend
            )

            pending = document.pending_intermediate()
            if not pending:
                raise RuntimeFault(
                    "document has no pending intermediate CER to finalise"
                )
            if len(pending) > 1:
                raise RuntimeFault(
                    f"document has {len(pending)} pending intermediate "
                    f"CERs; each routed copy must carry exactly one"
                )
            cer_it = pending[0]
            bundle = cer_it.encrypted_field(INTERMEDIATE_BUNDLE_FIELD)
            values = parse_result_bundle(bundle.decrypt(
                self.identity, self.keypair.private_key, self.backend
            ))
            verify_seconds = time.perf_counter() - verify_start

        # γ phase: re-encrypt per policy + timestamp + sign ------------------
        sign_start = time.perf_counter()
        with self._trace("tfc.sign", "crypto"):
            view = VariableView.for_reader(
                document, self.identity, self.keypair.private_key,
                self.backend
            ).merged_with(values)
            typed = view.typed(definition)
            activity_id, iteration = cer_it.activity_id, cer_it.iteration

            def readers_for(fieldname: str) -> dict[str, RsaPublicKey]:
                names = set(definition.policy.readers_for(
                    definition, activity_id, fieldname, typed
                ))
                # The TFC saw the plaintext anyway and needs it later for
                # guard evaluation; adding itself keeps that honest and
                # auditable rather than implicit.
                names.add(self.identity)
                return {
                    identity: self.directory.public_key_of(identity)
                    for identity in sorted(names)
                }

            timestamp = float(self.clock())
            new_document = document.clone_for_append()
            intermediate_sig = new_document.find_cer(
                activity_id, iteration, cer_it.kind
            ).signature.element
            tfc_cer = make_tfc_cer(
                activity_id, iteration, self.keypair, values,
                readers_for, intermediate_sig, timestamp, self.backend,
            )
            new_document.append_cer(tfc_cer)
            sign_seconds = time.perf_counter() - sign_start

        routing = route_after(definition, activity_id, typed)

        self.records.append(TfcRecord(
            process_id=document.process_id,
            activity_id=activity_id,
            iteration=iteration,
            participant=cer_it.participant,
            timestamp=timestamp,
        ))
        if self.keep_copies:
            self.document_log.append(new_document.to_bytes())
        return TfcResult(
            document=new_document,
            activity_id=activity_id,
            iteration=iteration,
            routing=routing,
            timestamp=timestamp,
            verify_seconds=verify_seconds,
            sign_seconds=sign_seconds,
        )

    # -- monitoring ------------------------------------------------------------

    def records_for(self, process_id: str) -> list[TfcRecord]:
        """All monitoring records of one process instance."""
        return [r for r in self.records if r.process_id == process_id]

    def latest_document(self, process_id: str) -> Dra4wfmsDocument | None:
        """The most recent forwarded copy of a process instance."""
        for blob in reversed(self.document_log):
            document = Dra4wfmsDocument.from_bytes(blob)
            if document.process_id == process_id:
                return document
        return None
