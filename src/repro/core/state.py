"""Process-instance state reconstruction from a DRA4WfMS document.

There is no workflow engine holding state: everything an agent needs —
which activities ran, what values the variables hold, what runs next —
is reconstructed from the routed document itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pure.rsa import RsaPrivateKey
from ..document.builder import INTERMEDIATE_BUNDLE_FIELD
from ..document.document import Dra4wfmsDocument
from ..document.sections import KIND_STANDARD, KIND_TFC
from ..errors import XmlEncryptionError
from ..model.definition import WorkflowDefinition

__all__ = ["VariableView", "ExecutionStatus", "execution_status"]

Value = bool | int | float | str


class VariableView:
    """The workflow variables *one identity* can currently read.

    Scans the document's CERs in order and decrypts every field whose
    recipient list includes the identity; for looped activities the
    latest iteration wins.  This is what an AEA shows the participant
    ("the forms" of §1) and what guard evaluation runs on.
    """

    def __init__(self, raw: dict[str, str]) -> None:
        self._raw = raw

    @classmethod
    def for_reader(cls, document: Dra4wfmsDocument, identity: str,
                   private_key: RsaPrivateKey,
                   backend: CryptoBackend | None = None) -> "VariableView":
        """Decrypt everything *identity* may read."""
        backend = backend or default_backend()
        raw: dict[str, str] = {}
        for cer in document.cers(include_definition=False):
            if cer.kind not in (KIND_STANDARD, KIND_TFC):
                continue
            for enc in cer.encrypted_fields():
                if enc.name == INTERMEDIATE_BUNDLE_FIELD:
                    continue
                if identity not in enc.recipients:
                    continue
                try:
                    plaintext = enc.decrypt(identity, private_key, backend)
                except XmlEncryptionError:
                    # A reader listed but unable to decrypt means the
                    # document is corrupt; surface during verification,
                    # not here.
                    continue
                raw[enc.name] = plaintext.decode("utf-8")
        return cls(raw)

    @property
    def raw(self) -> dict[str, str]:
        """Variable name → string value, as stored in the document."""
        return dict(self._raw)

    def typed(self, definition: WorkflowDefinition) -> dict[str, Value]:
        """Convert values using the declared field types (for guards)."""
        types: dict[str, str] = {}
        for activity in definition.activities.values():
            for spec in activity.responses:
                types[spec.name] = spec.ftype
        out: dict[str, Value] = {}
        for name, text in self._raw.items():
            ftype = types.get(name, "string")
            if ftype == "int":
                out[name] = int(text)
            elif ftype == "float":
                out[name] = float(text)
            elif ftype == "bool":
                out[name] = text.strip().lower() in ("1", "true", "yes")
            else:
                out[name] = text
        return out

    def merged_with(self, extra: dict[str, str]) -> "VariableView":
        """A view extended with (overriding) values, e.g. fresh responses."""
        raw = dict(self._raw)
        raw.update(extra)
        return VariableView(raw)

    def __contains__(self, name: str) -> bool:
        return name in self._raw

    def __getitem__(self, name: str) -> str:
        return self._raw[name]

    def __len__(self) -> int:
        return len(self._raw)


@dataclass
class ExecutionStatus:
    """Observable progress of a process instance (monitoring, §2.2)."""

    process_id: str
    completed: list[tuple[str, int]] = field(default_factory=list)
    pending_tfc: list[tuple[str, int]] = field(default_factory=list)
    timestamps: dict[tuple[str, int], float] = field(default_factory=dict)
    finished: bool = False

    @property
    def executions(self) -> int:
        """Total completed activity executions (loop iterations count)."""
        return len(self.completed)


def execution_status(document: Dra4wfmsDocument,
                     definition: WorkflowDefinition | None = None,
                     ) -> ExecutionStatus:
    """Derive an :class:`ExecutionStatus` without decrypting anything.

    Progress tracking needs only CER metadata (activity, iteration,
    timestamps) — confidential payloads stay sealed, which is exactly
    why the advanced model can offer monitoring without weakening the
    security policy.
    """
    status = ExecutionStatus(process_id=document.process_id)
    for cer in document.cers(include_definition=False):
        key = (cer.activity_id, cer.iteration)
        if cer.kind in (KIND_STANDARD, KIND_TFC):
            status.completed.append(key)
            ts = cer.timestamp
            if ts is not None:
                status.timestamps[key] = ts
    for cer in document.pending_intermediate():
        status.pending_tfc.append((cer.activity_id, cer.iteration))
    if definition is not None:
        ends = set(definition.end_activities())
        status.finished = any(
            activity in ends for activity, _ in status.completed
        )
    return status
