"""The DRA4WfMS runtime: AEA, TFC server, routing, state, monitoring.

This package is the paper's primary contribution in executable form —
the engine-less operational models of §2.1 (basic) and §2.2 (advanced),
with the in-memory orchestrator that produces the measurements of §4.
"""

from .audit import (
    EvidenceBundle,
    TrailEntry,
    audit_trail,
    extract_evidence,
    render_trail,
)
from .aea import (
    ActivityContext,
    ActivityExecutionAgent,
    AeaResult,
    AeaTimings,
    Responder,
)
from .monitor import ActivityStats, WorkflowMonitor
from .parallel import ThreadedRuntime
from .router import RoutingDecision, cascade_targets, check_join_ready, route_after
from .runtime import ExecutionTrace, InMemoryRuntime, StepTrace
from .state import ExecutionStatus, VariableView, execution_status
from .tfc import TfcRecord, TfcResult, TfcServer

__all__ = [
    "ActivityContext",
    "EvidenceBundle",
    "TrailEntry",
    "audit_trail",
    "extract_evidence",
    "render_trail",
    "ActivityExecutionAgent",
    "ActivityStats",
    "AeaResult",
    "AeaTimings",
    "ExecutionStatus",
    "ExecutionTrace",
    "InMemoryRuntime",
    "Responder",
    "RoutingDecision",
    "StepTrace",
    "TfcRecord",
    "TfcResult",
    "TfcServer",
    "ThreadedRuntime",
    "VariableView",
    "WorkflowMonitor",
    "cascade_targets",
    "check_join_ready",
    "execution_status",
    "route_after",
]
