"""Workflow monitoring (paper §2.2, §3).

"Monitoring encompasses the tracking of individual processes so that
information on their state can be easily seen and statistics on the
performance of one or more processes provided" [20].  In DRA4WfMS the
TFC server's records and document copies are the monitoring substrate;
the cloud deployment additionally runs MapReduce analyses over the
document pool (see :mod:`repro.cloud.mapreduce`).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import TYPE_CHECKING

from ..document.document import Dra4wfmsDocument
from ..document.vcache import VerificationCache
from ..model.definition import WorkflowDefinition
from .state import ExecutionStatus, execution_status
from .tfc import TfcRecord, TfcServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fleet.fleet import Fleet

__all__ = ["ActivityStats", "WorkflowMonitor"]


@dataclass
class ActivityStats:
    """Aggregate statistics for one activity across process instances."""

    activity_id: str
    executions: int
    mean_gap_seconds: float | None
    participants: tuple[str, ...]


class WorkflowMonitor:
    """Query progress and statistics from TFC records and documents.

    Single-instance queries (history, status, gaps) need only the TFC
    records.  The fleet-load views — :meth:`queue_depths`,
    :meth:`utilization` and :meth:`metrics` — additionally need a
    :class:`~repro.fleet.fleet.Fleet` connected via the ``fleet=``
    constructor argument or :meth:`attach_fleet`; they return ``None``
    until one is attached.
    """

    def __init__(self, tfc: TfcServer | None = None,
                 records: list[TfcRecord] | None = None,
                 verify_cache: VerificationCache | None = None,
                 fleet: "Fleet | None" = None) -> None:
        if tfc is None and records is None:
            raise ValueError("pass a TFC server or a record list")
        self._tfc = tfc
        self._records = records
        #: The shared signature cache whose counters this monitor
        #: surfaces; falls back to the TFC's cache when not given.
        self._verify_cache = (verify_cache if verify_cache is not None
                              else getattr(tfc, "verify_cache", None))
        self._fleet = fleet

    def attach_fleet(self, fleet: "Fleet") -> None:
        """Connect a fleet so its load metrics become queryable here.

        Enables :meth:`queue_depths`, :meth:`utilization` and
        :meth:`metrics`.  A monitor serves one fleet at a time; calling
        this again replaces the previous attachment.
        """
        self._fleet = fleet

    @property
    def records(self) -> list[TfcRecord]:
        """All monitoring records visible to this monitor."""
        if self._tfc is not None:
            return list(self._tfc.records)
        return list(self._records or [])

    # -- per-process queries ------------------------------------------------

    def processes(self) -> list[str]:
        """Distinct process ids seen, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.process_id, None)
        return list(seen)

    def history(self, process_id: str) -> list[TfcRecord]:
        """Timestamped activity completions of one process instance."""
        return [r for r in self.records if r.process_id == process_id]

    def status(self, process_id: str,
               definition: WorkflowDefinition | None = None,
               ) -> ExecutionStatus | None:
        """Current status from the TFC's latest document copy."""
        if self._tfc is None:
            return None
        document = self._tfc.latest_document(process_id)
        if document is None:
            return None
        return execution_status(document, definition)

    def activity_gaps(self, process_id: str) -> dict[tuple[str, int], float]:
        """Seconds between consecutive completions (activity handoffs).

        The gap attributed to an activity covers routing, participant
        think time and AEA processing — exactly what a business monitor
        wants to see to find the slow desk.
        """
        history = self.history(process_id)
        gaps: dict[tuple[str, int], float] = {}
        for previous, current in zip(history, history[1:]):
            gaps[(current.activity_id, current.iteration)] = (
                current.timestamp - previous.timestamp
            )
        return gaps

    def process_duration(self, process_id: str) -> float | None:
        """Wall-clock from first to last witnessed completion."""
        history = self.history(process_id)
        if len(history) < 2:
            return None
        return history[-1].timestamp - history[0].timestamp

    def slowest_handoff(self, process_id: str
                        ) -> tuple[tuple[str, int], float] | None:
        """The activity handoff that took longest (the slow desk)."""
        gaps = self.activity_gaps(process_id)
        if not gaps:
            return None
        key = max(gaps, key=gaps.get)  # type: ignore[arg-type]
        return key, gaps[key]

    # -- incremental-verification health ------------------------------------

    def verification_cache_stats(self) -> dict[str, int | float] | None:
        """Hit/miss/store/invalidation counters of the signature cache.

        ``None`` when no cache is attached (all verifies are cold).  A
        healthy steady-state hit rate approaches ``(n-1)/n`` for
        *n*-CER documents: only the newly appended CER needs RSA work
        per hop.
        """
        if self._verify_cache is None:
            return None
        return self._verify_cache.stats.snapshot()

    # -- fleet load metrics --------------------------------------------------

    def queue_depths(self) -> dict[str, list[tuple[float, int]]] | None:
        """Per-component queue-depth time series from an attached fleet.

        Each series is ``[(sim_time, depth), ...]`` step points.
        ``None`` when no fleet is attached (single-instance operation).
        """
        if self._fleet is None:
            return None
        return self._fleet.queue_depths()

    def utilization(self) -> dict[str, float] | None:
        """Per-component utilization from an attached fleet.

        Fraction of total worker capacity spent busy over the run
        horizon.  ``None`` when no fleet is attached.
        """
        if self._fleet is None:
            return None
        return self._fleet.utilization()

    def metrics(self) -> dict[str, object] | None:
        """Metrics-registry snapshot from an attached fleet.

        ``{"counters": ..., "gauges": ..., "histograms": ...}`` with
        sorted ``name{label=value}`` keys (see ``docs/OBSERVABILITY.md``
        for the catalog).  Requires a fleet built with
        ``FleetConfig(collect_metrics=True)`` or an attached tracer;
        ``None`` when no fleet is attached or collection is off.
        During a run only the ``sim_us_total`` component counters are
        live — the run-level counters, gauges and latency histogram
        land when the fleet produces its report.
        """
        if self._fleet is None or self._fleet.metrics is None:
            return None
        return self._fleet.metrics.snapshot()

    # -- fleet statistics ------------------------------------------------------

    def statistics(self) -> dict[str, ActivityStats]:
        """Per-activity statistics across every observed process."""
        by_activity: dict[str, list[TfcRecord]] = {}
        for record in self.records:
            by_activity.setdefault(record.activity_id, []).append(record)

        gap_samples: dict[str, list[float]] = {}
        for process_id in self.processes():
            for (activity_id, _), gap in self.activity_gaps(process_id).items():
                gap_samples.setdefault(activity_id, []).append(gap)

        stats: dict[str, ActivityStats] = {}
        for activity_id, records in by_activity.items():
            gaps = gap_samples.get(activity_id)
            stats[activity_id] = ActivityStats(
                activity_id=activity_id,
                executions=len(records),
                mean_gap_seconds=(fmean(gaps) if gaps else None),
                participants=tuple(sorted({r.participant for r in records})),
            )
        return stats

    # -- static helpers ------------------------------------------------------------

    @staticmethod
    def status_of(document: Dra4wfmsDocument,
                  definition: WorkflowDefinition | None = None,
                  ) -> ExecutionStatus:
        """Status straight from a document (no TFC needed)."""
        return execution_status(document, definition)
