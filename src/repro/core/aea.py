"""The Activity Execution Agent (AEA).

Paper §2.1: "a software tool called the activity execution agent"
running on the participant's own machine — anywhere, on any device —
replaces the workflow engine.  For each received document the AEA:

1. parses it and **verifies every embedded digital signature** (legal
   definition, valid history);
2. checks the participant is the designated executor;
3. decrypts and presents the requested data (here: an
   :class:`ActivityContext` handed to a responder callable);
4. appends the participant's element-wise-encrypted execution result;
5. embeds the cascaded digital signature;
6. evaluates the control flow and reports where to forward the
   document.

In the **advanced model** steps 4–6 change: the result is encrypted to
the TFC server (the AEA may not know the reader sets or the routing)
and the document is handed to the TFC for finalisation.

Timings for steps 1–3 (the paper's α: decrypt + verify) and 4–5 (β:
encrypt + sign) are recorded on every execution — Tables 1 and 2 are
produced directly from these counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pki import KeyDirectory
from ..crypto.pure.rsa import RsaPublicKey
from ..document.amendments import (
    Amendment,
    amendment_cers,
    check_authorized,
    effective_definition,
    make_amendment_cer,
)
from ..document.builder import make_intermediate_cer, make_standard_cer
from ..document.delta import ChunkCache, DeltaDocument, decode_delta
from ..document.document import Dra4wfmsDocument
from ..document.nonrepudiation import frontier_cers
from ..document.vcache import VerificationCache
from ..document.verify import VerificationReport, verify_document
from ..errors import AuthorizationError, PolicyError, RoutingError, RuntimeFault
from ..model.definition import WorkflowDefinition
from .router import RoutingDecision, cascade_targets, check_join_ready, route_after
from .state import VariableView

__all__ = ["ActivityContext", "AeaTimings", "AeaResult",
           "ActivityExecutionAgent", "Responder"]


@dataclass
class ActivityContext:
    """What the AEA shows the participant before execution (the "form")."""

    activity_id: str
    iteration: int
    participant: str
    #: Requested variables the participant may read, decrypted.
    requests: dict[str, str]
    #: Response fields the activity must produce (name → declared type).
    expected_responses: dict[str, str]
    definition: WorkflowDefinition
    process_id: str


#: A responder plays the human participant: context → response values.
Responder = Callable[[ActivityContext], Mapping[str, str]]


@dataclass
class AeaTimings:
    """Wall-clock phases of one activity execution (paper §4.1)."""

    #: α — parse the document, verify all signatures, decrypt requests.
    verify_seconds: float = 0.0
    #: β — encrypt the result and embed the cascaded signature.
    sign_seconds: float = 0.0
    #: Signatures verified during α.
    signatures_verified: int = 0
    #: CERs in the received document (incl. the definition CER).
    cers_seen: int = 0


@dataclass
class AeaResult:
    """Outcome of one AEA activity execution."""

    document: Dra4wfmsDocument
    activity_id: str
    iteration: int
    #: Routing (``None`` in the advanced model — the TFC routes).
    routing: RoutingDecision | None
    timings: AeaTimings
    report: VerificationReport
    mode: str
    values: dict[str, str] = field(repr=False, default_factory=dict)


class ActivityExecutionAgent:
    """The engine-less execution agent of one participant."""

    def __init__(self, keypair: KeyPair, directory: KeyDirectory,
                 backend: CryptoBackend | None = None,
                 verify_cache: VerificationCache | None = None) -> None:
        self.keypair = keypair
        self.directory = directory
        self.backend = backend or default_backend()
        #: Opt-in incremental verification: remember the signatures this
        #: agent already checked so the unchanged cascade prefix of the
        #: next routed copy costs hashing, not RSA.  ``None`` (default)
        #: keeps every receive a cold, trust-nothing verification.
        self.verify_cache = verify_cache
        #: Content-addressed chunks this agent has seen: lets a peer
        #: route a :class:`~repro.document.delta.DeltaDocument` (only
        #: the CERs this agent lacks) instead of the full bytes.  The
        #: decoded document is digest-checked and then verified exactly
        #: like a full transfer.
        self.chunk_cache = ChunkCache()

    def _materialize(self, data) -> Dra4wfmsDocument:
        """Turn any accepted transfer form into a parsed document."""
        if isinstance(data, Dra4wfmsDocument):
            return data
        if isinstance(data, DeltaDocument):
            data = decode_delta(data, self.chunk_cache)
        return Dra4wfmsDocument.from_bytes(data)

    @property
    def identity(self) -> str:
        """The participant this agent acts for."""
        return self.keypair.identity

    # -- step 1: receive & verify ------------------------------------------------

    def receive(self, data: bytes | Dra4wfmsDocument | DeltaDocument,
                merge_with: list[Dra4wfmsDocument] | None = None,
                ) -> tuple[Dra4wfmsDocument, VerificationReport, float]:
        """Parse, merge (AND-join) and verify a routed document.

        Returns ``(document, report, seconds)``.
        """
        start = time.perf_counter()
        document = self._materialize(data)
        for branch in merge_with or ():
            document = document.merge(branch)
        report = verify_document(
            document, self.directory, self.backend,
            definition_reader=(self.identity, self.keypair.private_key),
            cache=self.verify_cache,
        )
        return document, report, time.perf_counter() - start

    # -- full execution -----------------------------------------------------------

    def execute_activity(
        self,
        data: bytes | Dra4wfmsDocument | DeltaDocument,
        activity_id: str,
        responder: Responder | Mapping[str, str],
        *,
        mode: str = "basic",
        tfc_identity: str | None = None,
        tfc_public_key: RsaPublicKey | None = None,
        merge_with: list[Dra4wfmsDocument] | None = None,
    ) -> AeaResult:
        """Run the six AEA steps for *activity_id*.

        Parameters
        ----------
        responder:
            Callable receiving the :class:`ActivityContext`, or a plain
            mapping of response values.
        mode:
            ``"basic"`` (§2.1) or ``"advanced"`` (§2.2).  The basic mode
            refuses policies it cannot enforce (conditional reader
            clauses, concealed flow) — that refusal is the Fig. 4
            problem, and the advanced mode is its solution.
        tfc_identity / tfc_public_key:
            Required in advanced mode: where to encrypt the raw result.
        """
        if mode not in ("basic", "advanced"):
            raise RuntimeFault(f"unknown AEA mode {mode!r}")
        if mode == "advanced" and (tfc_identity is None
                                   or tfc_public_key is None):
            raise RuntimeFault("advanced mode requires the TFC identity "
                               "and public key")

        # α phase: parse + verify + decrypt ------------------------------------
        alpha_start = time.perf_counter()
        document = self._materialize(data)
        for branch in merge_with or ():
            document = document.merge(branch)
        report = verify_document(
            document, self.directory, self.backend,
            definition_reader=(self.identity, self.keypair.private_key),
            cache=self.verify_cache,
        )
        definition = effective_definition(
            document, self.identity, self.keypair.private_key, self.backend
        ) if document.definition_is_encrypted else effective_definition(
            document, backend=self.backend
        )

        activity = definition.activity(activity_id)
        if activity.participant != self.identity:
            raise AuthorizationError(
                f"{self.identity!r} is not the designated participant of "
                f"{activity_id!r} (expected {activity.participant!r})"
            )
        check_join_ready(document, definition, activity_id)
        if mode == "basic" and definition.policy.requires_tfc:
            raise PolicyError(
                "this workflow's security policy requires the advanced "
                "operational model (TFC server)"
            )

        iteration = document.execution_count(activity_id)
        view = VariableView.for_reader(
            document, self.identity, self.keypair.private_key, self.backend
        )
        requests: dict[str, str] = {}
        for name in activity.requests:
            if name not in view:
                raise AuthorizationError(
                    f"activity {activity_id!r} requests {name!r} but "
                    f"{self.identity!r} cannot decrypt it (policy/"
                    f"predecessor mismatch)"
                )
            requests[name] = view[name]
        timings = AeaTimings(
            verify_seconds=time.perf_counter() - alpha_start,
            signatures_verified=report.signatures_verified,
            cers_seen=report.cers_checked,
        )

        # participant acts ------------------------------------------------------
        context = ActivityContext(
            activity_id=activity_id,
            iteration=iteration,
            participant=self.identity,
            requests=requests,
            expected_responses={s.name: s.ftype for s in activity.responses},
            definition=definition,
            process_id=document.process_id,
        )
        values = dict(responder(context)) if callable(responder) \
            else dict(responder)
        declared = set(activity.response_names)
        if set(values) != declared:
            raise RuntimeFault(
                f"activity {activity_id!r} must produce exactly "
                f"{sorted(declared)}, got {sorted(values)}"
            )

        # β phase: encrypt + sign -------------------------------------------------
        beta_start = time.perf_counter()
        new_document = document.clone_for_append()
        targets = cascade_targets(new_document, definition, activity_id)
        routing: RoutingDecision | None

        if mode == "basic":
            merged_view = view.merged_with(values)
            typed = merged_view.typed(definition)

            def readers_for(fieldname: str) -> dict[str, RsaPublicKey]:
                names = definition.policy.readers_for(
                    definition, activity_id, fieldname, typed
                )
                return {
                    identity: self.directory.public_key_of(identity)
                    for identity in names
                }

            cer = make_standard_cer(
                activity_id, iteration, self.keypair, values,
                readers_for, targets, self.backend,
            )
            new_document.append_cer(cer)
            timings.sign_seconds = time.perf_counter() - beta_start
            try:
                routing = route_after(definition, activity_id, typed)
            except RoutingError:
                raise
        else:
            cer = make_intermediate_cer(
                activity_id, iteration, self.keypair, values,
                tfc_identity, tfc_public_key, targets, self.backend,
            )
            new_document.append_cer(cer)
            timings.sign_seconds = time.perf_counter() - beta_start
            routing = None  # the TFC server decides

        return AeaResult(
            document=new_document,
            activity_id=activity_id,
            iteration=iteration,
            routing=routing,
            timings=timings,
            report=report,
            mode=mode,
            values=values,
        )

    # -- run-time amendments (dynamic flow control / security policy) ------

    def amend(self, data: bytes | Dra4wfmsDocument | DeltaDocument,
              amendment: Amendment) -> Dra4wfmsDocument:
        """Embed a signed run-time amendment into a routed document.

        Verifies the document first, checks this identity is authorised
        to apply *amendment* under the current effective definition,
        and appends an amendment CER whose signature countersigns the
        document frontier.  Returns the new document; the caller routes
        it onwards like any other copy.
        """
        document = self._materialize(data)
        verify_document(
            document, self.directory, self.backend,
            definition_reader=(self.identity, self.keypair.private_key),
            cache=self.verify_cache,
        )
        current = effective_definition(
            document,
            self.identity if document.definition_is_encrypted else None,
            self.keypair.private_key if document.definition_is_encrypted
            else None,
            self.backend,
        )
        check_authorized(amendment, self.identity, current)

        new_document = document.clone_for_append()
        sequence = len(amendment_cers(new_document))
        frontier = [
            cer.signature.element for cer in frontier_cers(new_document)
        ]
        cer = make_amendment_cer(amendment, sequence, self.keypair,
                                 frontier, self.backend)
        new_document.append_cer(cer)
        return new_document
