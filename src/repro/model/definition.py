"""Workflow process definitions: the directed graph of activities.

A :class:`WorkflowDefinition` is the computerized representation of the
business process (paper §1): activities, control and data flow, and the
security policy.  It is the *static* half of a DRA4WfMS document — the
workflow designer signs it once and every AEA verifies that signature
before trusting anything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Mapping

from ..errors import DefinitionError, RoutingError
from .activity import Activity
from .controlflow import END, JoinKind, SplitKind, Transition
from .expressions import evaluate_guard
from .policy import SecurityPolicy

__all__ = ["WorkflowDefinition"]


@dataclass
class WorkflowDefinition:
    """A workflow process definition plus its security policy.

    Parameters
    ----------
    process_name:
        Human-readable name; the unique *process id* is chosen per
        instance when the initial document is built (§2.1: "a unique
        process id … for supporting multiple instances … and resisting
        replay attacks").
    designer:
        Identity of the workflow designer, who signs the definition.
    start_activity:
        Id of the entry activity.
    """

    process_name: str
    designer: str
    activities: dict[str, Activity] = dataclass_field(default_factory=dict)
    transitions: list[Transition] = dataclass_field(default_factory=list)
    start_activity: str = ""
    policy: SecurityPolicy = dataclass_field(default_factory=SecurityPolicy)
    description: str = ""

    # -- construction --------------------------------------------------------

    def add_activity(self, activity: Activity) -> None:
        """Add *activity*, rejecting duplicate ids."""
        if activity.activity_id in self.activities:
            raise DefinitionError(
                f"duplicate activity id {activity.activity_id!r}"
            )
        self.activities[activity.activity_id] = activity
        if not self.start_activity:
            self.start_activity = activity.activity_id

    def add_transition(self, transition: Transition) -> None:
        """Add a control-flow edge between two existing activities."""
        if transition.source not in self.activities:
            raise DefinitionError(
                f"transition references unknown activity {transition.source!r}"
            )
        if transition.target != END and transition.target not in self.activities:
            raise DefinitionError(
                f"transition references unknown activity {transition.target!r}"
            )
        self.transitions.append(transition)

    # -- topology accessors ----------------------------------------------------

    def activity(self, activity_id: str) -> Activity:
        """Look up an activity by id."""
        try:
            return self.activities[activity_id]
        except KeyError:
            raise DefinitionError(f"unknown activity {activity_id!r}") from None

    def outgoing(self, activity_id: str) -> list[Transition]:
        """Outgoing transitions of an activity, by priority then order."""
        self.activity(activity_id)
        edges = [t for t in self.transitions if t.source == activity_id]
        return sorted(edges, key=lambda t: t.priority)

    def incoming(self, activity_id: str) -> list[Transition]:
        """Incoming transitions of an activity."""
        self.activity(activity_id)
        return [t for t in self.transitions if t.target == activity_id]

    def predecessors(self, activity_id: str) -> list[str]:
        """Ids of activities with an edge into *activity_id*."""
        return [t.source for t in self.incoming(activity_id)]

    def end_activities(self) -> list[str]:
        """Activities where the process can terminate.

        Either no outgoing transitions at all, or an explicit edge to
        the :data:`~repro.model.controlflow.END` sentinel.
        """
        sources = {t.source for t in self.transitions}
        to_end = {t.source for t in self.transitions if t.target == END}
        return [
            aid for aid in self.activities
            if aid not in sources or aid in to_end
        ]

    @property
    def participants(self) -> tuple[str, ...]:
        """All distinct participants, sorted."""
        return tuple(sorted({a.participant for a in self.activities.values()}))

    def fields_produced(self) -> dict[str, str]:
        """Map each response variable to the activity producing it."""
        produced: dict[str, str] = {}
        for activity in self.activities.values():
            for spec in activity.responses:
                if spec.name in produced:
                    raise DefinitionError(
                        f"variable {spec.name!r} produced by both "
                        f"{produced[spec.name]!r} and {activity.activity_id!r}"
                    )
                produced[spec.name] = activity.activity_id
        return produced

    # -- routing ----------------------------------------------------------------

    def successors(self, activity_id: str,
                   variables: Mapping[str, object] | None = None) -> list[str]:
        """Evaluate control flow after *activity_id* completes.

        * ``NONE`` split: the single outgoing edge (empty at an end
          activity).
        * ``AND`` split: all outgoing edges fire.
        * ``XOR`` split: guards are evaluated in priority order over
          *variables*; the first match wins, the unguarded edge is the
          default.  Raises :class:`RoutingError` when no edge matches or
          the guards cannot be evaluated.
        """
        activity = self.activity(activity_id)
        edges = self.outgoing(activity_id)
        if not edges:
            return []
        if activity.split is SplitKind.NONE:
            if len(edges) > 1:
                raise RoutingError(
                    f"activity {activity_id!r} has {len(edges)} outgoing "
                    f"edges but split=NONE"
                )
            return [] if edges[0].target == END else [edges[0].target]
        if activity.split is SplitKind.AND:
            return [t.target for t in edges if t.target != END]
        # XOR
        default: Transition | None = None
        for transition in edges:
            if transition.condition is None:
                if default is not None:
                    raise RoutingError(
                        f"XOR-split at {activity_id!r} has multiple "
                        f"default edges"
                    )
                default = transition
                continue
            if variables is None:
                raise RoutingError(
                    f"XOR-split at {activity_id!r} needs variables to "
                    f"evaluate its guards"
                )
            if evaluate_guard(transition.condition, variables):  # type: ignore[arg-type]
                return [] if transition.target == END else [transition.target]
        if default is not None:
            return [] if default.target == END else [default.target]
        raise RoutingError(
            f"no guard of the XOR-split at {activity_id!r} matched and "
            f"there is no default edge"
        )

    def and_join_arity(self, activity_id: str) -> int:
        """Number of branches an AND-join waits for (1 for other joins)."""
        activity = self.activity(activity_id)
        if activity.join is JoinKind.AND:
            return len(self.incoming(activity_id))
        return 1

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization (used by the XPDL layer and hashing)."""
        return {
            "process_name": self.process_name,
            "designer": self.designer,
            "description": self.description,
            "start_activity": self.start_activity,
            "activities": [a.to_dict() for a in self.activities.values()],
            "transitions": [t.to_dict() for t in self.transitions],
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "WorkflowDefinition":
        """Deserialize the output of :meth:`to_dict`."""
        definition = cls(
            process_name=str(data["process_name"]),
            designer=str(data["designer"]),
            description=str(data.get("description", "")),
        )
        for item in data.get("activities", ()):  # type: ignore[union-attr]
            definition.add_activity(Activity.from_dict(item))  # type: ignore[arg-type]
        for item in data.get("transitions", ()):  # type: ignore[union-attr]
            definition.add_transition(Transition.from_dict(item))  # type: ignore[arg-type]
        definition.start_activity = str(data.get("start_activity", ""))
        definition.policy = SecurityPolicy.from_dict(
            data.get("policy", {})  # type: ignore[arg-type]
        )
        return definition

    # -- convenience -----------------------------------------------------------------

    def requesting_activities(self, fieldname: str) -> list[str]:
        """Activities that request (read) *fieldname*."""
        return [
            a.activity_id for a in self.activities.values()
            if fieldname in a.requests
        ]

    def __iter__(self) -> Iterable[Activity]:
        return iter(self.activities.values())
