"""Rendering workflow definitions: Graphviz DOT and ASCII summaries.

Process diagrams are how the paper communicates (Figs. 1–9); an
open-source release needs the equivalent tooling.  ``to_dot`` emits a
Graphviz digraph (guards as edge labels, split/join kinds as node
shapes); ``to_ascii`` prints a terminal-friendly adjacency summary used
by the examples and the CLI.
"""

from __future__ import annotations

from .controlflow import END, JoinKind, SplitKind
from .definition import WorkflowDefinition

__all__ = ["to_dot", "to_ascii"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(definition: WorkflowDefinition,
           include_participants: bool = True) -> str:
    """Render a definition as a Graphviz DOT digraph.

    AND-split/join activities render as boxes with doubled borders,
    XOR routers as diamonds, plain activities as rounded boxes; guard
    conditions label their edges; termination edges point at a filled
    end circle (the paper's "End of workflow" marker).
    """
    lines = [
        f'digraph "{_escape(definition.process_name)}" {{',
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=11];',
        '  edge [fontname="Helvetica", fontsize=9];',
        '  __start__ [shape=circle, label="", width=0.25, '
        "style=filled, fillcolor=black];",
    ]
    has_end = any(t.target == END for t in definition.transitions)
    if has_end:
        lines.append(
            '  __end__ [shape=doublecircle, label="", width=0.2, '
            "style=filled, fillcolor=black];"
        )

    for activity in definition.activities.values():
        if (activity.split is SplitKind.XOR
                or activity.join is JoinKind.XOR):
            shape = "diamond"
        elif (activity.split is SplitKind.AND
              or activity.join is JoinKind.AND):
            shape = "box, peripheries=2"
        else:
            shape = "box, style=rounded"
        label = activity.name or activity.activity_id
        if include_participants:
            label = f"{label}\\n{activity.participant}"
        lines.append(
            f'  "{_escape(activity.activity_id)}" '
            f'[shape={shape}, label="{_escape(label)}"];'
        )

    lines.append(f'  __start__ -> "{_escape(definition.start_activity)}";')
    for transition in definition.transitions:
        target = "__end__" if transition.target == END \
            else f'"{_escape(transition.target)}"'
        attributes = []
        if transition.condition is not None:
            attributes.append(f'label="{_escape(transition.condition)}"')
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(
            f'  "{_escape(transition.source)}" -> {target}{suffix};'
        )
    # Implicit ends (no outgoing edges at all).
    sources = {t.source for t in definition.transitions}
    for activity_id in definition.activities:
        if activity_id not in sources:
            if not has_end:
                lines.append(
                    '  __end__ [shape=doublecircle, label="", width=0.2, '
                    "style=filled, fillcolor=black];"
                )
                has_end = True
            lines.append(f'  "{_escape(activity_id)}" -> __end__;')
    lines.append("}")
    return "\n".join(lines)


def to_ascii(definition: WorkflowDefinition) -> str:
    """Terminal-friendly summary: one line per activity with its edges."""
    lines = [
        f"workflow {definition.process_name!r} "
        f"(designer {definition.designer})",
    ]
    for activity in definition.activities.values():
        marks = []
        if activity.activity_id == definition.start_activity:
            marks.append("start")
        if activity.split is not SplitKind.NONE:
            marks.append(f"split={activity.split.value}")
        if activity.join is not JoinKind.NONE:
            marks.append(f"join={activity.join.value}")
        suffix = f" [{', '.join(marks)}]" if marks else ""
        lines.append(f"  {activity.activity_id}: "
                     f"{activity.participant}{suffix}")
        for transition in definition.outgoing(activity.activity_id):
            guard = (f"  when {transition.condition}"
                     if transition.condition is not None else "")
            target = "(end)" if transition.target == END \
                else transition.target
            lines.append(f"    -> {target}{guard}")
        if not definition.outgoing(activity.activity_id):
            lines.append("    -> (end)")
    return "\n".join(lines)
