"""Security policy: who may read which datum, and when it is decided.

The second part of a workflow definition (paper §2) is the *security
policy*: how each element of the process instance is encrypted.  Rules
map a response variable of an activity to its authorised readers.

Readers may be **conditional** (the Fig. 4 Chinese-wall scenario):
"encrypt ``Y`` for John if ``Func(X)``, else for Mary".  A conditional
clause can only be resolved by a party allowed to see the guard's
variables — in the advanced operational model that party is the TFC
server, which is why :attr:`SecurityPolicy.requires_tfc` exists: the
basic model refuses to run workflows whose policy it cannot enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..errors import PolicyError
from .expressions import evaluate_guard, guard_variables, validate_guard

if TYPE_CHECKING:  # pragma: no cover
    from .definition import WorkflowDefinition

__all__ = ["ReaderClause", "FieldRule", "SecurityPolicy"]


@dataclass(frozen=True)
class ReaderClause:
    """One (possibly conditional) reader set for a field.

    ``condition is None`` marks the default clause.
    """

    readers: tuple[str, ...]
    condition: str | None = None

    def __post_init__(self) -> None:
        if not self.readers:
            raise PolicyError("a reader clause must name at least one reader")
        if self.condition is not None:
            validate_guard(self.condition)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {"readers": list(self.readers), "condition": self.condition}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ReaderClause":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            readers=tuple(data["readers"]),  # type: ignore[arg-type]
            condition=(None if data.get("condition") is None
                       else str(data["condition"])),
        )


@dataclass(frozen=True)
class FieldRule:
    """Reader clauses for one response variable of one activity."""

    activity_id: str
    fieldname: str
    clauses: tuple[ReaderClause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise PolicyError(
                f"rule for {self.activity_id}.{self.fieldname} has no clauses"
            )
        defaults = [c for c in self.clauses if c.condition is None]
        if len(defaults) > 1:
            raise PolicyError(
                f"rule for {self.activity_id}.{self.fieldname} has multiple "
                f"default clauses"
            )

    @property
    def conditional(self) -> bool:
        """True when any clause is guarded."""
        return any(clause.condition is not None for clause in self.clauses)

    def guard_variables(self) -> set[str]:
        """All variables read by this rule's guards."""
        names: set[str] = set()
        for clause in self.clauses:
            if clause.condition is not None:
                names |= guard_variables(clause.condition)
        return names

    def resolve(self, variables: Mapping[str, object] | None) -> tuple[str, ...]:
        """Return the reader set chosen by the guards.

        Conditional clauses are tried in order; the default clause (if
        any) applies when none matches.  When the rule is conditional
        and *variables* is ``None`` (the AEA cannot see the guard
        inputs), :class:`PolicyError` is raised — the caller must route
        through a TFC server instead.
        """
        default: ReaderClause | None = None
        for clause in self.clauses:
            if clause.condition is None:
                default = clause
                continue
            if variables is None:
                raise PolicyError(
                    f"rule for {self.activity_id}.{self.fieldname} is "
                    f"conditional; resolving it requires the guard "
                    f"variables (advanced model / TFC server)"
                )
            if evaluate_guard(clause.condition, variables):  # type: ignore[arg-type]
                return clause.readers
        if default is not None:
            return default.readers
        raise PolicyError(
            f"no clause of rule {self.activity_id}.{self.fieldname} matched "
            f"and there is no default"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {
            "activity_id": self.activity_id,
            "field": self.fieldname,
            "clauses": [clause.to_dict() for clause in self.clauses],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FieldRule":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            activity_id=str(data["activity_id"]),
            fieldname=str(data["field"]),
            clauses=tuple(
                ReaderClause.from_dict(item)  # type: ignore[arg-type]
                for item in data["clauses"]  # type: ignore[union-attr]
            ),
        )


@dataclass
class SecurityPolicy:
    """The security-definition section of a workflow definition.

    Parameters
    ----------
    rules:
        Explicit per-field reader rules.  Fields without a rule fall
        back to "participants of every activity that requests the
        field, plus the producer, plus ``extra_readers``".
    extra_readers:
        Identities added to every reader set (e.g. an auditor, or the
        workflow designer for monitoring).
    conceal_flow_from:
        Participants who must not learn the control-flow routing
        (Fig. 4).  Non-empty ⇒ the workflow requires the advanced model.
    require_timestamps:
        When True, every CER must carry a TFC timestamp (monitoring,
        §2.2) — again forcing the advanced model.
    """

    rules: dict[tuple[str, str], FieldRule] = field(default_factory=dict)
    extra_readers: tuple[str, ...] = ()
    conceal_flow_from: tuple[str, ...] = ()
    require_timestamps: bool = False

    def add_rule(self, rule: FieldRule) -> None:
        """Register *rule*, rejecting duplicates."""
        key = (rule.activity_id, rule.fieldname)
        if key in self.rules:
            raise PolicyError(
                f"duplicate rule for {rule.activity_id}.{rule.fieldname}"
            )
        self.rules[key] = rule

    def rule_for(self, activity_id: str, fieldname: str) -> FieldRule | None:
        """The explicit rule for a field, or ``None``."""
        return self.rules.get((activity_id, fieldname))

    @property
    def requires_tfc(self) -> bool:
        """True when the basic operational model cannot enforce this policy."""
        if self.conceal_flow_from or self.require_timestamps:
            return True
        return any(rule.conditional for rule in self.rules.values())

    def readers_for(self,
                    definition: "WorkflowDefinition",
                    activity_id: str,
                    fieldname: str,
                    variables: Mapping[str, object] | None = None,
                    ) -> tuple[str, ...]:
        """Resolve the full reader set for ``activity_id.fieldname``.

        The producer of the field and :attr:`extra_readers` are always
        included — a participant must be able to re-read what they
        wrote, and auditors see everything.
        """
        activity = definition.activity(activity_id)
        rule = self.rule_for(activity_id, fieldname)
        if rule is not None:
            readers = set(rule.resolve(variables))
        else:
            readers = {
                other.participant
                for other in definition.activities.values()
                if fieldname in other.requests
            }
        readers.add(activity.participant)
        readers.update(self.extra_readers)
        return tuple(sorted(readers))

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {
            "rules": [rule.to_dict() for rule in self.rules.values()],
            "extra_readers": list(self.extra_readers),
            "conceal_flow_from": list(self.conceal_flow_from),
            "require_timestamps": self.require_timestamps,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SecurityPolicy":
        """Deserialize the output of :meth:`to_dict`."""
        policy = cls(
            extra_readers=tuple(data.get("extra_readers", ())),  # type: ignore[arg-type]
            conceal_flow_from=tuple(data.get("conceal_flow_from", ())),  # type: ignore[arg-type]
            require_timestamps=bool(data.get("require_timestamps", False)),
        )
        for item in data.get("rules", ()):  # type: ignore[union-attr]
            policy.add_rule(FieldRule.from_dict(item))  # type: ignore[arg-type]
        return policy
