"""Safe guard-expression evaluation for XOR-split conditions.

The paper routes on Boolean predicates over workflow variables
(``Func(X)`` in Fig. 4, ``b`` in Fig. 3B).  Guards here are written in a
restricted Python expression syntax — comparisons, boolean operators,
arithmetic, and variable names — parsed with :mod:`ast` and evaluated
against the decrypted workflow variables.  Anything outside the
whitelist (calls, attribute access, subscripts, comprehensions,
lambdas…) is rejected at *definition* time, so a malicious workflow
definition cannot smuggle code into an AEA or TFC server.
"""

from __future__ import annotations

import ast
from typing import Mapping

from ..errors import ExpressionError

__all__ = ["compile_guard", "evaluate_guard", "validate_guard", "guard_variables"]

Value = bool | int | float | str

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Mod,
    ast.Compare,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.In, ast.NotIn,
    ast.Name, ast.Load,
    ast.Constant,
    ast.Tuple, ast.List,
)


def _check(node: ast.AST) -> None:
    for child in ast.walk(node):
        if not isinstance(child, _ALLOWED_NODES):
            raise ExpressionError(
                f"disallowed syntax in guard: {type(child).__name__}"
            )
        if isinstance(child, ast.Constant) and not isinstance(
            child.value, (bool, int, float, str)
        ):
            raise ExpressionError(
                f"disallowed constant in guard: {child.value!r}"
            )


def compile_guard(expression: str) -> ast.Expression:
    """Parse and whitelist-check a guard, returning its AST."""
    if not isinstance(expression, str) or not expression.strip():
        raise ExpressionError("guard expression must be a non-empty string")
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"syntax error in guard {expression!r}: {exc}") from exc
    _check(tree)
    return tree


def validate_guard(expression: str) -> None:
    """Raise :class:`ExpressionError` if *expression* is not a legal guard."""
    compile_guard(expression)


def guard_variables(expression: str) -> set[str]:
    """The set of variable names a guard reads (for policy validation)."""
    tree = compile_guard(expression)
    return {
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    } - {"True", "False", "None"}


class _Evaluator(ast.NodeVisitor):
    def __init__(self, variables: Mapping[str, Value]) -> None:
        self.variables = variables

    def visit_Expression(self, node: ast.Expression) -> Value:
        return self.visit(node.body)

    def visit_Constant(self, node: ast.Constant) -> Value:
        return node.value

    def visit_Name(self, node: ast.Name) -> Value:
        try:
            return self.variables[node.id]
        except KeyError:
            raise ExpressionError(
                f"guard references undefined variable {node.id!r}"
            ) from None

    def visit_BoolOp(self, node: ast.BoolOp) -> Value:
        if isinstance(node.op, ast.And):
            result: Value = True
            for value_node in node.values:
                result = self.visit(value_node)
                if not result:
                    return result
            return result
        result = False
        for value_node in node.values:
            result = self.visit(value_node)
            if result:
                return result
        return result

    def visit_UnaryOp(self, node: ast.UnaryOp) -> Value:
        operand = self.visit(node.operand)
        if isinstance(node.op, ast.Not):
            return not operand
        if isinstance(node.op, ast.USub):
            return -operand  # type: ignore[operator]
        return +operand  # type: ignore[operator]

    def visit_BinOp(self, node: ast.BinOp) -> Value:
        left, right = self.visit(node.left), self.visit(node.right)
        try:
            if isinstance(node.op, ast.Add):
                return left + right  # type: ignore[operator]
            if isinstance(node.op, ast.Sub):
                return left - right  # type: ignore[operator]
            if isinstance(node.op, ast.Mult):
                return left * right  # type: ignore[operator]
            if isinstance(node.op, ast.Div):
                return left / right  # type: ignore[operator]
            return left % right  # type: ignore[operator]
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(f"guard arithmetic failed: {exc}") from exc

    def visit_Compare(self, node: ast.Compare) -> Value:
        left = self.visit(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.visit(comparator)
            try:
                if isinstance(op, ast.Eq):
                    ok = left == right
                elif isinstance(op, ast.NotEq):
                    ok = left != right
                elif isinstance(op, ast.Lt):
                    ok = left < right  # type: ignore[operator]
                elif isinstance(op, ast.LtE):
                    ok = left <= right  # type: ignore[operator]
                elif isinstance(op, ast.Gt):
                    ok = left > right  # type: ignore[operator]
                elif isinstance(op, ast.GtE):
                    ok = left >= right  # type: ignore[operator]
                elif isinstance(op, ast.In):
                    ok = left in right  # type: ignore[operator]
                else:
                    ok = left not in right  # type: ignore[operator]
            except TypeError as exc:
                raise ExpressionError(f"guard comparison failed: {exc}") from exc
            if not ok:
                return False
            left = right
        return True

    def visit_Tuple(self, node: ast.Tuple) -> tuple:
        return tuple(self.visit(item) for item in node.elts)

    def visit_List(self, node: ast.List) -> list:
        return [self.visit(item) for item in node.elts]

    def generic_visit(self, node: ast.AST) -> Value:  # pragma: no cover
        raise ExpressionError(f"unexpected node {type(node).__name__}")


def evaluate_guard(expression: str, variables: Mapping[str, Value]) -> bool:
    """Evaluate a guard against the workflow *variables*.

    Returns the truthiness of the result.  Raises
    :class:`ExpressionError` for undefined variables or type errors —
    routing must never silently guess.
    """
    tree = compile_guard(expression)
    return bool(_Evaluator(variables).visit(tree))
