"""Control-flow primitives: splits, joins, and transitions.

The paper's workflows (Fig. 3, Fig. 9) use the classic WfMC control
patterns: sequence, AND-split/AND-join (parallel branches), XOR-split
(conditional branch, "OR-split" in the paper's Fig. 4), XOR-join, and
loops (a back edge guarded by a predicate, Fig. 3B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SplitKind", "JoinKind", "Transition", "END"]

#: Sentinel transition target marking workflow termination.  The
#: paper's process diagrams have an explicit "End of workflow" node
#: (Fig. 9); a transition to ``END`` routes the document nowhere and
#: the process instance is complete.
END = "__end__"


class SplitKind(enum.Enum):
    """Outgoing-edge semantics of an activity."""

    #: At most one outgoing transition; plain sequence.
    NONE = "none"
    #: All outgoing transitions fire in parallel (AND-split).
    AND = "and"
    #: Exactly one outgoing transition fires, chosen by guard
    #: conditions evaluated over the workflow variables (XOR-split).
    XOR = "xor"


class JoinKind(enum.Enum):
    """Incoming-edge semantics of an activity."""

    #: At most one incoming transition; plain sequence.
    NONE = "none"
    #: The activity waits for *all* incoming branches (AND-join); the
    #: routed documents are merged before execution.
    AND = "and"
    #: The activity fires on the first incoming document (XOR-join);
    #: loops re-enter through XOR-joins.
    XOR = "xor"


@dataclass(frozen=True)
class Transition:
    """A directed control-flow edge between two activities.

    Parameters
    ----------
    source, target:
        Activity ids.
    condition:
        Guard expression (see :mod:`repro.model.expressions`) for
        XOR-splits.  ``None`` marks the default (else) branch.
    priority:
        Evaluation order among the outgoing transitions of an
        XOR-split; lower evaluates first.
    """

    source: str
    target: str
    condition: str | None = None
    priority: int = 0

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {
            "source": self.source,
            "target": self.target,
            "condition": self.condition,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Transition":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            source=str(data["source"]),
            target=str(data["target"]),
            condition=(None if data.get("condition") is None
                       else str(data["condition"])),
            priority=int(data.get("priority", 0)),  # type: ignore[arg-type]
        )
