"""Fluent builder for workflow definitions.

The raw model classes are precise but verbose; the builder is the
ergonomic front door used throughout the examples:

.. code-block:: python

    wf = (WorkflowBuilder("purchase-order", designer="designer@acme")
          .activity("A", "peter@acme", responses=["amount"], split="and")
          .activity("B1", "amy@acme", requests=["amount"],
                    responses=["approval1"])
          .activity("B2", "bob@acme", requests=["amount"],
                    responses=["approval2"])
          .activity("C", "carol@acme", join="and",
                    requests=["approval1", "approval2"],
                    responses=["decision"], split="xor")
          .transition("A", "B1").transition("A", "B2")
          .transition("B1", "C").transition("B2", "C")
          .transition("C", "D", condition="decision == 'accept'")
          .transition("C", "A")      # default: loop back
          .activity("D", "dave@megacorp", requests=["decision"])
          .build())
"""

from __future__ import annotations

from typing import Iterable

from ..errors import DefinitionError
from .activity import Activity, FieldSpec
from .controlflow import JoinKind, SplitKind, Transition
from .definition import WorkflowDefinition
from .policy import FieldRule, ReaderClause, SecurityPolicy
from .validate import validate_definition

__all__ = ["WorkflowBuilder"]


def _coerce_fields(fields: Iterable[str | FieldSpec] | None) -> tuple[FieldSpec, ...]:
    if not fields:
        return ()
    out = []
    for item in fields:
        out.append(item if isinstance(item, FieldSpec) else FieldSpec(name=item))
    return tuple(out)


class WorkflowBuilder:
    """Incrementally assemble and validate a :class:`WorkflowDefinition`."""

    def __init__(self, process_name: str, designer: str,
                 description: str = "") -> None:
        self._definition = WorkflowDefinition(
            process_name=process_name,
            designer=designer,
            description=description,
        )
        self._pending_transitions: list[Transition] = []
        self._start: str | None = None

    def activity(self, activity_id: str, participant: str, *,
                 name: str = "",
                 description: str = "",
                 requests: Iterable[str] | None = None,
                 responses: Iterable[str | FieldSpec] | None = None,
                 split: str = "none",
                 join: str = "none") -> "WorkflowBuilder":
        """Declare an activity; the first one becomes the start by default."""
        self._definition.add_activity(Activity(
            activity_id=activity_id,
            participant=participant,
            name=name,
            description=description,
            requests=tuple(requests or ()),
            responses=_coerce_fields(responses),
            split=SplitKind(split),
            join=JoinKind(join),
        ))
        return self

    def transition(self, source: str, target: str, *,
                   condition: str | None = None,
                   priority: int = 0) -> "WorkflowBuilder":
        """Declare a control-flow edge.

        Transitions may be declared before their endpoint activities;
        they are resolved at :meth:`build` time.
        """
        self._pending_transitions.append(Transition(
            source=source, target=target,
            condition=condition, priority=priority,
        ))
        return self

    def start(self, activity_id: str) -> "WorkflowBuilder":
        """Override the start activity (default: first declared)."""
        self._start = activity_id
        return self

    def readers(self, activity_id: str, fieldname: str,
                readers: Iterable[str], *,
                condition: str | None = None) -> "WorkflowBuilder":
        """Add a (possibly conditional) reader clause for a field.

        Repeated calls for the same field append clauses; the clause
        without a condition is the default.
        """
        key = (activity_id, fieldname)
        existing = self._definition.policy.rules.get(key)
        clause = ReaderClause(readers=tuple(readers), condition=condition)
        if existing is None:
            self._definition.policy.rules[key] = FieldRule(
                activity_id=activity_id, fieldname=fieldname,
                clauses=(clause,),
            )
        else:
            self._definition.policy.rules[key] = FieldRule(
                activity_id=activity_id, fieldname=fieldname,
                clauses=existing.clauses + (clause,),
            )
        return self

    def extra_readers(self, *identities: str) -> "WorkflowBuilder":
        """Identities added to every reader set (auditors, monitors)."""
        policy = self._definition.policy
        policy.extra_readers = tuple(dict.fromkeys(
            policy.extra_readers + identities
        ))
        return self

    def conceal_flow_from(self, *identities: str) -> "WorkflowBuilder":
        """Hide control-flow routing from these participants (needs TFC)."""
        policy = self._definition.policy
        policy.conceal_flow_from = tuple(dict.fromkeys(
            policy.conceal_flow_from + identities
        ))
        return self

    def require_timestamps(self, required: bool = True) -> "WorkflowBuilder":
        """Demand TFC timestamps on every CER (monitoring support)."""
        self._definition.policy.require_timestamps = required
        return self

    def build(self, validate: bool = True) -> WorkflowDefinition:
        """Resolve pending transitions and return the validated definition."""
        for transition in self._pending_transitions:
            self._definition.add_transition(transition)
        self._pending_transitions = []
        if self._start is not None:
            if self._start not in self._definition.activities:
                raise DefinitionError(
                    f"start activity {self._start!r} was never declared"
                )
            self._definition.start_activity = self._start
        if validate:
            validate_definition(self._definition)
        return self._definition
