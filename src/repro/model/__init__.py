"""Workflow process model: activities, control flow, policy, XPDL.

The *workflow definition* (paper §1–2) is the static half of every
DRA4WfMS document: the activity graph with its control and data flow,
plus the security policy describing how each datum must be encrypted.
"""

from .activity import Activity, FieldSpec
from .builder import WorkflowBuilder
from .controlflow import END, JoinKind, SplitKind, Transition
from .definition import WorkflowDefinition
from .expressions import (
    compile_guard,
    evaluate_guard,
    guard_variables,
    validate_guard,
)
from .policy import FieldRule, ReaderClause, SecurityPolicy
from .render import to_ascii, to_dot
from .validate import definition_graph, validate_definition
from .xpdl import definition_from_xml, definition_to_xml

__all__ = [
    "Activity",
    "END",
    "FieldRule",
    "FieldSpec",
    "JoinKind",
    "ReaderClause",
    "SecurityPolicy",
    "SplitKind",
    "Transition",
    "WorkflowBuilder",
    "WorkflowDefinition",
    "compile_guard",
    "definition_from_xml",
    "definition_graph",
    "definition_to_xml",
    "evaluate_guard",
    "guard_variables",
    "validate_definition",
    "to_ascii",
    "to_dot",
    "validate_guard",
]
