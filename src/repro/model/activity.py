"""Activities: the nodes of a workflow process definition.

An activity (paper §1) is a logical step with a designated participant,
the data it *requests* (variables shown to the participant, decrypted
by their AEA), and the *responses* it produces (variables appended to
the document as the element-wise-encrypted execution result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DefinitionError
from .controlflow import JoinKind, SplitKind

__all__ = ["FieldSpec", "Activity"]

_VALID_TYPES = ("string", "int", "float", "bool", "file")


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of one response variable an activity produces."""

    name: str
    ftype: str = "string"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise DefinitionError(
                f"field name {self.name!r} must be a valid identifier"
            )
        if self.ftype not in _VALID_TYPES:
            raise DefinitionError(
                f"field {self.name!r} has unknown type {self.ftype!r} "
                f"(expected one of {', '.join(_VALID_TYPES)})"
            )

    def to_dict(self) -> dict[str, str]:
        """JSON-safe serialization."""
        return {"name": self.name, "ftype": self.ftype,
                "description": self.description}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "FieldSpec":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(name=data["name"], ftype=data.get("ftype", "string"),
                   description=data.get("description", ""))


@dataclass(frozen=True)
class Activity:
    """One workflow activity.

    Parameters
    ----------
    activity_id:
        Unique id within the definition (``"A1"``, ``"B2"``, …).
    participant:
        Identity of the designated executor.  The AEA refuses to run an
        activity on behalf of anyone else (paper §2.1 step 2).
    requests:
        Names of variables shown to the participant before execution.
        The participant must be an authorised reader of each (checked
        by policy validation).
    responses:
        Variables this activity produces.
    split / join:
        Control-flow semantics of the outgoing / incoming edges.
    """

    activity_id: str
    participant: str
    name: str = ""
    description: str = ""
    requests: tuple[str, ...] = ()
    responses: tuple[FieldSpec, ...] = ()
    split: SplitKind = SplitKind.NONE
    join: JoinKind = JoinKind.NONE
    metadata: dict[str, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.activity_id:
            raise DefinitionError("activity id must be non-empty")
        if not self.participant:
            raise DefinitionError(
                f"activity {self.activity_id!r} has no participant"
            )
        seen: set[str] = set()
        for spec in self.responses:
            if spec.name in seen:
                raise DefinitionError(
                    f"activity {self.activity_id!r} declares response "
                    f"{spec.name!r} twice"
                )
            seen.add(spec.name)

    @property
    def response_names(self) -> tuple[str, ...]:
        """Names of all response variables."""
        return tuple(spec.name for spec in self.responses)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {
            "activity_id": self.activity_id,
            "participant": self.participant,
            "name": self.name,
            "description": self.description,
            "requests": list(self.requests),
            "responses": [spec.to_dict() for spec in self.responses],
            "split": self.split.value,
            "join": self.join.value,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Activity":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            activity_id=str(data["activity_id"]),
            participant=str(data["participant"]),
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            requests=tuple(data.get("requests", ())),  # type: ignore[arg-type]
            responses=tuple(
                FieldSpec.from_dict(item)  # type: ignore[arg-type]
                for item in data.get("responses", ())
            ),
            split=SplitKind(str(data.get("split", "none"))),
            join=JoinKind(str(data.get("join", "none"))),
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )
