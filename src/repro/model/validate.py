"""Structural validation of workflow definitions.

Run by the workflow designer before signing the initial document and by
AEAs when they first parse a definition.  Uses :mod:`networkx` for the
graph-reachability checks.
"""

from __future__ import annotations

import networkx as nx

from ..errors import DefinitionError, PolicyError
from .controlflow import END, JoinKind, SplitKind
from .definition import WorkflowDefinition
from .expressions import guard_variables

__all__ = ["validate_definition", "definition_graph"]


def definition_graph(definition: WorkflowDefinition,
                     include_end: bool = False) -> nx.DiGraph:
    """Build the control-flow digraph of a definition.

    With *include_end*, transitions to the END sentinel appear as edges
    to a node named :data:`~repro.model.controlflow.END`.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(definition.activities)
    for transition in definition.transitions:
        if transition.target == END and not include_end:
            continue
        graph.add_edge(transition.source, transition.target)
    return graph


def validate_definition(definition: WorkflowDefinition) -> None:
    """Validate structure, control flow, data flow, and policy.

    Raises :class:`DefinitionError` or :class:`PolicyError` describing
    the first problem found.
    """
    if not definition.activities:
        raise DefinitionError("workflow has no activities")
    if definition.start_activity not in definition.activities:
        raise DefinitionError(
            f"start activity {definition.start_activity!r} does not exist"
        )

    graph = definition_graph(definition)

    # Every activity reachable from the start.
    reachable = nx.descendants(graph, definition.start_activity)
    reachable.add(definition.start_activity)
    unreachable = set(definition.activities) - reachable
    if unreachable:
        raise DefinitionError(
            f"activities unreachable from start: {sorted(unreachable)}"
        )

    # At least one end activity, and every activity can reach one.
    ends = definition.end_activities()
    if not ends:
        raise DefinitionError(
            "workflow has no end activity (every activity has outgoing "
            "edges — infinite process)"
        )
    can_finish = set(ends)
    for end in ends:
        can_finish |= nx.ancestors(graph, end)
    stuck = set(definition.activities) - can_finish
    if stuck:
        raise DefinitionError(
            f"activities that can never reach an end: {sorted(stuck)}"
        )

    produced = definition.fields_produced()

    for activity in definition.activities.values():
        out_edges = definition.outgoing(activity.activity_id)
        in_edges = definition.incoming(activity.activity_id)

        # Split consistency.
        if activity.split is SplitKind.AND and any(
            t.target == END for t in out_edges
        ):
            raise DefinitionError(
                f"{activity.activity_id!r}: AND-split branches cannot "
                f"target END (termination must be an exclusive choice)"
            )
        if activity.split is SplitKind.NONE and len(out_edges) > 1:
            raise DefinitionError(
                f"{activity.activity_id!r}: {len(out_edges)} outgoing edges "
                f"but split=NONE"
            )
        if activity.split is SplitKind.XOR:
            defaults = [t for t in out_edges if t.condition is None]
            if len(defaults) > 1:
                raise DefinitionError(
                    f"{activity.activity_id!r}: XOR-split with multiple "
                    f"default edges"
                )
            if len(out_edges) < 2:
                raise DefinitionError(
                    f"{activity.activity_id!r}: XOR-split needs at least "
                    f"two outgoing edges"
                )
            for transition in out_edges:
                if transition.condition is None:
                    continue
                for name in guard_variables(transition.condition):
                    if name not in produced:
                        raise DefinitionError(
                            f"guard on {transition.source}->"
                            f"{transition.target} reads {name!r}, which no "
                            f"activity produces"
                        )
        if activity.split is SplitKind.AND and len(out_edges) < 2:
            raise DefinitionError(
                f"{activity.activity_id!r}: AND-split needs at least two "
                f"outgoing edges"
            )

        # Join consistency.
        if activity.join is JoinKind.NONE and len(in_edges) > 1:
            raise DefinitionError(
                f"{activity.activity_id!r}: {len(in_edges)} incoming edges "
                f"but join=NONE"
            )
        if activity.join is JoinKind.AND and len(in_edges) < 2:
            raise DefinitionError(
                f"{activity.activity_id!r}: AND-join needs at least two "
                f"incoming edges"
            )

        # Requested variables must be produced somewhere.
        for name in activity.requests:
            if name not in produced:
                raise DefinitionError(
                    f"{activity.activity_id!r} requests {name!r}, which no "
                    f"activity produces"
                )

    # Policy rules must reference real fields, and every requester must
    # be a possible reader under at least one clause.
    for (activity_id, fieldname), rule in definition.policy.rules.items():
        if activity_id not in definition.activities:
            raise PolicyError(
                f"policy rule references unknown activity {activity_id!r}"
            )
        if fieldname not in definition.activity(activity_id).response_names:
            raise PolicyError(
                f"policy rule references {activity_id}.{fieldname}, but "
                f"that activity does not produce {fieldname!r}"
            )
        for name in rule.guard_variables():
            if name not in produced:
                raise PolicyError(
                    f"policy guard for {activity_id}.{fieldname} reads "
                    f"{name!r}, which no activity produces"
                )

    # Loops must re-enter through XOR-joins: an AND-join on a cycle can
    # never collect all branches and NONE-joins reject multiple edges.
    for cycle in nx.simple_cycles(graph):
        if not any(
            definition.activity(aid).join is JoinKind.XOR for aid in cycle
        ):
            raise DefinitionError(
                f"loop {cycle} has no XOR-join entry point; it could "
                f"never execute a second iteration"
            )
