"""XPDL-like XML serialization of workflow definitions.

The WfMC XPDL standard [20 in the paper] defines an XML interchange
format for process definitions; DRA4WfMS embeds the definition in the
application-definition section of every document.  This module converts
:class:`WorkflowDefinition` to and from that XML form.  The encoding is
canonical-friendly: attribute-ordering and whitespace never carry
meaning, so the designer's signature survives any parse/serialize
round trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..errors import DefinitionError
from .activity import Activity, FieldSpec
from .controlflow import JoinKind, SplitKind, Transition
from .definition import WorkflowDefinition
from .policy import FieldRule, ReaderClause, SecurityPolicy

__all__ = ["definition_to_xml", "definition_from_xml"]


def definition_to_xml(definition: WorkflowDefinition) -> ET.Element:
    """Serialize *definition* into a ``<WorkflowDefinition>`` element."""
    root = ET.Element("WorkflowDefinition", {
        "ProcessName": definition.process_name,
        "Designer": definition.designer,
        "StartActivity": definition.start_activity,
    })
    if definition.description:
        description = ET.SubElement(root, "Description")
        description.text = definition.description

    activities = ET.SubElement(root, "Activities")
    for activity in definition.activities.values():
        node = ET.SubElement(activities, "Activity", {
            "ActivityId": activity.activity_id,
            "Participant": activity.participant,
            "Split": activity.split.value,
            "Join": activity.join.value,
        })
        if activity.name:
            node.set("Name", activity.name)
        if activity.description:
            description = ET.SubElement(node, "Description")
            description.text = activity.description
        if activity.requests:
            requests = ET.SubElement(node, "Requests")
            for name in activity.requests:
                request = ET.SubElement(requests, "Request")
                request.text = name
        if activity.responses:
            responses = ET.SubElement(node, "Responses")
            for spec in activity.responses:
                response = ET.SubElement(responses, "Response", {
                    "Name": spec.name, "Type": spec.ftype,
                })
                if spec.description:
                    response.text = spec.description

    transitions = ET.SubElement(root, "Transitions")
    for transition in definition.transitions:
        node = ET.SubElement(transitions, "Transition", {
            "From": transition.source,
            "To": transition.target,
            "Priority": str(transition.priority),
        })
        if transition.condition is not None:
            condition = ET.SubElement(node, "Condition")
            condition.text = transition.condition

    root.append(_policy_to_xml(definition.policy))
    return root


def _policy_to_xml(policy: SecurityPolicy) -> ET.Element:
    node = ET.Element("SecurityPolicy", {
        "RequireTimestamps": "true" if policy.require_timestamps else "false",
    })
    if policy.extra_readers:
        extra = ET.SubElement(node, "ExtraReaders")
        for identity in policy.extra_readers:
            reader = ET.SubElement(extra, "Reader")
            reader.text = identity
    if policy.conceal_flow_from:
        conceal = ET.SubElement(node, "ConcealFlowFrom")
        for identity in policy.conceal_flow_from:
            participant = ET.SubElement(conceal, "Participant")
            participant.text = identity
    for rule in policy.rules.values():
        rule_node = ET.SubElement(node, "Rule", {
            "Activity": rule.activity_id, "Field": rule.fieldname,
        })
        for clause in rule.clauses:
            clause_node = ET.SubElement(rule_node, "Clause")
            if clause.condition is not None:
                condition = ET.SubElement(clause_node, "Condition")
                condition.text = clause.condition
            for identity in clause.readers:
                reader = ET.SubElement(clause_node, "Reader")
                reader.text = identity
    return node


def definition_from_xml(root: ET.Element) -> WorkflowDefinition:
    """Parse a ``<WorkflowDefinition>`` element back into the model."""
    if root.tag != "WorkflowDefinition":
        raise DefinitionError(
            f"expected <WorkflowDefinition>, got <{root.tag}>"
        )
    definition = WorkflowDefinition(
        process_name=root.get("ProcessName", ""),
        designer=root.get("Designer", ""),
    )
    description = root.find("Description")
    if description is not None and description.text:
        definition.description = description.text

    activities = root.find("Activities")
    if activities is None:
        raise DefinitionError("definition has no <Activities> section")
    for node in activities.findall("Activity"):
        requests = tuple(
            request.text or ""
            for request in node.findall("Requests/Request")
        )
        responses = tuple(
            FieldSpec(
                name=response.get("Name", ""),
                ftype=response.get("Type", "string"),
                description=response.text or "",
            )
            for response in node.findall("Responses/Response")
        )
        activity_description = node.find("Description")
        definition.add_activity(Activity(
            activity_id=node.get("ActivityId", ""),
            participant=node.get("Participant", ""),
            name=node.get("Name", ""),
            description=(activity_description.text or ""
                         if activity_description is not None else ""),
            requests=requests,
            responses=responses,
            split=SplitKind(node.get("Split", "none")),
            join=JoinKind(node.get("Join", "none")),
        ))

    transitions = root.find("Transitions")
    if transitions is not None:
        for node in transitions.findall("Transition"):
            condition_node = node.find("Condition")
            definition.add_transition(Transition(
                source=node.get("From", ""),
                target=node.get("To", ""),
                condition=(condition_node.text
                           if condition_node is not None else None),
                priority=int(node.get("Priority", "0")),
            ))

    definition.start_activity = root.get("StartActivity", "")
    policy_node = root.find("SecurityPolicy")
    if policy_node is not None:
        definition.policy = _policy_from_xml(policy_node)
    return definition


def _policy_from_xml(node: ET.Element) -> SecurityPolicy:
    policy = SecurityPolicy(
        extra_readers=tuple(
            reader.text or "" for reader in node.findall("ExtraReaders/Reader")
        ),
        conceal_flow_from=tuple(
            participant.text or ""
            for participant in node.findall("ConcealFlowFrom/Participant")
        ),
        require_timestamps=node.get("RequireTimestamps") == "true",
    )
    for rule_node in node.findall("Rule"):
        clauses = []
        for clause_node in rule_node.findall("Clause"):
            condition_node = clause_node.find("Condition")
            clauses.append(ReaderClause(
                readers=tuple(
                    reader.text or ""
                    for reader in clause_node.findall("Reader")
                ),
                condition=(condition_node.text
                           if condition_node is not None else None),
            ))
        policy.add_rule(FieldRule(
            activity_id=rule_node.get("Activity", ""),
            fieldname=rule_node.get("Field", ""),
            clauses=tuple(clauses),
        ))
    return policy
