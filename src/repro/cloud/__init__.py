"""Simulated cloud substrate: HDFS, HBase, document pool, portals, MapReduce.

Reproduces the deployment of paper §3/§4.2: portal servers in front of a
pool of DRA4WfMS documents stored in an HBase-like region-sharded store
over a replicated block store, with MapReduce monitoring jobs.
"""

from .hbase import Cell, Region, RegionServer, SimHBase
from .hdfs import BlockInfo, DataNode, SimHdfs
from .mapreduce import JobStats, MapReduceEngine
from .network import LAN, WAN, NetworkModel
from .notify import Notification, NotificationService
from .placement import PortalPlacement, ReplicatedChunkStore
from .pool import DOC_TABLE, TODO_TABLE, DocumentPool, PoolEntry, ProcessSummary
from .portal import PortalServer, Session
from .sharding import DEFAULT_VNODES, HashRing, placement_skew
from .simclock import SimClock
from .system import CloudClient, CloudSystem, run_process_in_cloud

__all__ = [
    "BlockInfo",
    "Cell",
    "CloudClient",
    "CloudSystem",
    "DEFAULT_VNODES",
    "DOC_TABLE",
    "DataNode",
    "DocumentPool",
    "HashRing",
    "JobStats",
    "LAN",
    "MapReduceEngine",
    "NetworkModel",
    "Notification",
    "NotificationService",
    "PoolEntry",
    "PortalPlacement",
    "ProcessSummary",
    "PortalServer",
    "Region",
    "RegionServer",
    "ReplicatedChunkStore",
    "Session",
    "SimClock",
    "SimHBase",
    "SimHdfs",
    "TODO_TABLE",
    "WAN",
    "placement_skew",
    "run_process_in_cloud",
]
