"""Placement services of the sharded cloud tier.

Two users of the :class:`~repro.cloud.sharding.HashRing` live here:

* :class:`PortalPlacement` — pins every process instance to one portal
  of the tier for its whole lifetime.  Portals are stateless (all state
  is in the pool), so *any* portal could serve any request; pinning by
  consistent hash instead of round-robin gives each instance session
  affinity (warm per-portal caches), keeps placement independent of
  call order (round-robin depends on who logged in when — a property
  that breaks worker-count-independent reports), and makes per-portal
  load a pure function of the instance population.
* :class:`ReplicatedChunkStore` — factor-R placement of
  content-addressed CER chunks over a set of shard tables, with
  digest-checked read-repair on miss.  A lost or corrupted replica is
  healed from any surviving one; a chunk whose bytes fail their SHA-256
  is never served, never repaired *from*, and never silently accepted.

Both are deterministic: placement depends only on (names, vnodes,
seed), never on host state, so same-seed fleet runs report identical
placements no matter how many OS workers executed them.
"""

from __future__ import annotations

import hashlib

from ..errors import CloudError, StorageError
from .hbase import CerChunkStore, SimHBase
from .sharding import DEFAULT_VNODES, HashRing, placement_skew

__all__ = ["PortalPlacement", "ReplicatedChunkStore"]


class PortalPlacement:
    """Consistent-hash pinning of process instances to portals."""

    def __init__(self, portal_ids: list[str],
                 vnodes: int = DEFAULT_VNODES,
                 seed: int = 0) -> None:
        self.ring = HashRing(portal_ids, vnodes=vnodes, seed=seed)
        #: portal id → instances first routed there (observability).
        self.placed: dict[str, int] = {pid: 0 for pid in portal_ids}
        self._seen: set[str] = set()

    def portal_for(self, process_id: str) -> str:
        """The portal id owning *process_id* (counts first sightings)."""
        portal_id = self.ring.node_for(process_id)
        if process_id not in self._seen:
            self._seen.add(process_id)
            self.placed[portal_id] = self.placed.get(portal_id, 0) + 1
        return portal_id

    @property
    def skew(self) -> float:
        """Max/mean instances-per-portal of everything placed so far."""
        return placement_skew(self.placed)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe placement snapshot for fleet reports."""
        return {
            "scheme": "ring",
            "vnodes": self.ring.vnodes,
            "portals": dict(sorted(self.placed.items())),
            "skew": round(self.skew, 9),
        }


class ReplicatedChunkStore(CerChunkStore):
    """Factor-R replicated, content-addressed chunk storage.

    Same interface as :class:`~repro.cloud.hbase.CerChunkStore` (the
    delta-routing :class:`~repro.cloud.pool.DocumentPool` uses either
    interchangeably), but each chunk is written to *replicas* distinct
    shard tables chosen by consistent hash of its digest.  Reads try
    the primary shard first and fall back along the replica chain;
    every payload read is re-hashed against its digest, so a corrupted
    replica is indistinguishable from a missing one — and either is
    healed by **read-repair**: the first intact copy found is written
    back to the shards that should have held it.

    The in-memory digest index (`_known`) plays the same role as the
    base store's: suppress duplicate puts without a storage round trip.
    Read-repair deliberately bypasses it — repair is about the durable
    copies, not the cache.

    The refcount/GC lifecycle is inherited unchanged; only the durable
    deletion fans out, removing **every** replica row of a collected
    chunk so no shard serves a digest the hot tier dropped.
    """

    TABLE_PREFIX = "dra4wfms_chunks_shard"

    def __init__(self, hbase: SimHBase, shards: int = 2,
                 replicas: int = 2, vnodes: int = 64,
                 seed: int = 0) -> None:
        if shards < 1:
            raise StorageError("need at least one chunk shard")
        if not isinstance(replicas, int) or isinstance(replicas, bool):
            raise StorageError(
                f"chunk replication factor must be an integer, "
                f"got {replicas!r}"
            )
        if replicas < 1:
            raise StorageError("chunk replication factor must be >= 1")
        if replicas > shards:
            raise StorageError(
                f"cannot keep {replicas} replicas on {shards} shard(s); "
                f"add region servers or lower the factor"
            )
        # Deliberately no super().__init__: the base constructor would
        # create the unsharded chunk table this store never touches.
        self.hbase = hbase
        self.replicas = replicas
        self.shard_ids = [f"shard{i}" for i in range(shards)]
        self.ring = HashRing(self.shard_ids, vnodes=vnodes, seed=seed)
        for shard_id in self.shard_ids:
            table = self._table(shard_id)
            if not hbase.has_table(table):
                hbase.create_table(table)
        self._known: set[str] = set()
        self._sizes: dict[str, int] = {}
        self._refs: dict[str, int] = {}
        self.stats = {
            "unique_chunks": 0,
            "unique_bytes": 0,
            "dedup_hits": 0,
            "logical_bytes": 0,
            "replicas": replicas,
            "replica_fallbacks": 0,
            "read_repairs": 0,
            "corrupt_replicas": 0,
        }
        self.lifecycle = {
            "pins": 0,
            "unpins": 0,
            "gc_runs": 0,
            "gc_chunks_deleted": 0,
            "gc_bytes_reclaimed": 0,
        }

    def _table(self, shard_id: str) -> str:
        return f"{self.TABLE_PREFIX}-{shard_id}"

    def replica_shards(self, digest: str) -> list[str]:
        """The *replicas* shard ids holding a digest, primary first."""
        return self.ring.nodes_for(digest, self.replicas)

    # -- writes --------------------------------------------------------------

    def put_chunk(self, digest: str, data: bytes) -> bool:
        """Store one chunk on its replica set; True when newly written."""
        self.stats["logical_bytes"] += len(data)
        if digest in self._known:
            self.stats["dedup_hits"] += 1
            return False
        for shard_id in self.replica_shards(digest):
            self.hbase.put(self._table(shard_id), digest, "c", "b", data)
        self._known.add(digest)
        self._sizes[digest] = len(data)
        self.stats["unique_chunks"] += 1
        self.stats["unique_bytes"] += len(data)
        return True

    def _delete_chunk_rows(self, digests: list[str]) -> None:
        by_table: dict[str, list[str]] = {}
        for digest in digests:
            for shard_id in self.replica_shards(digest):
                by_table.setdefault(self._table(shard_id), []).append(digest)
        for table, keys in by_table.items():
            self.hbase.delete_rows(table, keys)

    def flush(self) -> int:
        """Flush every shard table — the post-GC WAL reset."""
        return sum(self.hbase.flush_table(self._table(shard_id))
                   for shard_id in self.shard_ids)

    # -- reads + repair ------------------------------------------------------

    @staticmethod
    def _intact(digest: str, data: bytes) -> bool:
        return hashlib.sha256(data).hexdigest() == digest

    def get_chunks(self, digests: list[str]) -> dict[str, bytes]:
        """Fetch payloads, primaries batched, misses repaired.

        One batched read per shard covers the primary copies; only
        digests whose primary is missing *or corrupt* walk the replica
        chain individually.  Missing-everywhere digests are absent from
        the result (the caller decides whether that is a fallback
        condition or an error), exactly as in the unreplicated store.
        """
        wanted = list(dict.fromkeys(digests))
        by_shard: dict[str, list[str]] = {}
        for digest in wanted:
            by_shard.setdefault(self.replica_shards(digest)[0],
                                []).append(digest)
        out: dict[str, bytes] = {}
        degraded: list[str] = []
        for shard_id in sorted(by_shard):
            rows = self.hbase.get_rows(self._table(shard_id),
                                       by_shard[shard_id])
            for digest in by_shard[shard_id]:
                cells = rows.get(digest)
                data = cells.get(("c", "b")) if cells else None
                if data is not None and not self._intact(digest, data):
                    self.stats["corrupt_replicas"] += 1
                    data = None
                if data is None:
                    degraded.append(digest)
                else:
                    out[digest] = data
        for digest in degraded:
            data = self._read_with_repair(digest)
            if data is not None:
                out[digest] = data
        return out

    def _read_with_repair(self, digest: str) -> bytes | None:
        """Walk the replica chain; heal the shards that missed."""
        with self.hbase.clock.trace("chunks.read_repair", "hbase"):
            shards = self.replica_shards(digest)
            healthy: bytes | None = None
            missed: list[str] = []
            for shard_id in shards:
                row = self.hbase.get(self._table(shard_id), digest)
                data = row.get(("c", "b"))
                if data is not None and not self._intact(digest, data):
                    self.stats["corrupt_replicas"] += 1
                    data = None
                if data is None:
                    missed.append(shard_id)
                elif healthy is None:
                    healthy = data
                    self.stats["replica_fallbacks"] += 1
            if healthy is None:
                return None
            for shard_id in missed:
                self.hbase.put(self._table(shard_id), digest, "c", "b",
                               healthy)
                self.stats["read_repairs"] += 1
            return healthy

    # -- test/ops helpers ----------------------------------------------------

    def damage_replica(self, digest: str, shard_index: int = 0,
                       corrupt: bool = False) -> str:
        """Lose (or bit-flip) one replica of a chunk — failure-injection
        hook for tests and the adversarial harness.  Returns the shard
        id that was damaged."""
        shards = self.replica_shards(digest)
        try:
            shard_id = shards[shard_index]
        except IndexError:
            raise CloudError(
                f"chunk has only {len(shards)} replicas"
            ) from None
        table = self._table(shard_id)
        if corrupt:
            self.hbase.put(table, digest, "c", "b", b"\x00corrupt\x00")
        else:
            self.hbase.delete_row(table, digest)
        return shard_id

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes stored per physical *unique* byte (≥ 1.0)."""
        if self.stats["unique_bytes"] == 0:
            return 1.0
        return self.stats["logical_bytes"] / self.stats["unique_bytes"]
