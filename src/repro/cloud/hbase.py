"""Simulated HBase: a distributed, column-oriented table store.

Reproduces the properties §4.2 relies on — "a distributed
column-oriented database built on top of HDFS … the optimal Hadoop
application … when real-time read/write random accesses to very large
datasets are required":

* tables of rows sorted by key, with ``(column family, qualifier)``
  cells;
* rows partitioned into **regions** by key range, hosted on **region
  servers**;
* a write-ahead log per region server, persisted to the simulated HDFS
  before a put is acknowledged;
* memstore flushes to HDFS store files;
* automatic **region splits** when a region exceeds a size threshold,
  and round-robin assignment of new regions to servers;
* get/put/scan costs charged to the shared sim clock.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field

from ..errors import RegionError, StorageError
from .hdfs import SimHdfs
from .network import LAN, NetworkModel
from .simclock import SimClock

__all__ = ["Cell", "CerChunkStore", "Region", "RegionServer", "SimHBase"]

#: Sorts after every real row key (end of the key space).
_END_KEY = "￿"


@dataclass(frozen=True)
class Cell:
    """One versioned cell value."""

    value: bytes
    timestamp: float


@dataclass
class Region:
    """A contiguous key range of one table."""

    region_id: int
    table: str
    start_key: str           # inclusive
    end_key: str             # exclusive (_END_KEY = unbounded)
    rows: dict[str, dict[tuple[str, str], Cell]] = field(default_factory=dict)
    memstore_bytes: int = 0
    #: Total stored cell-value bytes (maintained incrementally — the
    #: byte-threshold split trigger must not rescan the region per put).
    data_bytes: int = 0
    #: Write-ahead log entries since the last flush:
    #: ("put", row_key, family, qualifier, value, timestamp) or
    #: ("delete", row_key, "", "", b"", timestamp) tombstones.
    wal: list[tuple[str, str, str, str, bytes, float]] = field(
        default_factory=list)
    #: Per-entry encodings of :attr:`wal`, filled lazily by
    #: :meth:`encode_wal` — the WAL is rewritten to HDFS on *every*
    #: put, so re-encoding the whole backlog each time is quadratic.
    #: Invariant: a prefix of ``wal``, cleared whenever ``wal`` is.
    _wal_cache: list[bytes] = field(default_factory=list, repr=False)

    def contains(self, row_key: str) -> bool:
        """True when *row_key* falls in this region's range."""
        return self.start_key <= row_key < self.end_key

    @property
    def row_count(self) -> int:
        """Rows currently in the region."""
        return len(self.rows)

    def recompute_bytes(self) -> int:
        """Rebuild the byte counter from the rows (recovery paths)."""
        self.data_bytes = sum(
            len(cell.value)
            for cells in self.rows.values() for cell in cells.values()
        )
        return self.data_bytes

    def sorted_keys(self) -> list[str]:
        """Row keys in order (HBase rows are key-sorted)."""
        return sorted(self.rows)

    def hdfs_path(self) -> str:
        """Store-file path of this region in the simulated HDFS."""
        return f"/hbase/{self.table}/region-{self.region_id}"

    def wal_path(self) -> str:
        """Write-ahead-log path of this region in the simulated HDFS."""
        return f"/hbase/{self.table}/region-{self.region_id}.wal"

    # -- durable encodings ---------------------------------------------------

    def encode_rows(self) -> bytes:
        """Serialize the full row set for the HDFS store file."""
        import base64
        import json

        payload = {
            row_key: {
                f"{family}\x00{qualifier}": [
                    base64.b64encode(cell.value).decode("ascii"),
                    cell.timestamp,
                ]
                for (family, qualifier), cell in cells.items()
            }
            for row_key, cells in self.rows.items()
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @staticmethod
    def decode_rows(data: bytes) -> dict[str, dict[tuple[str, str], Cell]]:
        """Inverse of :meth:`encode_rows`."""
        import base64
        import json

        if not data:
            return {}
        payload = json.loads(data.decode("utf-8"))
        rows: dict[str, dict[tuple[str, str], Cell]] = {}
        for row_key, cells in payload.items():
            decoded: dict[tuple[str, str], Cell] = {}
            for key, (value_b64, timestamp) in cells.items():
                family, qualifier = key.split("\x00", 1)
                decoded[(family, qualifier)] = Cell(
                    value=base64.b64decode(value_b64),
                    timestamp=timestamp,
                )
            rows[row_key] = decoded
        return rows

    def encode_wal(self) -> bytes:
        """Serialize the pending WAL entries.

        Only entries appended since the previous call are encoded; the
        output is byte-identical to ``json.dumps`` over the full list
        (same separators), so recovery, WAL file sizes, and the clock
        charges they drive are unchanged.
        """
        import base64
        import json

        for op, row_key, family, qualifier, value, timestamp in \
                self.wal[len(self._wal_cache):]:
            self._wal_cache.append(json.dumps(
                [op, row_key, family, qualifier,
                 base64.b64encode(value).decode("ascii"), timestamp]
            ).encode("utf-8"))
        return b"[" + b", ".join(self._wal_cache) + b"]"

    def replay_wal(self, data: bytes) -> int:
        """Apply WAL entries on top of the recovered store rows."""
        import base64
        import json

        if not data:
            return 0
        entries = json.loads(data.decode("utf-8"))
        for op, row_key, family, qualifier, value_b64, timestamp in entries:
            if op == "delete":
                self.rows.pop(row_key, None)
                continue
            if op == "delcell":
                row = self.rows.get(row_key)
                if row is not None:
                    row.pop((family, qualifier), None)
                    if not row:
                        del self.rows[row_key]
                continue
            row = self.rows.setdefault(row_key, {})
            row[(family, qualifier)] = Cell(
                value=base64.b64decode(value_b64), timestamp=timestamp,
            )
        return len(entries)


@dataclass
class RegionServer:
    """A server hosting a set of regions."""

    server_id: str
    regions: list[Region] = field(default_factory=list)
    ops: int = 0
    alive: bool = True

    @property
    def load(self) -> int:
        """Total rows hosted (the balancing metric)."""
        return sum(r.row_count for r in self.regions)


class SimHBase:
    """The cluster: tables, regions, servers, WAL, splits."""

    def __init__(self,
                 region_servers: int = 2,
                 hdfs: SimHdfs | None = None,
                 clock: SimClock | None = None,
                 network: NetworkModel = LAN,
                 split_threshold_rows: int = 256,
                 split_threshold_bytes: int | None = None,
                 auto_balance: bool = True,
                 memstore_flush_bytes: int = 1 << 20) -> None:
        if region_servers < 1:
            raise StorageError("need at least one region server")
        self.clock = clock or SimClock()
        self.hdfs = hdfs or SimHdfs(clock=self.clock, network=network)
        self.network = network
        self.split_threshold_rows = split_threshold_rows
        #: When set, a region also splits once its stored cell bytes
        #: exceed this — the real HBase trigger (``hbase.hregion.max.
        #: filesize``); row count alone under-splits tables whose rows
        #: grow (the document table: one fat row per instance).
        self.split_threshold_bytes = split_threshold_bytes
        #: Rebalance regions across servers after every split (load-
        #: driven, not operator-driven — the §3 elasticity story).
        self.auto_balance = auto_balance
        self.memstore_flush_bytes = memstore_flush_bytes
        self.servers: dict[str, RegionServer] = {
            f"rs{i}": RegionServer(f"rs{i}") for i in range(region_servers)
        }
        self._tables: dict[str, list[Region]] = {}
        self._region_ids = itertools.count(1)
        self._assign_cursor = itertools.count(0)
        self.stats = {"puts": 0, "gets": 0, "scans": 0, "splits": 0,
                      "flushes": 0, "moves": 0}

    # -- table & region management ------------------------------------------------

    def create_table(self, name: str) -> None:
        """Create a table with one region spanning the whole key space."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        region = Region(
            region_id=next(self._region_ids), table=name,
            start_key="", end_key=_END_KEY,
        )
        self._tables[name] = [region]
        self._assign(region)
        self.hdfs.write(region.hdfs_path(), b"")

    def has_table(self, name: str) -> bool:
        """True when the table exists."""
        return name in self._tables

    def regions_of(self, name: str) -> list[Region]:
        """Regions of a table in key order."""
        regions = self._tables.get(name)
        if regions is None:
            raise StorageError(f"no such table {name!r}")
        return sorted(regions, key=lambda r: r.start_key)

    def _assign(self, region: Region) -> RegionServer:
        # Least-loaded live server, round-robin tiebreak.  The rotation
        # must not involve ``hash(str)`` — it is salted per process and
        # would make region placement (and the split/move counters the
        # fleet reports) vary between same-seed runs.
        live = [s for s in self.servers.values() if s.alive]
        if not live:
            raise RegionError("no live region server to host the region")
        cursor = next(self._assign_cursor)
        ordered = sorted(
            enumerate(live),
            key=lambda pair: (pair[1].load,
                              (pair[0] + cursor) % len(live)),
        )
        server = ordered[0][1]
        server.regions.append(region)
        return server

    def server_of(self, region: Region) -> RegionServer:
        """The region server currently hosting *region*."""
        for server in self.servers.values():
            if region in server.regions:
                return server
        raise RegionError(
            f"region {region.region_id} of {region.table!r} is unassigned"
        )

    def _locate(self, table: str, row_key: str) -> Region:
        for region in self._tables.get(table, ()):
            if region.contains(row_key):
                return region
        raise RegionError(f"no region serves row {row_key!r} of {table!r}")

    # -- data path -----------------------------------------------------------------

    def put(self, table: str, row_key: str, family: str, qualifier: str,
            value: bytes) -> None:
        """Write one cell (WAL append + memstore + possible flush/split)."""
        with self.clock.trace("hbase.put", "hbase"):
            region = self._locate(table, row_key)
            server = self.server_of(region)
            server.ops += 1
            # WAL append to HDFS *before* acknowledging: a region-server
            # crash replays this log (see kill_server).
            timestamp = self.clock.now()
            region.wal.append(("put", row_key, family, qualifier, value,
                               timestamp))
            self.hdfs.write(region.wal_path(), region.encode_wal())
            self.clock.advance(self.network.transfer_seconds(len(value)),
                               component="pool")
            row = region.rows.setdefault(row_key, {})
            previous = row.get((family, qualifier))
            if previous is not None:
                region.data_bytes -= len(previous.value)
            row[(family, qualifier)] = Cell(value=value, timestamp=timestamp)
            region.memstore_bytes += len(value)
            region.data_bytes += len(value)
            self.stats["puts"] += 1
            if region.memstore_bytes >= self.memstore_flush_bytes:
                self._flush(region)
            if self._needs_split(region):
                self._split(region)

    def get(self, table: str, row_key: str) -> dict[tuple[str, str], bytes]:
        """Read one row (empty dict when absent)."""
        with self.clock.trace("hbase.get", "hbase"):
            region = self._locate(table, row_key)
            server = self.server_of(region)
            server.ops += 1
            self.stats["gets"] += 1
            row = region.rows.get(row_key, {})
            size = sum(len(cell.value) for cell in row.values())
            self.clock.advance(self.network.rpc_seconds(len(row_key), size),
                               component="pool")
            return {cq: cell.value for cq, cell in row.items()}

    def get_rows(self, table: str, row_keys: list[str],
                 ) -> dict[str, dict[tuple[str, str], bytes]]:
        """Batched multi-get (HBase's ``Table.get(List<Get>)``).

        One client round-trip for the whole batch: the RPC latency is
        charged once, the payload cost covers all returned cells.  The
        delta-routing reassembly path depends on this — fetching fifty
        chunk rows as fifty :meth:`get` calls would pay fifty network
        latencies and erase the bytes saved on the wire.  Absent rows
        are simply missing from the result.
        """
        if not row_keys:
            return {}
        with self.clock.trace("hbase.get_rows", "hbase"):
            out: dict[str, dict[tuple[str, str], bytes]] = {}
            total_size = 0
            key_bytes = 0
            for row_key in row_keys:
                region = self._locate(table, row_key)
                server = self.server_of(region)
                server.ops += 1
                self.stats["gets"] += 1
                row = region.rows.get(row_key)
                key_bytes += len(row_key)
                if row is None:
                    continue
                total_size += sum(len(cell.value) for cell in row.values())
                out[row_key] = {cq: cell.value for cq, cell in row.items()}
            self.clock.advance(
                self.network.rpc_seconds(key_bytes, total_size),
                component="pool",
            )
            return out

    def _tombstone(self, region: Region, entries: list[tuple]) -> None:
        """Append delete markers and persist the WAL once (group commit).

        Tombstones are memstore entries like any other write (real
        HBase flushes them with the rest of the memstore): without the
        pressure a delete-heavy sweep would grow the WAL without bound
        and every later write would pay to rewrite it.  The flush check
        is the caller's job, *after* applying the deletions in memory —
        flushing first would persist the doomed cells and clear the
        tombstones, resurrecting them on recovery.
        """
        region.wal.extend(entries)
        self.hdfs.write(region.wal_path(), region.encode_wal())
        for entry in entries:
            # Key bytes plus marker overhead; the payload is empty.
            region.memstore_bytes += len(entry[1]) + 24

    def _maybe_flush(self, region: Region) -> None:
        if region.memstore_bytes >= self.memstore_flush_bytes:
            self._flush(region)

    def delete_row(self, table: str, row_key: str) -> None:
        """Delete one row entirely (tombstoned in the WAL)."""
        self.delete_rows(table, [row_key])

    def delete_rows(self, table: str, row_keys: list[str]) -> None:
        """Delete many rows, one WAL group commit per region.

        The GC sweep retires hundreds of chunk rows at once; paying a
        full WAL rewrite per row would make collection cost more than
        the writes it reclaims.
        """
        now = self.clock.now()
        by_region: dict[int, tuple[Region, list[str]]] = {}
        for row_key in row_keys:
            region = self._locate(table, row_key)
            by_region.setdefault(region.region_id, (region, []))[1].append(
                row_key)
        for region, keys in by_region.values():
            self._tombstone(region, [("delete", key, "", "", b"", now)
                                     for key in keys])
            for key in keys:
                dropped = region.rows.pop(key, None)
                if dropped is not None:
                    region.data_bytes -= sum(
                        len(c.value) for c in dropped.values())
            self._maybe_flush(region)

    def delete_cell(self, table: str, row_key: str, family: str,
                    qualifier: str) -> bool:
        """Delete one cell (WAL-tombstoned); True when it existed."""
        return self.delete_cells(table, row_key, [(family, qualifier)]) == 1

    def delete_cells(self, table: str, row_key: str,
                     cells: list[tuple[str, str]]) -> int:
        """Delete several cells of one row; returns how many existed.

        The manifest-compaction path retires individual ``hist:<seq>``
        cells of a document row without touching its metadata cells, so
        whole-row deletion is not enough.  An empty row left behind is
        removed outright.  All tombstones share one WAL group commit.
        """
        region = self._locate(table, row_key)
        row = region.rows.get(row_key)
        if row is None:
            return 0
        present = [(f, q) for f, q in cells if (f, q) in row]
        if not present:
            return 0
        now = self.clock.now()
        self._tombstone(region, [("delcell", row_key, family, qualifier,
                                  b"", now)
                                 for family, qualifier in present])
        for family, qualifier in present:
            cell = row.pop((family, qualifier))
            region.data_bytes -= len(cell.value)
        if not row:
            del region.rows[row_key]
        self._maybe_flush(region)
        return len(present)

    def scan(self, table: str, start_key: str = "",
             stop_key: str | None = None, limit: int | None = None,
             ) -> list[tuple[str, dict[tuple[str, str], bytes]]]:
        """Ordered scan over ``[start_key, stop_key)``."""
        stop = _END_KEY if stop_key is None else stop_key
        out: list[tuple[str, dict[tuple[str, str], bytes]]] = []
        self.stats["scans"] += 1
        with self.clock.trace("hbase.scan", "hbase"):
            for region in self.regions_of(table):
                if region.end_key <= start_key or region.start_key >= stop:
                    continue
                keys = region.sorted_keys()
                lo = bisect.bisect_left(keys, start_key)
                for key in keys[lo:]:
                    if key >= stop:
                        break
                    row = region.rows[key]
                    out.append(
                        (key, {cq: cell.value for cq, cell in row.items()})
                    )
                    if limit is not None and len(out) >= limit:
                        self.clock.advance(self.network.latency_seconds,
                                           component="pool")
                        return out
                self.clock.advance(self.network.latency_seconds,
                                   component="pool")
            return out

    # -- maintenance --------------------------------------------------------------------

    def _flush(self, region: Region) -> None:
        self.hdfs.write(region.hdfs_path(), region.encode_rows())
        region.memstore_bytes = 0
        region.wal.clear()
        region._wal_cache.clear()
        self.hdfs.write(region.wal_path(), b"")
        self.stats["flushes"] += 1

    def flush_table(self, name: str) -> int:
        """Flush every region of *name* with a pending WAL; returns how
        many flushed.

        The operator move after a bulk delete (HBase's ``flush`` shell
        command): persisting the memstore resets the per-region WAL, so
        subsequent writes stop paying to rewrite a log full of
        tombstones.  The lifecycle sweep runs this on the tables it
        swept — regions it never touched keep their WALs.
        """
        flushed = 0
        for region in self.regions_of(name):
            if region.wal:
                self._flush(region)
                flushed += 1
        return flushed

    def _needs_split(self, region: Region) -> bool:
        if region.row_count > self.split_threshold_rows:
            return True
        return (self.split_threshold_bytes is not None
                and region.data_bytes > self.split_threshold_bytes)

    def _split(self, region: Region) -> None:
        keys = region.sorted_keys()
        if len(keys) < 2:
            return
        midpoint = keys[len(keys) // 2]
        if midpoint in (region.start_key,):
            return
        sibling = Region(
            region_id=next(self._region_ids), table=region.table,
            start_key=midpoint, end_key=region.end_key,
        )
        region.end_key = midpoint
        for key in keys[len(keys) // 2:]:
            moved = region.rows.pop(key)
            sibling.rows[key] = moved
            moved_bytes = sum(len(c.value) for c in moved.values())
            region.data_bytes -= moved_bytes
            sibling.data_bytes += moved_bytes
        self._tables[region.table].append(sibling)
        self._assign(sibling)
        self._flush(region)
        self._flush(sibling)
        self.stats["splits"] += 1
        if self.auto_balance:
            self.stats["moves"] += self.balance()

    def kill_server(self, server_id: str) -> int:
        """Fail a region server and recover its regions elsewhere.

        Each hosted region is rebuilt from its HDFS store file plus a
        replay of its write-ahead log (both replicated), then assigned
        to a surviving server — no acknowledged write is lost.  Returns
        the number of WAL entries replayed.
        """
        server = self.servers.get(server_id)
        if server is None:
            raise RegionError(f"no such region server {server_id!r}")
        if not server.alive:
            raise RegionError(f"region server {server_id!r} already dead")
        server.alive = False
        orphans = server.regions
        server.regions = []
        if orphans and not any(s.alive for s in self.servers.values()):
            raise RegionError(
                "last region server died; table unavailable"
            )
        replayed = 0
        for region in orphans:
            # The in-memory state died with the server: rebuild from
            # the durable store file + WAL.
            region.rows = Region.decode_rows(
                self.hdfs.read(region.hdfs_path())
                if self.hdfs.exists(region.hdfs_path()) else b""
            )
            replayed += region.replay_wal(
                self.hdfs.read(region.wal_path())
                if self.hdfs.exists(region.wal_path()) else b""
            )
            region.memstore_bytes = 0
            region.recompute_bytes()
            self._assign(region)
        return replayed

    def balance(self) -> int:
        """Move regions from overloaded to underloaded servers.

        Returns the number of regions moved.  The paper cites load
        balancing between workflow engines as a weakness [14]; here it
        is a pool-internal concern invisible to the security model.
        """
        moved = 0
        while True:
            ordered = sorted(
                (s for s in self.servers.values() if s.alive),
                key=lambda s: s.load,
            )
            if len(ordered) < 2:
                break
            lightest, heaviest = ordered[0], ordered[-1]
            if not heaviest.regions:
                break
            candidate = min(heaviest.regions, key=lambda r: r.row_count)
            if (heaviest.load - lightest.load
                    <= candidate.row_count or candidate.row_count == 0):
                break
            heaviest.regions.remove(candidate)
            lightest.regions.append(candidate)
            moved += 1
        return moved

    # -- metrics -----------------------------------------------------------------------

    def total_rows(self, table: str) -> int:
        """Row count of a table across all regions."""
        return sum(r.row_count for r in self.regions_of(table))

    def total_bytes(self, table: str) -> int:
        """Stored cell-value bytes of a table across all regions."""
        return sum(r.data_bytes for r in self.regions_of(table))

    def region_count(self, table: str) -> int:
        """Number of regions a table is split into."""
        return len(self.regions_of(table))

    def server_loads(self) -> dict[str, int]:
        """Rows hosted per region server (the balancing metric)."""
        return {server_id: server.load
                for server_id, server in sorted(self.servers.items())}


class CerChunkStore:
    """Content-addressed chunk storage on top of :class:`SimHBase`.

    One table, one row per distinct chunk, keyed by the chunk's SHA-256
    hex — the natural dedup: a CER chunk shared by fifty hop versions
    (or a definition chunk shared by a thousand fleet instances of the
    same workflow) is written and stored exactly once.  Row keys are
    uniformly distributed (they are hashes), so regions split evenly —
    the HBase design the paper's §4.2 storage argument relies on.

    The store keeps an in-memory digest index (the moral equivalent of
    HBase block-cache bloom filters) so duplicate puts are suppressed
    without a storage round-trip.

    **Lifecycle** (see ``docs/STORAGE.md``): chunks are reference-
    counted by the manifests that name them — the pool :meth:`pin`\\ s a
    manifest's digests when it stores a version and :meth:`unpin`\\ s
    them when compaction or retirement drops that manifest.  A
    :meth:`gc` sweep deletes zero-ref rows, keeping hot storage
    O(live instances) instead of O(total history).  The ``stats`` dict
    keeps its historical four keys (fleet-report goldens pin them);
    lifecycle counters live in the separate ``lifecycle`` dict.
    """

    TABLE = "dra4wfms_chunks"

    def __init__(self, hbase: SimHBase) -> None:
        self.hbase = hbase
        if not hbase.has_table(self.TABLE):
            hbase.create_table(self.TABLE)
        self._known: set[str] = set()
        #: digest → stored payload length (needed to keep byte counters
        #: exact when GC deletes a row without re-reading it).
        self._sizes: dict[str, int] = {}
        #: digest → number of live manifest references.
        self._refs: dict[str, int] = {}
        self.stats = {
            "unique_chunks": 0,
            "unique_bytes": 0,
            "dedup_hits": 0,
            "logical_bytes": 0,
        }
        self.lifecycle = {
            "pins": 0,
            "unpins": 0,
            "gc_runs": 0,
            "gc_chunks_deleted": 0,
            "gc_bytes_reclaimed": 0,
        }

    def __contains__(self, digest: str) -> bool:
        return digest in self._known

    def put_chunk(self, digest: str, data: bytes) -> bool:
        """Store one chunk; returns True when it was actually written."""
        self.stats["logical_bytes"] += len(data)
        if digest in self._known:
            self.stats["dedup_hits"] += 1
            return False
        self.hbase.put(self.TABLE, digest, "c", "b", data)
        self._known.add(digest)
        self._sizes[digest] = len(data)
        self.stats["unique_chunks"] += 1
        self.stats["unique_bytes"] += len(data)
        return True

    def put_chunks(self, chunks: dict[str, bytes]) -> int:
        """Store many chunks; returns how many were new."""
        return sum(self.put_chunk(d, data) for d, data in chunks.items())

    def get_chunks(self, digests: list[str]) -> dict[str, bytes]:
        """Fetch chunk payloads in one batched read.

        Missing digests are absent from the result (the caller decides
        whether that is a fallback condition or an error).
        """
        wanted = list(dict.fromkeys(digests))
        rows = self.hbase.get_rows(self.TABLE, wanted)
        return {digest: cells[("c", "b")] for digest, cells in rows.items()
                if ("c", "b") in cells}

    # -- lifecycle: refcounts + garbage collection ---------------------------

    def pin(self, digests) -> None:
        """Take one reference per digest (a stored manifest names them)."""
        for digest in digests:
            self._refs[digest] = self._refs.get(digest, 0) + 1
            self.lifecycle["pins"] += 1

    def unpin(self, digests) -> None:
        """Release one reference per digest (that manifest is gone).

        Dropping a reference that was never taken is a bookkeeping bug
        that would let :meth:`gc` delete a chunk some live manifest
        still names — refuse loudly instead of corrupting the store.
        """
        for digest in digests:
            refs = self._refs.get(digest, 0)
            if refs <= 0:
                raise StorageError(
                    f"unpin of chunk {digest[:12]}… without a matching "
                    f"pin (refcount underflow)"
                )
            if refs == 1:
                del self._refs[digest]
            else:
                self._refs[digest] = refs - 1
            self.lifecycle["unpins"] += 1

    def refcount(self, digest: str) -> int:
        """Live manifest references to one chunk."""
        return self._refs.get(digest, 0)

    def _delete_chunk_rows(self, digests: list[str]) -> None:
        """Remove the chunks' durable rows in one batch — subclasses
        fan the batch out over their shard tables."""
        self.hbase.delete_rows(self.TABLE, digests)

    def flush(self) -> int:
        """Flush this store's table(s) — the post-GC WAL reset."""
        return self.hbase.flush_table(self.TABLE)

    def gc(self) -> tuple[int, int]:
        """Delete every stored chunk with zero references.

        Returns ``(chunks_deleted, bytes_reclaimed)``.  A pinned chunk
        is never touched, so a digest named by any live manifest cannot
        be collected; byte counters shrink so ``unique_bytes`` tracks
        the *hot* store, and a later re-put of the same digest is a
        fresh write, not a dedup hit.
        """
        with self.hbase.clock.trace("chunks.gc", "pool"):
            dead = sorted(d for d in self._known
                          if self._refs.get(d, 0) == 0)
            reclaimed = 0
            self._delete_chunk_rows(dead)
            for digest in dead:
                self._known.discard(digest)
                size = self._sizes.pop(digest, 0)
                reclaimed += size
                self.stats["unique_chunks"] -= 1
                self.stats["unique_bytes"] -= size
            self.lifecycle["gc_runs"] += 1
            self.lifecycle["gc_chunks_deleted"] += len(dead)
            self.lifecycle["gc_bytes_reclaimed"] += reclaimed
            return len(dead), reclaimed

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes stored per physical byte (≥ 1.0)."""
        if self.stats["unique_bytes"] == 0:
            return 1.0
        return self.stats["logical_bytes"] / self.stats["unique_bytes"]
