"""Notification service: "notify the subsequent participants" (§4.2).

After a resulting document is stored, the portal informs the
participants of the next activities.  The simulator models per-identity
inboxes with delivery latency charged to the sim clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import WAN, NetworkModel
from .simclock import SimClock

__all__ = ["Notification", "NotificationService"]


@dataclass(frozen=True)
class Notification:
    """One "it is your turn" message."""

    recipient: str
    process_id: str
    activity_id: str
    sent_at: float


@dataclass
class NotificationService:
    """Per-identity inboxes with simulated delivery."""

    clock: SimClock
    network: NetworkModel = WAN
    _inboxes: dict[str, list[Notification]] = field(default_factory=dict)
    sent: int = 0

    @staticmethod
    def payload_bytes(recipient: str, process_id: str,
                      activity_id: str) -> int:
        """Wire size of one notification message."""
        return len(f"{recipient}\x00{process_id}\x00{activity_id}"
                   .encode("utf-8"))

    def notify(self, recipient: str, process_id: str,
               activity_id: str) -> Notification:
        """Queue a notification for *recipient*.

        Charges the full transfer cost of the message (latency + size
        over bandwidth), consistent with how portals account document
        transfers — not just the bare link latency.
        """
        with self.clock.trace("notify.send", "notify"):
            payload = self.payload_bytes(recipient, process_id, activity_id)
            self.clock.advance(self.network.transfer_seconds(payload),
                               component="notify")
            note = Notification(
                recipient=recipient,
                process_id=process_id,
                activity_id=activity_id,
                sent_at=self.clock.now(),
            )
            self._inboxes.setdefault(recipient, []).append(note)
            self.sent += 1
            return note

    def inbox(self, recipient: str) -> list[Notification]:
        """Pending notifications of one identity (oldest first)."""
        return list(self._inboxes.get(recipient, ()))

    def drain(self, recipient: str) -> list[Notification]:
        """Return and clear the inbox."""
        return self._inboxes.pop(recipient, [])
