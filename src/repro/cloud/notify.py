"""Notification service: "notify the subsequent participants" (§4.2).

After a resulting document is stored, the portal informs the
participants of the next activities.  The simulator models per-identity
inboxes with delivery latency charged to the sim clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import WAN, NetworkModel
from .simclock import SimClock

__all__ = ["Notification", "NotificationService"]


@dataclass(frozen=True)
class Notification:
    """One "it is your turn" message."""

    recipient: str
    process_id: str
    activity_id: str
    sent_at: float


@dataclass
class NotificationService:
    """Per-identity inboxes with simulated delivery."""

    clock: SimClock
    network: NetworkModel = WAN
    _inboxes: dict[str, list[Notification]] = field(default_factory=dict)
    sent: int = 0

    def notify(self, recipient: str, process_id: str,
               activity_id: str) -> Notification:
        """Queue a notification for *recipient*."""
        self.clock.advance(self.network.latency_seconds)
        note = Notification(
            recipient=recipient,
            process_id=process_id,
            activity_id=activity_id,
            sent_at=self.clock.now(),
        )
        self._inboxes.setdefault(recipient, []).append(note)
        self.sent += 1
        return note

    def inbox(self, recipient: str) -> list[Notification]:
        """Pending notifications of one identity (oldest first)."""
        return list(self._inboxes.get(recipient, ()))

    def drain(self, recipient: str) -> list[Notification]:
        """Return and clear the inbox."""
        return self._inboxes.pop(recipient, [])
