"""Consistent-hash sharding for the multi-portal cloud tier.

The paper's §3 scalability argument is "any number of portal servers in
front of an elastic HBase pool" — which only holds if *placement* of
work across those portals is cheap, balanced, and stable as the tier
grows.  This module provides the placement primitive everything else
builds on: a **consistent-hash ring** with virtual nodes.

Properties the rest of the system (and the tests) rely on:

* **Deterministic.**  Ring points are SHA-256 of ``"{seed}:{node}#{v}"``
  — no ``hash()`` (which is salted per process), no host randomness.
  Two rings built from the same (nodes, vnodes, seed) place every key
  identically, on any Python, in any process.  This is what keeps
  fleet reports byte-identical across worker counts.
* **Balanced.**  Each node contributes ``vnodes`` points, so the key
  space splits into ``len(nodes) × vnodes`` arcs.  At the default
  vnode count the max/mean load over 10k keys stays ≤ 1.25 for 1–8
  nodes (asserted in ``tests/cloud/test_sharding.py``).
* **Stable under change.**  Adding or removing one of *n* nodes moves
  only ~1/n of the keys (:meth:`HashRing.moved_keys`), which is the
  entire point of consistent hashing: growing the portal tier does not
  reshuffle the world.
* **Replication-aware.**  :meth:`HashRing.nodes_for` walks the ring
  past the primary to find *r* **distinct** successor nodes — the
  factor-R placement the replicated chunk store uses.

See ``docs/SHARDING.md`` for how placement, region auto-split and chunk
replication compose into the sharded cloud tier.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from ..errors import CloudError

__all__ = ["HashRing", "DEFAULT_VNODES", "placement_skew"]

#: Virtual nodes per physical node.  256 arcs per node keeps the
#: max/mean placement skew ≤ 1.25 at 10k keys for tiers of up to 8
#: portals (the acceptance bound this repo's tests assert).
DEFAULT_VNODES = 256


def _point(seed: int, node: str, vnode: int) -> int:
    """Ring position of one virtual node (stable across processes)."""
    label = f"{seed}:{node}#{vnode}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(label).digest()[:8], "big")


def _key_point(key: str) -> int:
    """Ring position of a key."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named nodes with virtual nodes."""

    def __init__(self, nodes: Iterable[str],
                 vnodes: int = DEFAULT_VNODES,
                 seed: int = 0) -> None:
        if vnodes < 1:
            raise CloudError("need at least one virtual node per node")
        self.vnodes = vnodes
        self.seed = seed
        self._nodes: list[str] = []
        #: Sorted ring positions and the node owning each position.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise CloudError("a hash ring needs at least one node")

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Member nodes in insertion order."""
        return list(self._nodes)

    def add_node(self, node: str) -> None:
        """Join *node* (its vnodes claim ~1/n of the key space)."""
        if node in self._nodes:
            raise CloudError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        for v in range(self.vnodes):
            point = _point(self.seed, node, v)
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        """Leave the ring (its keys fall to the ring successors)."""
        if node not in self._nodes:
            raise CloudError(f"node {node!r} is not on the ring")
        if len(self._nodes) == 1:
            raise CloudError("cannot remove the last node from the ring")
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- placement -----------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning *key* (clockwise successor of its point)."""
        index = bisect.bisect_right(self._points, _key_point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def nodes_for(self, key: str, count: int) -> list[str]:
        """*count* distinct nodes for *key*: primary, then ring order.

        The replica set of consistent hashing — walking clockwise from
        the key's point and collecting distinct owners.  *count* beyond
        the member count is an error (a replication factor the tier
        cannot satisfy should fail loudly, not silently degrade).
        """
        if count < 1:
            raise CloudError("need at least one placement target")
        if count > len(self._nodes):
            raise CloudError(
                f"cannot place on {count} distinct nodes; the ring has "
                f"only {len(self._nodes)}"
            )
        start = bisect.bisect_right(self._points, _key_point(key))
        chosen: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def placement(self, keys: Sequence[str]) -> dict[str, int]:
        """Keys-per-node histogram (every member node present, ≥ 0)."""
        counts = {node: 0 for node in sorted(self._nodes)}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def moved_keys(self, other: "HashRing", keys: Sequence[str]) -> int:
        """How many of *keys* land on a different node than on *other*.

        The relocation cost of a ring change: for a well-behaved
        consistent hash, adding one node to an *n*-node ring moves
        ~``len(keys)/(n+1)`` keys, never a wholesale reshuffle.
        """
        return sum(1 for key in keys
                   if self.node_for(key) != other.node_for(key))


def placement_skew(counts: dict[str, int]) -> float:
    """Max/mean load ratio of a placement histogram (1.0 = perfect).

    The balance metric the acceptance tests bound: ≤ 1.25 at 10k
    instances over up to 8 portals.  Empty histograms (or all-zero
    ones) are perfectly balanced by definition.
    """
    if not counts:
        return 1.0
    mean = sum(counts.values()) / len(counts)
    if mean == 0:
        return 1.0
    return max(counts.values()) / mean
