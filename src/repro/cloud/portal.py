"""Portal servers: the cloud front door (paper §3, Fig. 7).

"A user connects to one of the portal servers to access the DRA4WfMS
cloud system."  A portal

* authenticates users by public-key challenge/response against the PKI
  directory (no passwords to breach);
* serves the TO-DO search, document retrieval and document storage
  operations of §4.2;
* verifies every submitted document before accepting it — the cloud
  provider never needs to be *trusted*, because a tampered document is
  rejected by the same cryptographic checks any AEA runs;
* finalises submissions through the TFC server (advanced model:
  timestamp + policy re-encryption + routing) and notifies the next
  participants.

Portals are stateless with respect to process instances: all state is
in the pool, so any number of portals can serve the same cloud (the
scalability argument of §3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tfc import TfcServer
from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pki import KeyDirectory
from ..document.delta import DeltaDocument, Manifest, assemble, seed_chunks
from ..document.document import Dra4wfmsDocument
from ..document.vcache import VerificationCache
from ..document.verify import verify_document
from ..errors import (
    DeltaFallbackRequired,
    DeltaMismatch,
    PortalError,
    RuntimeFault,
)
from ..model.controlflow import JoinKind
from .network import WAN, NetworkModel
from .notify import NotificationService
from .pool import DocumentPool, PoolEntry
from .simclock import SimClock

__all__ = ["Session", "PortalServer"]


@dataclass(frozen=True)
class Session:
    """An authenticated portal session."""

    token: str
    identity: str
    portal_id: str


class PortalServer:
    """One stateless portal instance."""

    def __init__(self,
                 portal_id: str,
                 pool: DocumentPool,
                 directory: KeyDirectory,
                 tfc: TfcServer,
                 notifier: NotificationService,
                 clock: SimClock,
                 network: NetworkModel = WAN,
                 backend: CryptoBackend | None = None,
                 verify_cache: VerificationCache | None = None,
                 verify_workers: int | None = None,
                 verify_batch: bool | None = None) -> None:
        self.portal_id = portal_id
        self.pool = pool
        self.directory = directory
        self.tfc = tfc
        self.notifier = notifier
        self.clock = clock
        self.network = network
        self.backend = backend or default_backend()
        #: Opt-in shared signature cache: portals of one cloud may share
        #: it (and the TFC's) so a document verified at any front door
        #: costs only its new CERs at the next.  ``None`` → cold.
        self.verify_cache = verify_cache
        #: Batched RSA verification knobs forwarded to
        #: :func:`verify_document` (see its *workers*/*batch* docs).
        self.verify_workers = verify_workers
        self.verify_batch = verify_batch
        self._challenges: dict[str, bytes] = {}
        self._sessions: dict[str, Session] = {}
        self.stats = {"logins": 0, "searches": 0, "retrievals": 0,
                      "uploads": 0, "submissions": 0, "rejected": 0,
                      "delta_retrievals": 0, "delta_submissions": 0,
                      "delta_fallbacks": 0,
                      "bytes_in": 0, "bytes_out": 0}

    # -- authentication ------------------------------------------------------

    def challenge(self, identity: str) -> bytes:
        """Start a login: return a nonce the user must sign."""
        if identity not in self.directory:
            raise PortalError(f"unknown identity {identity!r}")
        nonce = self.backend.random(32)
        self._challenges[identity] = nonce
        return nonce

    def login(self, identity: str, signature: bytes) -> Session:
        """Complete a login by verifying the signed nonce."""
        nonce = self._challenges.pop(identity, None)
        if nonce is None:
            raise PortalError(f"no pending challenge for {identity!r}")
        try:
            self.backend.verify(
                self.directory.public_key_of(identity),
                b"dra4wfms-portal-login\x00" + nonce,
                signature,
            )
        except Exception as exc:
            raise PortalError(f"authentication failed: {exc}") from exc
        token = self.backend.random(16).hex()
        session = Session(token=token, identity=identity,
                          portal_id=self.portal_id)
        self._sessions[token] = session
        self.stats["logins"] += 1
        self.clock.advance(self.network.rpc_seconds(64, 64),
                           component="portal")
        return session

    def _require(self, session: Session) -> Session:
        stored = self._sessions.get(session.token)
        if stored is None or stored.identity != session.identity:
            raise PortalError("invalid or expired session")
        return stored

    # -- §4.2 operations ----------------------------------------------------------

    def search_todo(self, session: Session) -> list[PoolEntry]:
        """TO-DO list of the logged-in participant."""
        self._require(session)
        with self.clock.trace("portal.search_todo", "portal"):
            self.stats["searches"] += 1
            self.clock.advance(self.network.rpc_seconds(64, 512),
                               component="portal")
            return self.pool.todo_for(session.identity)

    def retrieve(self, session: Session, process_id: str) -> bytes:
        """Fetch the latest document of a process instance."""
        self._require(session)
        with self.clock.trace("portal.retrieve", "portal"):
            data = self.pool.latest_bytes(process_id)
            self.stats["retrievals"] += 1
            self.stats["bytes_out"] += len(data)
            self.clock.advance(self.network.rpc_seconds(64, len(data)),
                               component="portal")
            return data

    def retrieve_delta(self, session: Session, process_id: str,
                       have_digest: str | None = None,
                       also_have: frozenset[str] | set[str] = frozenset(),
                       ) -> DeltaDocument:
        """One-round delta retrieve: manifest + chunks the client lacks.

        *have_digest* names the document version the client last
        received (the ``doc_digest`` of that manifest); *also_have*
        lists digests of chunks the client holds beyond that version —
        typically the CERs it produced itself on an earlier submit.
        The response carries the latest manifest plus only the chunks
        not covered by either, so a returning participant pays one WAN
        round trip for the handful of CERs appended since its last
        visit.  An unknown or ``None`` *have_digest* degrades to "all
        chunks" (a cold client's first contact), never to an error.

        Raises :class:`~repro.errors.DeltaFallbackRequired` when the
        chunk store cannot supply a referenced chunk — the client
        retries with a full :meth:`retrieve`.
        """
        self._require(session)
        if not self.pool.delta:
            raise PortalError("this cloud does not serve delta transfers")
        with self.clock.trace("portal.retrieve_delta", "portal"):
            manifest = self.pool.latest_manifest(process_id)
            known: set[str] = set(also_have)
            if have_digest == manifest.doc_digest:
                known.update(manifest.chunk_digests)
            elif have_digest is not None:
                held = self.pool.manifest_by_digest(have_digest)
                if held is not None:
                    known.update(held.chunk_digests)
            missing = [d for d in manifest.chunk_digests if d not in known]
            chunks = self.pool.chunks.get_chunks(missing)
            if len(chunks) != len(set(missing)):
                self.stats["delta_fallbacks"] += 1
                raise DeltaFallbackRequired(
                    f"chunk store cannot serve {process_id!r}; retry with "
                    f"a full retrieve"
                )
            delta = DeltaDocument(manifest=manifest, chunks=chunks)
            request = 64 + len(have_digest or "") + 64 * len(also_have)
            self.stats["retrievals"] += 1
            self.stats["delta_retrievals"] += 1
            self.stats["bytes_in"] += request
            self.stats["bytes_out"] += delta.wire_bytes
            self.clock.advance(
                self.network.rpc_seconds(request, delta.wire_bytes),
                component="portal",
            )
            return delta

    def upload_initial(self, session: Session, data: bytes) -> str:
        """Start a process: verify, register (replay guard), store, notify.

        Returns the process id.
        """
        self._require(session)
        with self.clock.trace("portal.upload_initial", "portal"):
            document = Dra4wfmsDocument.from_bytes(data)
            self.stats["bytes_in"] += len(data)
            self.clock.advance(self.network.transfer_seconds(len(data)),
                               component="portal")
            try:
                with self.clock.trace("portal.verify", "crypto"):
                    verify_document(
                        document, self.directory, self.backend,
                        definition_reader=(self.tfc.identity,
                                           self.tfc.keypair.private_key),
                        cache=self.verify_cache,
                        workers=self.verify_workers,
                        batch=self.verify_batch,
                    )
            except Exception as exc:
                self.stats["rejected"] += 1
                raise PortalError(
                    f"initial document rejected: {exc}") from exc

            definition = self._definition_of(document)
            try:
                self.pool.register_process(document.process_id)
            except Exception as exc:
                self.stats["rejected"] += 1
                raise PortalError(
                    f"initial document rejected: {exc}") from exc
            self.pool.store(document)
            start = definition.activity(definition.start_activity)
            self.pool.add_todo(start.participant, document.process_id,
                               start.activity_id)
            self.notifier.notify(start.participant, document.process_id,
                                 start.activity_id)
            self.stats["uploads"] += 1
            return document.process_id

    def submit(self, session: Session, data: bytes) -> list[PoolEntry]:
        """Accept an executed document, finalise via TFC, store, notify.

        Returns the TO-DO entries created for the next activities
        (empty when the process terminated).
        """
        self._require(session)
        with self.clock.trace("portal.submit", "portal"):
            self.stats["bytes_in"] += len(data)
            self.clock.advance(self.network.transfer_seconds(len(data)),
                               component="portal")
            return self._accept_submission(data)

    def submit_delta(self, session: Session,
                     delta: DeltaDocument) -> list[PoolEntry]:
        """Accept an executed document shipped as manifest + new chunks.

        The portal reassembles the full canonical bytes from the
        delta's chunks plus the shared chunk store, digest-checks them
        against the manifest, and from there runs the *identical*
        verify → TFC → merge → store path a full submission takes —
        the bytes are the same, so the security posture is the same.
        Only the transfer is charged at delta size.

        Raises :class:`~repro.errors.DeltaFallbackRequired` when the
        chunk store cannot supply a referenced chunk (e.g. a fresh
        cloud after the client cached chunks elsewhere); the client
        retries with :meth:`submit` and the full bytes.
        """
        self._require(session)
        if not self.pool.delta:
            raise PortalError("this cloud does not accept delta transfers")
        with self.clock.trace("portal.submit_delta", "portal"):
            self.stats["bytes_in"] += delta.wire_bytes
            self.clock.advance(
                self.network.transfer_seconds(delta.wire_bytes),
                component="portal",
            )
            manifest = delta.manifest
            needed = [d for d in manifest.chunk_digests
                      if d not in delta.chunks]
            fetched = self.pool.chunks.get_chunks(needed)
            if len(fetched) != len(set(needed)):
                self.stats["delta_fallbacks"] += 1
                missing = sorted(set(needed) - set(fetched))
                raise DeltaFallbackRequired(
                    f"submission references {len(missing)} chunk(s) this "
                    f"cloud does not hold; resubmit the full document"
                )
            all_chunks = {**fetched, **delta.chunks}
            try:
                with self.clock.trace("delta.assemble", "delta"):
                    data = assemble(manifest, all_chunks)
            except DeltaMismatch as exc:
                self.stats["rejected"] += 1
                raise PortalError(f"submission rejected: {exc}") from exc
            entries = self._accept_submission(data, manifest=manifest,
                                              chunks=all_chunks)
            self.stats["delta_submissions"] += 1
            return entries

    def _accept_submission(self, data: bytes,
                           manifest: Manifest | None = None,
                           chunks: dict[str, bytes] | None = None,
                           ) -> list[PoolEntry]:
        """Shared verify → TFC → merge → store → notify path.

        *data* is always the **full** canonical serialization — by the
        time a delta submission reaches this point it has been
        reassembled and digest-checked, so both entry points run the
        same checks over the same bytes.  A delta submission also
        passes its (digest-checked) *manifest*/*chunks* so the parsed
        document's canonical memo starts warm: the TFC-finalise, merge
        and re-store steps then re-serialize only the new CER instead
        of the whole history.  Verification never reads the memo, so
        this changes no accept/reject decision.
        """
        document = Dra4wfmsDocument.from_bytes(data)
        if manifest is not None and chunks is not None:
            seed_chunks(document, manifest, chunks)
        if not self.pool.is_registered(document.process_id):
            self.stats["rejected"] += 1
            raise PortalError(
                f"process {document.process_id!r} unknown to this cloud "
                f"(initial document was never uploaded)"
            )

        try:
            tfc_result = self.tfc.process(document)
        except RuntimeFault as exc:
            self.stats["rejected"] += 1
            raise PortalError(
                f"submission rejected (cloud deployment runs the advanced "
                f"operational model): {exc}"
            ) from exc
        except Exception as exc:
            self.stats["rejected"] += 1
            raise PortalError(f"submission rejected: {exc}") from exc

        finalized = tfc_result.document
        # Merge with the pool copy so concurrent AND-split branches
        # accumulate in one document.
        stored = self.pool.latest(document.process_id)
        merged = stored.merge(finalized)
        self.pool.store(merged)

        definition = self._definition_of(merged)
        self.pool.remove_todo(
            definition.activity(tfc_result.activity_id).participant,
            merged.process_id, tfc_result.activity_id,
        )

        entries: list[PoolEntry] = []
        for activity_id in tfc_result.routing.next_activities:
            participant = definition.activity(activity_id).participant
            self.pool.add_todo(participant, merged.process_id, activity_id)
            self.notifier.notify(participant, merged.process_id, activity_id)
            entries.append(PoolEntry(
                participant=participant,
                process_id=merged.process_id,
                activity_id=activity_id,
            ))
        self.stats["submissions"] += 1
        return entries

    def search_documents(self, session: Session,
                         process_name: str | None = None,
                         min_executions: int | None = None):
        """Search the pool for instances the caller is involved in.

        The §4.2 "search and manage" interface, scoped to the session
        identity: users see instances where they participate (or which
        they designed), never the whole tenant population.
        """
        self._require(session)
        self.stats["searches"] += 1
        self.clock.advance(self.network.rpc_seconds(128, 1024),
                           component="portal")
        return self.pool.search(
            process_name=process_name,
            participant=session.identity,
            min_executions=min_executions,
        )

    def manage(self, session: Session, process_id: str,
               action: str) -> None:
        """Archive or purge an instance — designer-only.

        The workflow designer owns the instance's lifecycle; nobody
        else (not even the cloud operator through this interface) may
        hide or destroy the evidence trail.
        """
        self._require(session)
        document = self.pool.latest(process_id)
        if document.designer != session.identity:
            raise PortalError(
                f"only the designer ({document.designer!r}) may manage "
                f"process {process_id!r}"
            )
        if action == "archive":
            self.pool.archive(process_id)
        elif action == "purge":
            self.pool.purge(process_id)
        else:
            raise PortalError(f"unknown manage action {action!r}")

    # -- monitoring --------------------------------------------------------------------

    def monitor(self, session: Session, process_id: str):
        """Execution status of one process instance (metadata only)."""
        self._require(session)
        from ..core.state import execution_status

        document = self.pool.latest(process_id)
        definition = self._definition_of(document)
        return execution_status(document, definition)

    # -- internals -------------------------------------------------------------------------

    def _definition_of(self, document: Dra4wfmsDocument):
        from ..document.amendments import effective_definition

        if document.definition_is_encrypted:
            return effective_definition(
                document, self.tfc.identity,
                self.tfc.keypair.private_key, self.backend,
            )
        return effective_definition(document, backend=self.backend)

    @staticmethod
    def join_arity(definition, activity_id: str) -> int:
        """Branches an AND-join activity waits for (driver helper)."""
        activity = definition.activity(activity_id)
        if activity.join is JoinKind.AND:
            return len(definition.incoming(activity_id))
        return 1
