"""MapReduce over the simulated HBase (monitoring & statistics, §4.2).

"The MapReduce computing model supported in the HBase system can apply
some statistical analyses to workflow processes or instances stored in
the DRA4WfMS cloud system."  The engine runs one map task per region
(that is how HBase scans parallelise), shuffles by key, and reduces.

Parallelism is simulated: every map task's real compute time is
measured, and the job's *simulated makespan* is the maximum over the
map waves plus the reduce time — what a cluster with one slot per
region server would achieve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

from .hbase import SimHBase

__all__ = ["JobStats", "MapReduceEngine"]

K = TypeVar("K")
V = TypeVar("V")
R = TypeVar("R")

#: map(row_key, row_cells) -> iterable of (key, value)
MapFn = Callable[[str, dict[tuple[str, str], bytes]], Iterable[tuple[K, V]]]
#: reduce(key, values) -> result
ReduceFn = Callable[[K, list[V]], R]


@dataclass
class JobStats:
    """Accounting for one MapReduce job."""

    map_tasks: int = 0
    input_rows: int = 0
    shuffled_records: int = 0
    reduce_groups: int = 0
    #: Sum of real compute seconds across all tasks.
    total_compute_seconds: float = 0.0
    #: Simulated parallel completion time.
    simulated_makespan_seconds: float = 0.0
    map_task_seconds: list[float] = field(default_factory=list)


class MapReduceEngine:
    """Runs MapReduce jobs against one :class:`SimHBase` cluster."""

    def __init__(self, hbase: SimHBase) -> None:
        self.hbase = hbase

    def run(self, table: str, map_fn: MapFn, reduce_fn: ReduceFn,
            ) -> tuple[dict, JobStats]:
        """Execute a job over every row of *table*.

        Returns ``(results, stats)`` where ``results`` maps each
        distinct intermediate key to its reduced value.
        """
        stats = JobStats()
        intermediate: dict[object, list[object]] = {}

        regions = self.hbase.regions_of(table)
        slots = max(len(self.hbase.servers), 1)
        for region in regions:
            start = time.perf_counter()
            for row_key in region.sorted_keys():
                row = {
                    cq: cell.value for cq, cell in region.rows[row_key].items()
                }
                stats.input_rows += 1
                for key, value in map_fn(row_key, row):
                    intermediate.setdefault(key, []).append(value)
                    stats.shuffled_records += 1
            elapsed = time.perf_counter() - start
            stats.map_tasks += 1
            stats.map_task_seconds.append(elapsed)
            stats.total_compute_seconds += elapsed

        # Simulated makespan: greedy longest-processing-time schedule of
        # map tasks onto the region servers' slots.
        loads = [0.0] * slots
        for task in sorted(stats.map_task_seconds, reverse=True):
            loads[loads.index(min(loads))] += task
        map_makespan = max(loads) if loads else 0.0

        reduce_start = time.perf_counter()
        results = {
            key: reduce_fn(key, values)
            for key, values in intermediate.items()
        }
        reduce_seconds = time.perf_counter() - reduce_start
        stats.total_compute_seconds += reduce_seconds
        stats.reduce_groups = len(results)
        stats.simulated_makespan_seconds = map_makespan + reduce_seconds
        self.hbase.clock.advance(stats.simulated_makespan_seconds)
        return results, stats
