"""The DRA4WfMS cloud system facade (paper §3, Fig. 7).

Wires together the simulated substrate — HDFS, HBase, document pool,
portal servers, TFC, notifications, MapReduce — and provides the
client-side helper (:class:`CloudClient`) plus a driver that runs an
entire workflow through the cloud exactly as Fig. 7's numbered arrows
describe: retrieve → execute in AEA → send back → verify/timestamp →
store → notify next participants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.aea import ActivityExecutionAgent, Responder
from ..core.tfc import TfcServer
from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pki import KeyDirectory
from ..document.delta import (
    ChunkCache,
    decode_delta,
    encode_delta,
    seed_chunks,
)
from ..document.document import Dra4wfmsDocument
from ..document.vcache import VerificationCache
from ..errors import (
    CloudError,
    DeltaError,
    DeltaFallbackRequired,
    JoinNotReady,
)
from ..model.definition import WorkflowDefinition
from .hbase import SimHBase
from .hdfs import SimHdfs
from .mapreduce import JobStats, MapReduceEngine
from .network import LAN, WAN
from .notify import NotificationService
from .placement import PortalPlacement
from .pool import DOC_TABLE, DocumentPool
from .portal import PortalServer, Session
from .sharding import DEFAULT_VNODES
from .simclock import SimClock

__all__ = ["CloudSystem", "CloudClient", "run_process_in_cloud"]


class CloudSystem:
    """A complete simulated DRA4WfMS cloud."""

    def __init__(self,
                 directory: KeyDirectory,
                 tfc_keypair: KeyPair,
                 portals: int = 2,
                 region_servers: int = 2,
                 datanodes: int = 3,
                 replication: int = 3,
                 split_threshold_rows: int = 256,
                 split_threshold_bytes: int | None = None,
                 backend: CryptoBackend | None = None,
                 verify_cache: VerificationCache | None = None,
                 clock: SimClock | None = None,
                 delta_routing: bool = False,
                 verify_workers: int | None = None,
                 verify_batch: bool | None = None,
                 placement: str = "round-robin",
                 placement_vnodes: int | None = None,
                 chunk_replicas: int | None = None,
                 chunk_cache_bytes: int | None = None) -> None:
        if isinstance(portals, bool) or not isinstance(portals, int):
            raise CloudError(
                f"portal count must be an integer, got {portals!r} "
                f"({type(portals).__name__})"
            )
        if portals < 1:
            raise CloudError("need at least one portal server")
        if placement not in ("round-robin", "ring"):
            raise CloudError(
                f"unknown placement scheme {placement!r} "
                f"(expected 'round-robin' or 'ring')"
            )
        if chunk_replicas is not None and not delta_routing:
            raise CloudError(
                "chunk_replicas only applies to delta routing (the "
                "chunk store does not exist in full-document mode)"
            )
        self.backend = backend or default_backend()
        self.directory = directory
        #: When True the pool stores manifests + content-addressed CER
        #: chunks, and clients ship/receive deltas (see docs/ROUTING.md).
        #: Off by default — full-document routing, as before.
        self.delta_routing = delta_routing
        #: When supplied, all portals and the TFC share this signature
        #: cache: a document verified at any front door costs only its
        #: newly appended CERs anywhere else in the cloud.  ``None``
        #: (default) keeps every verification cold.
        self.verify_cache = verify_cache
        #: Batched RSA verification knobs shared by this cloud's TFC and
        #: portals: *verify_workers* > 1 threads independent RSA checks,
        #: *verify_batch* forces the single-dispatch ``verify_batch()``
        #: path even single-threaded.  Accept/reject behaviour is
        #: unchanged either way.
        self.verify_workers = verify_workers
        self.verify_batch = verify_batch
        #: LRU byte budget for every client's peer chunk cache (delta
        #: mode).  ``None`` (default) keeps the historic unbounded
        #: cache; 0 is a degenerate-but-legal budget (the cache still
        #: holds at least its most recent chunk).
        self.chunk_cache_bytes = chunk_cache_bytes
        #: All components charge simulated costs here; the fleet
        #: scheduler passes its own clock so it can capture per-
        #: component service times (see :mod:`repro.fleet`).
        self.clock = clock or SimClock()
        self.hdfs = SimHdfs(
            datanodes=datanodes, replication=replication,
            clock=self.clock, network=LAN,
        )
        self.hbase = SimHBase(
            region_servers=region_servers, hdfs=self.hdfs,
            clock=self.clock, network=LAN,
            split_threshold_rows=split_threshold_rows,
            split_threshold_bytes=split_threshold_bytes,
        )
        self.pool = DocumentPool(self.hbase, delta=delta_routing,
                                 chunk_replicas=chunk_replicas)
        self.notifier = NotificationService(clock=self.clock, network=WAN)
        self.tfc = TfcServer(
            tfc_keypair, directory, backend=self.backend,
            clock=self.clock.now,
            verify_cache=verify_cache,
            verify_workers=verify_workers,
            verify_batch=verify_batch,
        )
        self.portals = [
            PortalServer(
                portal_id=f"portal{i}",
                pool=self.pool,
                directory=directory,
                tfc=self.tfc,
                notifier=self.notifier,
                clock=self.clock,
                network=WAN,
                backend=self.backend,
                verify_cache=verify_cache,
                verify_workers=verify_workers,
                verify_batch=verify_batch,
            )
            for i in range(portals)
        ]
        self._round_robin = 0
        #: Consistent-hash instance→portal pinning (``placement="ring"``).
        #: ``None`` keeps the historic round-robin front door.
        self.placement: PortalPlacement | None = None
        if placement == "ring":
            self.placement = PortalPlacement(
                [p.portal_id for p in self.portals],
                vnodes=placement_vnodes or DEFAULT_VNODES,
            )
        self._portal_by_id = {p.portal_id: p for p in self.portals}
        self.mapreduce = MapReduceEngine(self.hbase)

    # -- observability --------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` to this cloud (or detach
        with ``None``).

        One call covers the whole substrate: the shared clock's charge
        hook picks up every portal/HBase/HDFS/notify cost, and the TFC
        (which has no clock of its own) gets the span hook directly.
        """
        self.clock.tracer = tracer
        self.tfc.tracer = tracer

    # -- load balancing -------------------------------------------------------

    def next_portal(self) -> PortalServer:
        """Round-robin portal selection (any portal serves any user)."""
        portal = self.portals[self._round_robin % len(self.portals)]
        self._round_robin += 1
        return portal

    def portal_for(self, process_id: str) -> PortalServer:
        """The portal serving one process instance.

        Ring placement pins every instance to one portal by consistent
        hash of its process id (seed-stable, call-order-independent);
        without a ring every portal serves every instance and the
        round-robin-assigned client portal is as good as any.
        """
        if self.placement is None:
            return self.portals[0]
        return self._portal_by_id[self.placement.portal_for(process_id)]

    def client(self, keypair: KeyPair) -> "CloudClient":
        """A logged-in client for one participant."""
        return CloudClient(keypair, self)

    # -- fleet monitoring (MapReduce jobs of §4.2) -------------------------------

    def _document_of_row(self, row) -> Dra4wfmsDocument | None:
        """Latest document from a pool row, in either storage mode."""
        data = row.get(("doc", "latest"))
        if data is None and self.delta_routing:
            manifest_bytes = row.get(("doc", "manifest"))
            if manifest_bytes is not None:
                from ..document.delta import Manifest

                data = self.pool.assemble_bytes(
                    Manifest.from_bytes(manifest_bytes)
                )
        if data is None:
            return None
        return Dra4wfmsDocument.from_bytes(data)

    def activity_statistics(self) -> tuple[dict[str, int], JobStats]:
        """MapReduce: executions per activity across all instances."""

        def map_fn(row_key, row):
            document = self._document_of_row(row)
            if document is None:
                return
            for cer in document.cers(include_definition=False):
                if cer.kind in ("standard", "tfc"):
                    yield cer.activity_id, 1

        def reduce_fn(key, values):
            return sum(values)

        return self.mapreduce.run(DOC_TABLE, map_fn, reduce_fn)

    def participant_workload(self) -> tuple[dict[str, int], JobStats]:
        """MapReduce: executions per participant across the pool.

        The load-balancing input the paper's related work [14] computes
        server-side — here derived from CER metadata without decrypting
        anything.
        """

        def map_fn(row_key, row):
            document = self._document_of_row(row)
            if document is None:
                return
            for cer in document.cers(include_definition=False):
                if cer.kind in ("standard", "intermediate"):
                    yield cer.participant, 1

        def reduce_fn(key, values):
            return sum(values)

        return self.mapreduce.run(DOC_TABLE, map_fn, reduce_fn)

    def instance_progress(self) -> tuple[dict[str, int], JobStats]:
        """MapReduce: completed executions per process instance."""

        def map_fn(row_key, row):
            document = self._document_of_row(row)
            if document is None:
                return
            count = sum(
                1 for cer in document.cers(include_definition=False)
                if cer.kind in ("standard", "tfc")
            )
            yield document.process_id, count

        def reduce_fn(key, values):
            return sum(values)

        return self.mapreduce.run(DOC_TABLE, map_fn, reduce_fn)


@dataclass
class CloudClient:
    """Client-side helper: AEA + portal protocol (Fig. 7 arrows 1–6)."""

    keypair: KeyPair
    system: CloudSystem

    def __post_init__(self) -> None:
        self.agent = ActivityExecutionAgent(
            self.keypair, self.system.directory, self.system.backend
        )
        #: portal id → authenticated session at that front door.
        self._sessions: dict[str, Session] = {}
        if self.system.placement is None:
            self.portal: PortalServer = self.system.next_portal()
            self._login(self.portal)
        else:
            # Ring placement: log into every portal up front so
            # per-process routing never pays a mid-run login (and the
            # fleet's setup-cost capture covers all of them).
            for portal in self.system.portals:
                self._login(portal)
            self.portal = self.system.portals[0]
        #: Chunks this client holds (delta mode): everything the portal
        #: ever sent us plus everything we assembled locally — LRU-
        #: bounded when the cloud configures a byte budget.
        self.chunks = ChunkCache(max_bytes=self.system.chunk_cache_bytes)
        #: process id → doc_digest of the version we last retrieved.
        self._have: dict[str, str] = {}
        #: process id → digests of chunks we shipped in our own submits
        #: since the last retrieve (the portal must not send those back).
        self._own_chunks: dict[str, set[str]] = {}
        #: Chunk digests the cloud side is known to hold (it sent them
        #: to us, or accepted them from us) — what submits diff against.
        self._cloud_known: set[str] = set()
        #: Wire accounting for the fleet/benchmark reports.
        self.bytes_received = 0
        self.bytes_sent = 0

    def _login(self, portal: PortalServer) -> Session:
        nonce = portal.challenge(self.keypair.identity)
        signature = self.system.backend.sign(
            self.keypair.private_key, b"dra4wfms-portal-login\x00" + nonce
        )
        session = portal.login(self.keypair.identity, signature)
        self._sessions[portal.portal_id] = session
        return session

    @property
    def session(self) -> Session:
        """The session at this client's default portal."""
        return self._sessions[self.portal.portal_id]

    def _route(self, process_id: str) -> tuple[PortalServer, Session]:
        """Portal + session serving one process (ring or default)."""
        if self.system.placement is None:
            return self.portal, self.session
        portal = self.system.portal_for(process_id)
        return portal, self._sessions[portal.portal_id]

    @property
    def identity(self) -> str:
        """The participant this client acts for."""
        return self.keypair.identity

    def todo(self):
        """Pending work items."""
        return self.portal.search_todo(self.session)

    def upload_initial(self, document: Dra4wfmsDocument) -> str:
        """Start a process instance."""
        portal, session = self._route(document.process_id)
        data = document.to_bytes()
        self.bytes_sent += len(data)
        return portal.upload_initial(session, data)

    # -- delta-aware transfer helpers ------------------------------------

    def retrieve_bytes(self, process_id: str) -> bytes:
        """Latest document bytes, moving only unseen chunks when possible.

        Delta mode is one round trip: the request names the version
        this client last received plus the digests of chunks it shipped
        itself on intervening submits, and the reply carries the latest
        manifest plus only the chunks not covered by either.  The
        document is reassembled and digest-checked locally.  Any delta
        failure falls back to a full retrieve — delta routing is an
        optimisation, never a liveness risk.
        """
        data, _ = self._retrieve(process_id)
        return data

    def _retrieve(self, process_id: str):
        """Shared retrieve: ``(bytes, manifest-or-None)``."""
        portal, session = self._route(process_id)
        if not self.system.delta_routing:
            data = portal.retrieve(session, process_id)
            self.bytes_received += len(data)
            return data, None
        own = self._own_chunks.get(process_id, set())
        try:
            delta = portal.retrieve_delta(
                session, process_id,
                self._have.get(process_id), frozenset(own),
            )
            with self.system.clock.trace("delta.decode", "delta"):
                data = decode_delta(delta, self.chunks)
        except (DeltaFallbackRequired, DeltaError, KeyError):
            data = portal.retrieve(session, process_id)
            self.bytes_received += len(data)
            return data, None
        self.bytes_received += delta.wire_bytes
        # The request itself carries the have-digest plus one digest
        # per chunk we asked the portal not to resend.
        self.bytes_sent += 64 + 64 * len(own)
        self._have[process_id] = delta.manifest.doc_digest
        # The new manifest covers every chunk we submitted before this
        # retrieve, so the have-digest subsumes the own-chunk list.
        self._own_chunks.pop(process_id, None)
        # Everything in the manifest lives in the cloud's chunk store.
        self._cloud_known.update(delta.manifest.chunk_digests)
        return data, delta.manifest

    def retrieve_document(self, process_id: str) -> Dra4wfmsDocument:
        """Latest document, parsed — memo-warm in delta mode.

        Delta retrieves already digest-checked every chunk during
        reassembly, so the parsed document's canonical memo can be
        seeded from them: the AEA's clone/append/re-chunk work on this
        hop then touches only the new CER instead of re-serializing the
        whole history.  Full-mode retrieves parse cold, exactly as
        before.
        """
        data, manifest = self._retrieve(process_id)
        document = Dra4wfmsDocument.from_bytes(data)
        if manifest is not None:
            seed_chunks(document, manifest, self.chunks)
        return document

    def submit_document(self, document: Dra4wfmsDocument) -> list:
        """Submit an executed document, shipping only new chunks."""
        portal, session = self._route(document.process_id)
        if not self.system.delta_routing:
            data = document.to_bytes()
            self.bytes_sent += len(data)
            return portal.submit(session, data)
        with self.system.clock.trace("delta.encode", "delta"):
            delta = encode_delta(document, known=self._cloud_known)
        try:
            entries = portal.submit_delta(session, delta)
        except DeltaFallbackRequired:
            data = document.to_bytes()
            self.bytes_sent += len(data)
            return portal.submit(session, data)
        self.bytes_sent += delta.wire_bytes
        self._cloud_known.update(delta.manifest.chunk_digests)
        self.chunks.add_all(delta.chunks)
        # Remember what we shipped so the next retrieve of this process
        # can ask the portal not to send our own CERs back.
        self._own_chunks.setdefault(
            document.process_id, set()).update(delta.chunks)
        return entries

    def execute(self, process_id: str, activity_id: str,
                responder: Responder) -> list:
        """Check out, execute in the local AEA, submit back.

        Raises :class:`~repro.errors.JoinNotReady` when an AND-join is
        still missing sibling branches — retry after they arrive.
        """
        document = self.retrieve_document(process_id)
        result = self.agent.execute_activity(
            document, activity_id, responder,
            mode="advanced",
            tfc_identity=self.system.tfc.identity,
            tfc_public_key=self.system.tfc.public_key,
        )
        return self.submit_document(result.document)

    def monitor(self, process_id: str):
        """Execution status of one instance."""
        portal, session = self._route(process_id)
        return portal.monitor(session, process_id)


def run_process_in_cloud(
    system: CloudSystem,
    definition: WorkflowDefinition,
    initial_document: Dra4wfmsDocument,
    designer: KeyPair,
    keypairs: dict[str, KeyPair],
    responders: dict[str, Responder],
    max_rounds: int = 10_000,
) -> Dra4wfmsDocument:
    """Drive one process instance through the cloud to completion.

    Each participant polls their TO-DO list and executes pending
    activities; AND-joins that are not yet ready are retried after the
    sibling branch lands.  Returns the final pooled document.
    """
    designer_client = system.client(designer)
    process_id = designer_client.upload_initial(initial_document)

    clients = {
        identity: system.client(keypair)
        for identity, keypair in keypairs.items()
        if identity != designer.identity
    }

    for _ in range(max_rounds):
        progressed = False
        pending = False
        for client in clients.values():
            for entry in client.todo():
                if entry.process_id != process_id:
                    continue
                pending = True
                responder = responders.get(entry.activity_id)
                if responder is None:
                    raise CloudError(
                        f"no responder for activity {entry.activity_id!r}"
                    )
                try:
                    client.execute(process_id, entry.activity_id, responder)
                    progressed = True
                except JoinNotReady:
                    continue
        if not pending:
            return system.pool.latest(process_id)
        if not progressed:
            raise CloudError(
                f"process {process_id!r} deadlocked: pending work exists "
                f"but nothing can execute"
            )
    raise CloudError(f"process {process_id!r} exceeded {max_rounds} rounds")
