"""Simulated HDFS: replicated block storage under the HBase simulator.

Models the parts of HDFS the paper's document pool depends on:

* files split into fixed-size blocks;
* each block replicated on ``replication`` distinct datanodes;
* datanode failure triggers re-replication of under-replicated blocks
  (the pool must be "durable and resilient to any failures", §1);
* read/write costs charged to the shared :class:`SimClock` through a
  :class:`NetworkModel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import StorageError
from .network import LAN, NetworkModel
from .simclock import SimClock

__all__ = ["BlockInfo", "DataNode", "SimHdfs"]


@dataclass
class BlockInfo:
    """Metadata the namenode keeps for one block."""

    block_id: int
    size: int
    replicas: list[str] = field(default_factory=list)


@dataclass
class DataNode:
    """One storage node holding block payloads."""

    node_id: str
    blocks: dict[int, bytes] = field(default_factory=dict)
    alive: bool = True
    #: Incremental byte counter — ``used_bytes`` feeds the placement
    #: sort on every block write and must not rescan the node.
    _used: int = field(default=0, repr=False)

    def store_block(self, block_id: int, data: bytes) -> None:
        """Add or overwrite one block payload."""
        previous = self.blocks.get(block_id)
        if previous is not None:
            self._used -= len(previous)
        self.blocks[block_id] = data
        self._used += len(data)

    def drop_block(self, block_id: int) -> None:
        """Release one block payload (no-op when absent)."""
        data = self.blocks.pop(block_id, None)
        if data is not None:
            self._used -= len(data)

    @property
    def used_bytes(self) -> int:
        """Bytes stored on this node."""
        return self._used


class SimHdfs:
    """A namenode plus a set of datanodes.

    Parameters
    ----------
    datanodes:
        Number of storage nodes.
    replication:
        Copies per block (capped at the number of live nodes).
    block_size:
        Bytes per block; small by real-HDFS standards because the
        workloads here are kilobyte documents, not gigabyte scans.
    """

    def __init__(self, datanodes: int = 3, replication: int = 3,
                 block_size: int = 65536,
                 clock: SimClock | None = None,
                 network: NetworkModel = LAN) -> None:
        if datanodes < 1:
            raise StorageError("need at least one datanode")
        self.clock = clock or SimClock()
        self.network = network
        self.block_size = block_size
        self.replication = replication
        self.nodes: dict[str, DataNode] = {
            f"dn{i}": DataNode(f"dn{i}") for i in range(datanodes)
        }
        self._files: dict[str, list[BlockInfo]] = {}
        self._block_ids = itertools.count(1)
        self._placement = itertools.count(0)
        #: Operation counters for the metrics endpoint.
        self.stats = {"writes": 0, "reads": 0, "bytes_written": 0,
                      "bytes_read": 0, "rereplications": 0}

    # -- placement ------------------------------------------------------------

    def _live_nodes(self) -> list[DataNode]:
        return [n for n in self.nodes.values() if n.alive]

    def _pick_targets(self, count: int,
                      exclude: set[str] = frozenset()) -> list[DataNode]:
        live = [n for n in self._live_nodes() if n.node_id not in exclude]
        if not live:
            raise StorageError("no live datanodes available")
        count = min(count, len(live))
        start = next(self._placement)
        # Round-robin start point, then least-loaded preference.
        ordered = sorted(
            live,
            key=lambda n: (n.used_bytes,
                           (hash(n.node_id) + start) % len(live)),
        )
        return ordered[:count]

    # -- file operations ----------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        """Write (or overwrite) a file, replicating every block."""
        with self.clock.trace("hdfs.write", "hdfs"):
            blocks: list[BlockInfo] = []
            for offset in range(0, max(len(data), 1), self.block_size):
                chunk = data[offset:offset + self.block_size]
                block_id = next(self._block_ids)
                targets = self._pick_targets(self.replication)
                for node in targets:
                    node.store_block(block_id, chunk)
                    self.clock.advance(
                        self.network.transfer_seconds(len(chunk)),
                        component="pool",
                    )
                blocks.append(BlockInfo(
                    block_id=block_id, size=len(chunk),
                    replicas=[n.node_id for n in targets],
                ))
            old = self._files.get(path)
            if old is not None:
                self._release(old)
            self._files[path] = blocks
            self.stats["writes"] += 1
            self.stats["bytes_written"] += len(data)

    def read(self, path: str) -> bytes:
        """Read a file from any live replica of each block."""
        blocks = self._files.get(path)
        if blocks is None:
            raise StorageError(f"no such file {path!r}")
        with self.clock.trace("hdfs.read", "hdfs"):
            out = bytearray()
            for info in blocks:
                chunk = self._read_block(info)
                out += chunk
                self.clock.advance(
                    self.network.transfer_seconds(len(chunk)),
                    component="pool",
                )
            self.stats["reads"] += 1
            self.stats["bytes_read"] += len(out)
            return bytes(out)

    def _read_block(self, info: BlockInfo) -> bytes:
        for node_id in info.replicas:
            node = self.nodes.get(node_id)
            if node is not None and node.alive and info.block_id in node.blocks:
                return node.blocks[info.block_id]
        raise StorageError(
            f"block {info.block_id} has no live replica "
            f"(datanode failures exceeded replication)"
        )

    def delete(self, path: str) -> None:
        """Delete a file and free its blocks."""
        blocks = self._files.pop(path, None)
        if blocks is None:
            raise StorageError(f"no such file {path!r}")
        self._release(blocks)

    def _release(self, blocks: list[BlockInfo]) -> None:
        for info in blocks:
            for node_id in info.replicas:
                node = self.nodes.get(node_id)
                if node is not None:
                    node.drop_block(info.block_id)

    def exists(self, path: str) -> bool:
        """True when *path* is a stored file."""
        return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """All stored paths with the given prefix, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- failure handling -------------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        """Fail a datanode and re-replicate every block it held."""
        node = self.nodes.get(node_id)
        if node is None:
            raise StorageError(f"no such datanode {node_id!r}")
        node.alive = False
        for blocks in self._files.values():
            for info in blocks:
                if node_id not in info.replicas:
                    continue
                info.replicas.remove(node_id)
                live_replicas = {
                    r for r in info.replicas
                    if self.nodes[r].alive
                }
                if not live_replicas:
                    continue  # data loss; read will surface it
                want = min(self.replication, len(self._live_nodes()))
                if len(live_replicas) < want:
                    data = self._read_block(info)
                    targets = self._pick_targets(
                        want - len(live_replicas),
                        exclude=set(info.replicas),
                    )
                    for target in targets:
                        target.store_block(info.block_id, data)
                        info.replicas.append(target.node_id)
                        self.stats["rereplications"] += 1
                        self.clock.advance(
                            self.network.transfer_seconds(len(data)),
                            component="pool",
                        )

    def under_replicated_blocks(self) -> int:
        """Blocks with fewer live replicas than the replication target."""
        want = min(self.replication, len(self._live_nodes()))
        count = 0
        for blocks in self._files.values():
            for info in blocks:
                live = sum(
                    1 for r in info.replicas if self.nodes[r].alive
                )
                if live < want:
                    count += 1
        return count
