"""Deterministic network cost model for the simulated cloud.

Transfer cost = base latency + size / bandwidth.  Deliberately simple —
the experiments in the paper do not depend on network microstructure,
only on the fact that document routing and pool access have costs that
scale with document size and operation count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for one network domain (intra-cluster or WAN)."""

    #: One-way latency per message, seconds.
    latency_seconds: float = 0.0005
    #: Throughput, bytes per second.
    bandwidth_bytes_per_second: float = 1e9

    def transfer_seconds(self, nbytes: int) -> float:
        """Cost of moving *nbytes* one way."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_second

    def rpc_seconds(self, request_bytes: int, response_bytes: int) -> float:
        """Cost of a request/response round trip."""
        return (self.transfer_seconds(request_bytes)
                + self.transfer_seconds(response_bytes))


#: Typical intra-datacenter link.
LAN = NetworkModel(latency_seconds=0.0002,
                   bandwidth_bytes_per_second=1.25e9)

#: Typical cross-enterprise WAN link (participants → portal).
WAN = NetworkModel(latency_seconds=0.02,
                   bandwidth_bytes_per_second=1.25e7)
