"""The pool of DRA4WfMS documents (paper §4.2, Fig. 7).

Documents are stored in the simulated HBase: "a DRA4WfMS document is
stored as a cell in a row of an HBase table".  The pool keeps

* the latest document of every process instance (``doc:latest``),
* the full version history (``hist:<seq>``) — an auditor can replay how
  the instance grew, and
* a TO-DO index table mapping each participant to the process instances
  waiting on them ("a very similar procedure is used to obtain the
  TO-DO list in a WfMS").

Replay protection lives here too: :meth:`register_process` refuses a
process id that was already registered, implementing the §2.1 claim
that the unique process id resists replay attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..document.delta import Manifest, assemble, chunk_document, seed_chunks
from ..document.document import Dra4wfmsDocument
from ..errors import (
    DeltaError,
    ReplayDetected,
    StorageError,
    TamperDetected,
)
from .hbase import CerChunkStore, SimHBase

__all__ = ["PoolEntry", "DocumentPool"]

DOC_TABLE = "dra4wfms_documents"
TODO_TABLE = "dra4wfms_todo"
MANIFEST_TABLE = "dra4wfms_manifests"

_FAMILY_DOC = "doc"
_FAMILY_HIST = "hist"
_FAMILY_META = "meta"


@dataclass(frozen=True)
class PoolEntry:
    """One TO-DO item: a process instance awaiting a participant."""

    participant: str
    process_id: str
    activity_id: str


@dataclass(frozen=True)
class ProcessSummary:
    """Searchable metadata of one pooled process instance.

    Derived from CER metadata only — no decryption, so the pool can
    index documents without holding any keys (§4.2's "interfaces for
    users to search and manage DRA4WfMS documents").
    """

    process_id: str
    process_name: str
    designer: str
    executions: int
    participants: tuple[str, ...]
    size_bytes: int
    versions: int


class DocumentPool:
    """HBase-backed storage for DRA4WfMS documents.

    With ``delta=True`` the pool stores each document version as a
    small **manifest** (ordered chunk digests, see
    :mod:`repro.document.delta`) plus content-addressed chunks in a
    shared :class:`~repro.cloud.hbase.CerChunkStore` — so the k-th
    version of an instance writes one new CER chunk and one manifest
    instead of the whole document, and chunks dedup across versions
    *and* across instances.  Reads reassemble and digest-check the full
    canonical bytes, so everything downstream of the pool sees exactly
    the bytes a full-storage pool would serve.
    """

    def __init__(self, hbase: SimHBase, delta: bool = False,
                 chunk_replicas: int | None = None) -> None:
        self.hbase = hbase
        self.delta = delta
        for table in (DOC_TABLE, TODO_TABLE):
            if not hbase.has_table(table):
                hbase.create_table(table)
        self.chunks: CerChunkStore | None = None
        if delta:
            if chunk_replicas is not None:
                # Factor-R chunk placement over one shard per region
                # server, digest-checked read-repair on miss — see
                # docs/SHARDING.md.
                from .placement import ReplicatedChunkStore

                self.chunks = ReplicatedChunkStore(
                    hbase, shards=len(hbase.servers),
                    replicas=chunk_replicas,
                )
            else:
                self.chunks = CerChunkStore(hbase)
            if not hbase.has_table(MANIFEST_TABLE):
                hbase.create_table(MANIFEST_TABLE)

    # -- replay guard ------------------------------------------------------------

    def register_process(self, process_id: str) -> None:
        """Reserve a process id; a second registration is a replay."""
        row = self.hbase.get(DOC_TABLE, process_id)
        if (_FAMILY_META, "registered") in row:
            raise ReplayDetected(
                f"process id {process_id!r} was already registered; "
                f"replayed initial documents are rejected"
            )
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_META, "registered",
                       b"1")

    def is_registered(self, process_id: str) -> bool:
        """True when the process id is known to the pool."""
        row = self.hbase.get(DOC_TABLE, process_id)
        return (_FAMILY_META, "registered") in row

    # -- documents ----------------------------------------------------------------

    def store(self, document: Dra4wfmsDocument) -> int:
        """Store a new version of a process's document; returns the seq."""
        process_id = document.process_id
        if not self.is_registered(process_id):
            raise StorageError(
                f"process {process_id!r} was never registered; upload the "
                f"initial document through a portal first"
            )
        if self.delta:
            return self._store_delta(document)
        data = document.to_bytes()
        row = self.hbase.get(DOC_TABLE, process_id)
        if (_FAMILY_META, "retired") in row:
            raise StorageError(
                f"process {process_id!r} was retired from hot storage; "
                f"its evidence lives in the archival bundle"
            )
        previous = row.get((_FAMILY_DOC, "latest"))
        if previous is not None:
            # Monotonicity guard: a process document only ever grows.
            # Storing a copy that lost CERs is a rollback/truncation
            # attack — the one alteration signature verification alone
            # cannot catch, because a prefix of the cascade is itself a
            # validly-signed document.
            old_ids = {
                cer.cer_id
                for cer in Dra4wfmsDocument.from_bytes(previous).cers()
            }
            new_ids = {cer.cer_id for cer in document.cers()}
            missing = old_ids - new_ids
            if missing:
                raise TamperDetected(
                    f"submitted document for {process_id!r} is missing "
                    f"previously stored CERs {sorted(missing)} "
                    f"(rollback attack)"
                )
        seq = sum(1 for (family, _) in row if family == _FAMILY_HIST)
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_HIST, f"{seq:08d}",
                       data)
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_DOC, "latest", data)
        return seq

    def _store_delta(self, document: Dra4wfmsDocument) -> int:
        """Delta-mode store: new chunks + a manifest, not the document."""
        process_id = document.process_id
        manifest, payloads = chunk_document(document)
        row = self.hbase.get(DOC_TABLE, process_id)
        if (_FAMILY_META, "retired") in row:
            raise StorageError(
                f"process {process_id!r} was retired from hot storage; "
                f"its evidence lives in the archival bundle"
            )
        previous = row.get((_FAMILY_DOC, "manifest"))
        if previous is not None:
            # Monotonicity guard, chunk-level: every CER chunk of the
            # previously stored version must reappear *byte-identical*
            # in the new one.  Strictly stronger than the id-set check
            # of full mode (it also catches a CER replaced in place),
            # and O(chunk list) instead of O(parse document).
            old_cers = set(Manifest.from_bytes(previous).cer_digests)
            new_cers = set(manifest.cer_digests)
            missing = old_cers - new_cers
            if missing:
                raise TamperDetected(
                    f"submitted document for {process_id!r} drops "
                    f"{len(missing)} previously stored CER chunk(s) "
                    f"(rollback attack)"
                )
        assert self.chunks is not None
        self.chunks.put_chunks(payloads)
        # Every stored manifest version takes one reference on each
        # chunk it names; compaction/retirement releases them, and only
        # a zero-ref chunk is ever GC-eligible.
        self.chunks.pin(manifest.chunk_digests)
        manifest_bytes = manifest.to_bytes()
        seq = sum(1 for (family, _) in row if family == _FAMILY_HIST)
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_HIST, f"{seq:08d}",
                       manifest_bytes)
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_DOC, "manifest",
                       manifest_bytes)
        # Manifest-by-digest lookup: a delta retrieve names the version
        # the client already holds by its document digest.
        self.hbase.put(MANIFEST_TABLE, manifest.doc_digest, "m", "b",
                       manifest_bytes)
        return seq

    # -- delta-mode accessors -----------------------------------------------

    def latest_manifest(self, process_id: str) -> Manifest:
        """Manifest of the most recent stored version (delta mode only)."""
        if not self.delta:
            raise StorageError("pool is not in delta mode")
        row = self.hbase.get(DOC_TABLE, process_id)
        data = row.get((_FAMILY_DOC, "manifest"))
        if data is None:
            raise StorageError(f"no document stored for {process_id!r}")
        return Manifest.from_bytes(data)

    def manifest_by_digest(self, doc_digest: str) -> Manifest | None:
        """Manifest of any stored version, by document digest, or None."""
        if not self.delta:
            raise StorageError("pool is not in delta mode")
        row = self.hbase.get(MANIFEST_TABLE, doc_digest)
        data = row.get(("m", "b"))
        if data is None:
            return None
        return Manifest.from_bytes(data)

    def _fetch_chunks(self, manifest: Manifest) -> dict[str, bytes]:
        assert self.chunks is not None
        fetched = self.chunks.get_chunks(manifest.chunk_digests)
        missing = [d for d in manifest.chunk_digests if d not in fetched]
        if missing:
            raise DeltaError(
                f"chunk store is missing {len(missing)} chunk(s) of "
                f"manifest {manifest.doc_digest[:12]}…"
            )
        return fetched

    def assemble_bytes(self, manifest: Manifest) -> bytes:
        """Reassembled, digest-checked canonical bytes of *manifest*."""
        return assemble(manifest, self._fetch_chunks(manifest))

    def latest_bytes(self, process_id: str) -> bytes:
        """Canonical bytes of the most recent stored version."""
        if self.delta:
            return self.assemble_bytes(self.latest_manifest(process_id))
        row = self.hbase.get(DOC_TABLE, process_id)
        data = row.get((_FAMILY_DOC, "latest"))
        if data is None:
            raise StorageError(f"no document stored for {process_id!r}")
        return data

    def latest(self, process_id: str) -> Dra4wfmsDocument:
        """The most recent stored document of an instance.

        In delta mode the returned document's canonical memo is
        pre-seeded from the digest-checked chunks, so downstream
        serialization/chunking of the (unchanged) history is O(new CER)
        instead of O(document).
        """
        if self.delta:
            manifest = self.latest_manifest(process_id)
            fetched = self._fetch_chunks(manifest)
            document = Dra4wfmsDocument.from_bytes(
                assemble(manifest, fetched)
            )
            seed_chunks(document, manifest, fetched)
            return document
        return Dra4wfmsDocument.from_bytes(self.latest_bytes(process_id))

    def history(self, process_id: str) -> list[Dra4wfmsDocument]:
        """Every stored version, oldest first."""
        row = self.hbase.get(DOC_TABLE, process_id)
        versions = sorted(
            (qualifier, data) for (family, qualifier), data in row.items()
            if family == _FAMILY_HIST
        )
        if self.delta:
            return [
                Dra4wfmsDocument.from_bytes(
                    self.assemble_bytes(Manifest.from_bytes(data))
                )
                for _, data in versions
            ]
        return [Dra4wfmsDocument.from_bytes(data) for _, data in versions]

    def process_ids(self) -> list[str]:
        """All registered process ids."""
        return [key for key, _ in self.hbase.scan(DOC_TABLE)]

    # -- search & management (§4.2) ------------------------------------------

    def summarize(self, process_id: str) -> ProcessSummary:
        """Metadata summary of one instance (no decryption)."""
        row = self.hbase.get(DOC_TABLE, process_id)
        if self.delta:
            data = row.get((_FAMILY_DOC, "manifest"))
            if data is None:
                raise StorageError(f"no document stored for {process_id!r}")
            data = self.assemble_bytes(Manifest.from_bytes(data))
        else:
            data = row.get((_FAMILY_DOC, "latest"))
            if data is None:
                raise StorageError(f"no document stored for {process_id!r}")
        document = Dra4wfmsDocument.from_bytes(data)
        completed = [
            cer for cer in document.cers(include_definition=False)
            if cer.kind in ("standard", "tfc")
        ]
        # Executors sign standard CERs in the basic model and
        # intermediate CERs in the advanced model (the TFC signs the
        # tfc-kind ones).
        executors = {
            cer.participant
            for cer in document.cers(include_definition=False)
            if cer.kind in ("standard", "intermediate")
        }
        versions = sum(1 for (family, _) in row if family == _FAMILY_HIST)
        return ProcessSummary(
            process_id=process_id,
            process_name=document.process_name,
            designer=document.designer,
            executions=len(completed),
            participants=tuple(sorted(executors)),
            size_bytes=len(data),
            versions=versions,
        )

    def search(self,
               process_name: str | None = None,
               participant: str | None = None,
               designer: str | None = None,
               min_executions: int | None = None,
               include_archived: bool = False) -> list[ProcessSummary]:
        """Search pooled instances by metadata filters (AND semantics)."""
        latest_cell = (_FAMILY_DOC, "manifest" if self.delta else "latest")
        out: list[ProcessSummary] = []
        for process_id, row in self.hbase.scan(DOC_TABLE):
            if latest_cell not in row:
                continue
            if not include_archived and \
                    (_FAMILY_META, "archived") in row:
                continue
            summary = self.summarize(process_id)
            if process_name is not None and \
                    summary.process_name != process_name:
                continue
            if designer is not None and summary.designer != designer:
                continue
            if participant is not None and \
                    participant not in summary.participants and \
                    participant != summary.designer:
                continue
            if min_executions is not None and \
                    summary.executions < min_executions:
                continue
            out.append(summary)
        return out

    # -- lifecycle management (§4.2 "manage DRA4WfMS documents") ---------------

    def archive(self, process_id: str) -> None:
        """Mark a finished instance archived (hidden from default search,
        still retrievable — legal evidence must never be silently lost)."""
        if not self.is_registered(process_id):
            raise StorageError(f"unknown process {process_id!r}")
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_META, "archived",
                       b"1")

    def is_archived(self, process_id: str) -> bool:
        """True when the instance is archived."""
        row = self.hbase.get(DOC_TABLE, process_id)
        return (_FAMILY_META, "archived") in row

    def _hist_manifests(
        self, row: dict[tuple[str, str], bytes],
    ) -> list[tuple[str, Manifest]]:
        """An instance row's history manifests, oldest first."""
        return [
            (qualifier, Manifest.from_bytes(data))
            for (family, qualifier), data in sorted(row.items())
            if family == _FAMILY_HIST
        ]

    def compact(self, process_id: str) -> int:
        """Collapse an instance's per-hop manifests into one (delta mode).

        Every intermediate version's manifest is dropped from the
        history and the manifest-by-digest index, and its chunk
        references are released — the final document's signature
        cascade already embeds every earlier hop, so nothing
        evidentiary is lost.  Returns how many manifests were removed.
        The sealed final manifest stays both as ``doc:manifest`` and as
        the single remaining history cell.
        """
        if not self.delta:
            raise StorageError("manifest compaction requires delta mode")
        row = self.hbase.get(DOC_TABLE, process_id)
        final_bytes = row.get((_FAMILY_DOC, "manifest"))
        if final_bytes is None:
            raise StorageError(f"no document stored for {process_id!r}")
        final = Manifest.from_bytes(final_bytes)
        assert self.chunks is not None
        stale = self._hist_manifests(row)[:-1]
        with self.hbase.clock.trace("pool.compact", "pool"):
            for _, manifest in stale:
                self.chunks.unpin(manifest.chunk_digests)
            self.hbase.delete_cells(
                DOC_TABLE, process_id,
                [(_FAMILY_HIST, qualifier) for qualifier, _ in stale])
            self.hbase.delete_rows(MANIFEST_TABLE, sorted({
                manifest.doc_digest for _, manifest in stale
                if manifest.doc_digest != final.doc_digest
            }))
            self.hbase.put(DOC_TABLE, process_id, _FAMILY_META,
                           "compacted", b"1")
        return len(stale)

    def retire(self, process_id: str) -> None:
        """Drop an archived instance from hot storage (delta mode).

        Releases every remaining chunk reference and deletes the
        instance's manifests, so the next :meth:`CerChunkStore.gc`
        sweep reclaims chunks no other live instance shares.  Requires
        :meth:`archive` first — and the operator is expected to export
        an archival bundle *before* retiring, because afterwards the
        pool can no longer serve the document.  The process id stays
        registered, so replayed initial documents are still rejected,
        and further stores are refused.
        """
        if not self.delta:
            raise StorageError("retire requires delta mode")
        row = self.hbase.get(DOC_TABLE, process_id)
        if (_FAMILY_META, "registered") not in row:
            raise StorageError(f"unknown process {process_id!r}")
        if (_FAMILY_META, "archived") not in row:
            raise StorageError(
                f"process {process_id!r} must be archived before it can "
                f"be retired from hot storage"
            )
        if (_FAMILY_META, "retired") in row:
            return
        assert self.chunks is not None
        history = self._hist_manifests(row)
        with self.hbase.clock.trace("pool.retire", "pool"):
            for _, manifest in history:
                self.chunks.unpin(manifest.chunk_digests)
            self.hbase.delete_cells(
                DOC_TABLE, process_id,
                [(_FAMILY_HIST, qualifier) for qualifier, _ in history]
                + [(_FAMILY_DOC, "manifest")])
            self.hbase.delete_rows(MANIFEST_TABLE, sorted({
                manifest.doc_digest for _, manifest in history
            }))
            self.hbase.put(DOC_TABLE, process_id, _FAMILY_META, "retired",
                           b"1")

    def is_retired(self, process_id: str) -> bool:
        """True when the instance was retired from hot storage."""
        row = self.hbase.get(DOC_TABLE, process_id)
        return (_FAMILY_META, "retired") in row

    def gc(self) -> tuple[int, int]:
        """Sweep zero-reference chunks; ``(chunks_deleted, bytes)``."""
        if not self.delta:
            raise StorageError("chunk GC requires delta mode")
        assert self.chunks is not None
        return self.chunks.gc()

    def flush_hot_tables(self) -> int:
        """Flush the tables a lifecycle sweep filled with tombstones.

        Retire + GC leave the document, manifest-index, and chunk
        region WALs full of delete markers; explicitly flushing (the
        HBase operator move after a bulk delete) resets those logs so
        the hot path stops paying to rewrite them on every put.
        Returns how many regions flushed.
        """
        flushed = self.hbase.flush_table(DOC_TABLE)
        if self.delta:
            flushed += self.hbase.flush_table(MANIFEST_TABLE)
        if self.chunks is not None:
            flushed += self.chunks.flush()
        return flushed

    def purge(self, process_id: str) -> None:
        """Irreversibly delete an instance and its TO-DO entries.

        The process id stays registered so a replayed initial document
        is still rejected after the purge.
        """
        row = self.hbase.get(DOC_TABLE, process_id)
        if (_FAMILY_META, "registered") not in row:
            raise StorageError(f"unknown process {process_id!r}")
        if self.delta and self.chunks is not None:
            # Release the purged versions' chunk references and their
            # by-digest index rows, or the refcounts would pin chunks
            # of a document that no longer exists.
            history = self._hist_manifests(row)
            for _, manifest in history:
                self.chunks.unpin(manifest.chunk_digests)
            self.hbase.delete_rows(MANIFEST_TABLE, sorted({
                manifest.doc_digest for _, manifest in history
            }))
        self.hbase.delete_row(DOC_TABLE, process_id)
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_META, "registered",
                       b"1")
        self.hbase.put(DOC_TABLE, process_id, _FAMILY_META, "purged",
                       b"1")
        # Drop any dangling TO-DO entries for the purged instance.
        for key, _ in self.hbase.scan(TODO_TABLE):
            if key.split("\x00")[1] == process_id:
                self.hbase.delete_row(TODO_TABLE, key)

    # -- TO-DO index ------------------------------------------------------------------

    @staticmethod
    def _todo_key(participant: str, process_id: str, activity_id: str) -> str:
        return f"{participant}\x00{process_id}\x00{activity_id}"

    def add_todo(self, participant: str, process_id: str,
                 activity_id: str) -> None:
        """Record that *participant* must execute *activity_id* next."""
        self.hbase.put(
            TODO_TABLE,
            self._todo_key(participant, process_id, activity_id),
            "todo", "pending", b"1",
        )

    def remove_todo(self, participant: str, process_id: str,
                    activity_id: str) -> None:
        """Clear a TO-DO entry once the activity result arrives."""
        self.hbase.delete_row(
            TODO_TABLE, self._todo_key(participant, process_id, activity_id)
        )

    def todo_for(self, participant: str) -> list[PoolEntry]:
        """The participant's TO-DO list (paper §4.2 "Search" operation)."""
        prefix = f"{participant}\x00"
        rows = self.hbase.scan(TODO_TABLE, start_key=prefix,
                               stop_key=prefix + "￿")
        entries = []
        for key, _ in rows:
            _, process_id, activity_id = key.split("\x00")
            entries.append(PoolEntry(
                participant=participant,
                process_id=process_id,
                activity_id=activity_id,
            ))
        return entries
