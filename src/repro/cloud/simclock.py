"""Simulated wall clock for the cloud substrate.

All cloud components (HDFS, HBase, portals, MapReduce) charge their
operation costs to a shared :class:`SimClock`, so experiments measure a
deterministic *simulated* latency budget independent of the host's real
performance — except for the crypto work, which is always measured in
real time because that is what the paper's tables report.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock.

    Supports deferred callbacks (used by HDFS re-replication and
    notification delivery): ``schedule(delay, fn)`` runs ``fn`` when the
    clock passes ``now + delay``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward, firing any due callbacks in order."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self._now + seconds
        while self._events and self._events[0][0] <= target:
            when, _, callback = heapq.heappop(self._events)
            self._now = when
            callback()
        self._now = target
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* once the clock advances past ``now + delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._sequence += 1
        heapq.heappush(
            self._events, (self._now + delay, self._sequence, callback)
        )

    @property
    def pending_events(self) -> int:
        """Number of scheduled callbacks not yet fired."""
        return len(self._events)
