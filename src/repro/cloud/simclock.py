"""Simulated wall clock for the cloud substrate.

All cloud components (HDFS, HBase, portals, MapReduce) charge their
operation costs to a shared :class:`SimClock`, so experiments measure a
deterministic *simulated* latency budget independent of the host's real
performance — except for the crypto work, which is always measured in
real time because that is what the paper's tables report.

Two fleet-oriented extensions let a discrete-event scheduler reuse the
same component code without rewriting it:

* every charge may carry a **component tag** (``advance(s,
  component="portal")``), so a listener can attribute cost to the
  service station that incurred it;
* :meth:`capture` temporarily redirects charges into a
  :class:`CostCapture` bucket instead of moving global time — the
  scheduler runs a portal/pool operation, reads the per-component
  costs it *would* have charged, and replays them through queued
  service stations at the right simulated moments.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ContextManager, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.tracer import Tracer

__all__ = ["SimClock", "CostCapture"]

#: Shared do-nothing context for untraced clocks — allocated once so the
#: tracing-off path adds no per-call object churn.
_NULL_SPAN: ContextManager[None] = nullcontext()


@dataclass
class CostCapture:
    """Charges recorded during a :meth:`SimClock.capture` block."""

    #: ``(component, seconds)`` in charge order.  Untagged charges are
    #: recorded under ``"misc"``.
    charges: list[tuple[str, float]] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Sum of all captured charges."""
        return sum(seconds for _, seconds in self.charges)

    def by_component(self) -> dict[str, float]:
        """Captured seconds aggregated per component tag."""
        out: dict[str, float] = {}
        for component, seconds in self.charges:
            out[component] = out.get(component, 0.0) + seconds
        return out

    def component(self, name: str) -> float:
        """Captured seconds of one component (0.0 when absent)."""
        return self.by_component().get(name, 0.0)

    def merge(self, other: "CostCapture | list[tuple[str, float]]") -> None:
        """Append another capture's charges (tags preserved) to this one.

        A worker-pool run captures costs in the worker process; the
        parent merges each worker's serialized charge list into its own
        capture so per-component attribution survives the process
        boundary instead of being silently dropped.
        """
        charges = other.charges if isinstance(other, CostCapture) else other
        for component, seconds in charges:
            self.charges.append((str(component), float(seconds)))


class SimClock:
    """A monotonically advancing simulated clock.

    Supports deferred callbacks (used by HDFS re-replication and
    notification delivery): ``schedule(delay, fn)`` runs ``fn`` when the
    clock passes ``now + delay``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._capture: CostCapture | None = None
        #: Optional observability hook (:class:`repro.obs.Tracer`).  When
        #: set, every cost charge is mirrored to the tracer; ``None``
        #: (the default) keeps the clock entirely observation-free.
        self.tracer: "Tracer | None" = None

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, component: str | None = None) -> float:
        """Move time forward, firing any due callbacks in order.

        *component* names the service that incurred the cost (portal,
        pool, notify, …).  It has no effect on normal advancing, but
        inside a :meth:`capture` block the charge is recorded under
        that tag instead of moving time.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if self._capture is not None:
            self._capture.charges.append((component or "misc", seconds))
            if self.tracer is not None:
                self.tracer.on_charge(component or "misc", seconds)
            return self._now
        if self.tracer is not None and component is not None:
            # Untagged advances outside a capture are scheduler idle time
            # (``advance_to``), not work — only tagged cost is traced.
            self.tracer.on_charge(component, seconds)
        target = self._now + seconds
        while self._events and self._events[0][0] <= target:
            when, _, callback = heapq.heappop(self._events)
            self._now = when
            callback()
        self._now = target
        return self._now

    def advance_to(self, target: float) -> float:
        """Advance to an absolute simulated time (≥ now)."""
        return self.advance(target - self._now)

    def trace(self, name: str,
              component: str | None = None) -> ContextManager[object]:
        """A tracer span for *name*, or a shared no-op context.

        Component code wraps its operations in ``with
        clock.trace("hbase.put", "hbase"):`` unconditionally; when no
        tracer is attached this returns one preallocated
        ``nullcontext`` so the untraced hot path stays allocation-free.
        """
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, component=component)

    @contextmanager
    def trace_muted(self) -> Iterator[None]:
        """Suspend tracing for a block (setup cost the caller discards).

        The fleet logs in every enterprise client once and throws that
        capture away; muting keeps those charges out of the trace so
        traced totals still equal the capture sums the reports use.
        """
        tracer, self.tracer = self.tracer, None
        try:
            yield
        finally:
            self.tracer = tracer

    @contextmanager
    def capture(self) -> Iterator[CostCapture]:
        """Record charges instead of advancing time.

        Used by the fleet scheduler: component code still calls
        ``clock.advance(cost, component=...)``, but while the block is
        active the clock stands still and every charge lands in the
        returned :class:`CostCapture`.  Callbacks scheduled during the
        block stay scheduled relative to the frozen ``now``.  Nested
        captures each see only their own charges.
        """
        previous = self._capture
        bucket = CostCapture()
        self._capture = bucket
        try:
            yield bucket
        finally:
            self._capture = previous

    def absorb(self,
               charges: "CostCapture | list[tuple[str, float]]") -> None:
        """Credit charges recorded *elsewhere* into this clock.

        Pool workers run with their own :class:`SimClock`; their tagged
        crypto/IO charges come back to the parent as plain
        ``(component, seconds)`` lists.  Inside an active
        :meth:`capture` block the charges land in the capture bucket
        (preserving tags); outside one, simulated time advances by
        their total — either way nothing is dropped.
        """
        items = (charges.charges if isinstance(charges, CostCapture)
                 else charges)
        if self._capture is not None:
            self._capture.merge(items)
            return
        for _, seconds in items:
            self.advance(seconds)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* once the clock advances past ``now + delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._sequence += 1
        heapq.heappush(
            self._events, (self._now + delay, self._sequence, callback)
        )

    @property
    def pending_events(self) -> int:
        """Number of scheduled callbacks not yet fired."""
        return len(self._events)
