"""Dynamic flow control and dynamic security policy (run-time amendments).

The paper lists among DRA4WfMS's features: "It can support dynamic flow
control and a dynamic security policy in its run-time environment."
This module realises that feature in the only way consistent with an
engine-less architecture: an amendment is itself a **signed CER** in the
routed document.

An amendment CER carries a plaintext ``<AmendmentSpec>`` payload and a
signature that countersigns the document frontier, so amendments are
*ordered*, *nonrepudiable*, and *tamper-evident* exactly like execution
results.  Three amendment kinds cover the paper's feature:

``delegate``
    Re-assign the designated participant of an activity (a participant
    hands their desk to a deputy).  May be signed by the activity's
    *currently designated* participant or by the workflow designer.
``add-activity``
    Insert an ad-hoc activity into a sequence edge (dynamic flow
    control).  Designer-only.
``grant-reader``
    Extend the reader set of a response field for *future* encryptions
    (dynamic security policy).  Past ciphertexts are untouched — a
    grant cannot retroactively decrypt history.  May be signed by the
    designer or by the field's producing participant.

Every agent derives the **effective definition** by replaying the
amendment CERs in document order on top of the designer-signed base
definition; verification re-checks each amendment's authorisation
against the definition *as amended so far*, so a delegation chain is
honoured (the deputy may delegate onward).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pure.rsa import RsaPrivateKey
from ..errors import DefinitionError, DocumentFormatError, VerificationError
from ..model.activity import Activity, FieldSpec
from ..model.controlflow import Transition
from ..model.definition import WorkflowDefinition
from ..model.policy import FieldRule, ReaderClause
from .cer import CER, KIND_AMENDMENT
from .document import Dra4wfmsDocument
from .sections import CER_TAG

__all__ = [
    "AMENDMENT_ACTIVITY",
    "KIND_AMENDMENT",
    "SPEC_TAG",
    "Amendment",
    "DelegateActivity",
    "AddActivity",
    "GrantReader",
    "amendment_to_xml",
    "amendment_from_xml",
    "apply_amendment",
    "check_authorized",
    "amendment_cers",
    "effective_definition",
    "make_amendment_cer",
]

#: Pseudo activity id carried by amendment CERs.
AMENDMENT_ACTIVITY = "__amendment__"

SPEC_TAG = "AmendmentSpec"


@dataclass(frozen=True)
class DelegateActivity:
    """Re-assign the designated participant of *activity_id*."""

    activity_id: str
    new_participant: str
    reason: str = ""

    kind = "delegate"


@dataclass(frozen=True)
class AddActivity:
    """Insert *activity* on the sequence edge *after* → *before*."""

    activity: Activity
    after: str
    before: str
    reason: str = ""

    kind = "add-activity"


@dataclass(frozen=True)
class GrantReader:
    """Add *reader* to the reader set of ``activity_id.fieldname``."""

    activity_id: str
    fieldname: str
    reader: str
    reason: str = ""

    kind = "grant-reader"


Amendment = DelegateActivity | AddActivity | GrantReader


def amendment_to_xml(amendment: Amendment, spec_id: str) -> ET.Element:
    """Serialize an amendment into an ``<AmendmentSpec>`` element."""
    spec = ET.Element(SPEC_TAG, {"Id": spec_id, "Kind": amendment.kind})
    if amendment.reason:
        reason = ET.SubElement(spec, "Reason")
        reason.text = amendment.reason
    if isinstance(amendment, DelegateActivity):
        ET.SubElement(spec, "Delegate", {
            "Activity": amendment.activity_id,
            "NewParticipant": amendment.new_participant,
        })
    elif isinstance(amendment, AddActivity):
        insert = ET.SubElement(spec, "Insert", {
            "After": amendment.after, "Before": amendment.before,
        })
        node = ET.SubElement(insert, "Activity", {
            "ActivityId": amendment.activity.activity_id,
            "Participant": amendment.activity.participant,
            "Split": amendment.activity.split.value,
            "Join": amendment.activity.join.value,
        })
        if amendment.activity.name:
            node.set("Name", amendment.activity.name)
        if amendment.activity.requests:
            requests = ET.SubElement(node, "Requests")
            for name in amendment.activity.requests:
                request = ET.SubElement(requests, "Request")
                request.text = name
        if amendment.activity.responses:
            responses = ET.SubElement(node, "Responses")
            for field_spec in amendment.activity.responses:
                ET.SubElement(responses, "Response", {
                    "Name": field_spec.name, "Type": field_spec.ftype,
                })
    elif isinstance(amendment, GrantReader):
        ET.SubElement(spec, "Grant", {
            "Activity": amendment.activity_id,
            "Field": amendment.fieldname,
            "Reader": amendment.reader,
        })
    else:  # pragma: no cover - exhaustive
        raise DocumentFormatError(f"unknown amendment {amendment!r}")
    return spec


def amendment_from_xml(spec: ET.Element) -> Amendment:
    """Parse an ``<AmendmentSpec>`` element back into an amendment."""
    if spec.tag != SPEC_TAG:
        raise DocumentFormatError(f"expected <{SPEC_TAG}>, got <{spec.tag}>")
    kind = spec.get("Kind", "")
    reason_node = spec.find("Reason")
    reason = reason_node.text or "" if reason_node is not None else ""
    if kind == "delegate":
        node = spec.find("Delegate")
        if node is None:
            raise DocumentFormatError("delegate amendment missing body")
        return DelegateActivity(
            activity_id=node.get("Activity", ""),
            new_participant=node.get("NewParticipant", ""),
            reason=reason,
        )
    if kind == "add-activity":
        insert = spec.find("Insert")
        node = spec.find("Insert/Activity") if insert is not None else None
        if insert is None or node is None:
            raise DocumentFormatError("add-activity amendment missing body")
        from ..model.controlflow import JoinKind, SplitKind

        activity = Activity(
            activity_id=node.get("ActivityId", ""),
            participant=node.get("Participant", ""),
            name=node.get("Name", ""),
            requests=tuple(
                request.text or ""
                for request in node.findall("Requests/Request")
            ),
            responses=tuple(
                FieldSpec(name=response.get("Name", ""),
                          ftype=response.get("Type", "string"))
                for response in node.findall("Responses/Response")
            ),
            split=SplitKind(node.get("Split", "none")),
            join=JoinKind(node.get("Join", "none")),
        )
        return AddActivity(
            activity=activity,
            after=insert.get("After", ""),
            before=insert.get("Before", ""),
            reason=reason,
        )
    if kind == "grant-reader":
        node = spec.find("Grant")
        if node is None:
            raise DocumentFormatError("grant-reader amendment missing body")
        return GrantReader(
            activity_id=node.get("Activity", ""),
            fieldname=node.get("Field", ""),
            reader=node.get("Reader", ""),
            reason=reason,
        )
    raise DocumentFormatError(f"unknown amendment kind {kind!r}")


def check_authorized(amendment: Amendment, signer: str,
                     definition: WorkflowDefinition) -> None:
    """Authorisation rules, checked against the definition *as amended
    so far* (so delegation chains compose).

    Raises :class:`VerificationError` when *signer* may not apply
    *amendment*.
    """
    designer = definition.designer
    if isinstance(amendment, DelegateActivity):
        current = definition.activity(amendment.activity_id).participant
        if signer not in (current, designer):
            raise VerificationError(
                f"delegation of {amendment.activity_id!r} signed by "
                f"{signer!r}, but only {current!r} (current participant) "
                f"or the designer may delegate it"
            )
        return
    if isinstance(amendment, AddActivity):
        if signer != designer:
            raise VerificationError(
                f"ad-hoc activity {amendment.activity.activity_id!r} "
                f"added by {signer!r}; only the designer may change the "
                f"control flow"
            )
        return
    if isinstance(amendment, GrantReader):
        producer = definition.activity(amendment.activity_id).participant
        if signer not in (producer, designer):
            raise VerificationError(
                f"reader grant on {amendment.activity_id}."
                f"{amendment.fieldname} signed by {signer!r}; only the "
                f"producer ({producer!r}) or the designer may grant"
            )
        return
    raise VerificationError(f"unknown amendment {amendment!r}")


def apply_amendment(definition: WorkflowDefinition,
                    amendment: Amendment) -> WorkflowDefinition:
    """Return a new definition with *amendment* applied."""
    updated = WorkflowDefinition.from_dict(definition.to_dict())
    if isinstance(amendment, DelegateActivity):
        old = updated.activity(amendment.activity_id)
        replacement = Activity.from_dict({
            **old.to_dict(), "participant": amendment.new_participant,
        })
        updated.activities[amendment.activity_id] = replacement
        return updated
    if isinstance(amendment, AddActivity):
        if amendment.activity.activity_id in updated.activities:
            raise DefinitionError(
                f"ad-hoc activity id {amendment.activity.activity_id!r} "
                f"already exists"
            )
        edge = None
        for transition in updated.transitions:
            if (transition.source == amendment.after
                    and transition.target == amendment.before):
                edge = transition
                break
        if edge is None:
            raise DefinitionError(
                f"no sequence edge {amendment.after!r} -> "
                f"{amendment.before!r} to insert into"
            )
        updated.transitions.remove(edge)
        updated.add_activity(amendment.activity)
        new_id = amendment.activity.activity_id
        updated.add_transition(Transition(
            source=amendment.after, target=new_id,
            condition=edge.condition, priority=edge.priority,
        ))
        updated.add_transition(Transition(source=new_id,
                                          target=amendment.before))
        return updated
    if isinstance(amendment, GrantReader):
        key = (amendment.activity_id, amendment.fieldname)
        rule = updated.policy.rules.get(key)
        if rule is None:
            # No explicit rule: materialise the implicit requester rule
            # and extend it.
            readers = set(updated.policy.readers_for(
                updated, amendment.activity_id, amendment.fieldname
            ))
            readers.add(amendment.reader)
            updated.policy.rules[key] = FieldRule(
                activity_id=amendment.activity_id,
                fieldname=amendment.fieldname,
                clauses=(ReaderClause(readers=tuple(sorted(readers))),),
            )
        else:
            clauses = tuple(
                ReaderClause(
                    readers=tuple(sorted({*clause.readers,
                                          amendment.reader})),
                    condition=clause.condition,
                )
                for clause in rule.clauses
            )
            updated.policy.rules[key] = FieldRule(
                activity_id=amendment.activity_id,
                fieldname=amendment.fieldname,
                clauses=clauses,
            )
        return updated
    raise DefinitionError(f"unknown amendment {amendment!r}")


def amendment_cers(document: Dra4wfmsDocument) -> list[CER]:
    """All amendment CERs in document (= application) order."""
    return [
        CER(node)
        for node in document.results_section.findall(CER_TAG)
        if node.get("Kind") == KIND_AMENDMENT
    ]


def make_amendment_cer(
    amendment: Amendment,
    sequence: int,
    signer,
    frontier_signatures: list[ET.Element],
    backend: CryptoBackend | None = None,
) -> CER:
    """Build a signed amendment CER.

    The signature covers the amendment spec **and the document
    frontier**, pinning exactly the process state the amendment was
    issued against — later CERs countersign the amendment in turn, so
    it joins the cascade like any execution result.
    """
    from ..xmlsec.xmldsig import sign_references

    backend = backend or default_backend()
    if not frontier_signatures:
        raise DocumentFormatError(
            "an amendment must countersign at least the designer's "
            "signature"
        )
    element = ET.Element(CER_TAG, {
        "Id": f"cer-amd-{sequence}",
        "Kind": KIND_AMENDMENT,
        "Activity": AMENDMENT_ACTIVITY,
        "Iteration": str(sequence),
        "Participant": signer.identity,
    })
    spec = amendment_to_xml(amendment, f"amdspec-{sequence}")
    element.append(spec)
    signature = sign_references(
        signature_id=f"sig-amd-{sequence}",
        signer=signer.identity,
        private_key=signer.private_key,
        targets=[spec, *frontier_signatures],
        backend=backend,
    )
    element.append(signature.element)
    return CER(element)


def effective_definition(
    document: Dra4wfmsDocument,
    identity: str | None = None,
    private_key: RsaPrivateKey | None = None,
    backend: CryptoBackend | None = None,
    check_authorization: bool = True,
) -> WorkflowDefinition:
    """The base definition with all embedded amendments applied.

    When *check_authorization* is set (the default), each amendment's
    signer is validated against the definition as amended so far —
    unauthorised amendments make the whole document invalid.
    """
    backend = backend or default_backend()
    definition = document.definition(identity, private_key, backend)
    for cer in amendment_cers(document):
        spec = cer.element.find(SPEC_TAG)
        if spec is None:
            raise DocumentFormatError(
                f"amendment CER {cer.cer_id!r} has no {SPEC_TAG}"
            )
        amendment = amendment_from_xml(spec)
        if check_authorization:
            check_authorized(amendment, cer.participant, definition)
        definition = apply_amendment(definition, amendment)
    return definition
