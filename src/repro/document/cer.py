"""Characteristic execution results (CERs).

Paper §2.1: the *characteristic execution result* of activity ``Aq`` is
``CER(Aq) = ({R_Aq}_ee, [{R_Aq}_ee, Sig(X''_Ap1), …]_Pri(Aq))`` — the
element-wise encrypted execution result together with the cascaded
signature.  With loops, ``CER(Aq^k)`` is indexed by the iteration
``k``.  The advanced model adds the *intermediate* CER (``CERit``,
result encrypted to the TFC server) and the TFC-produced final CER
carrying the timestamp.

This module wraps a ``<CER>`` XML element with typed accessors; CERs
are created by :mod:`repro.document.builder` and the runtime agents.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..errors import DocumentFormatError
from ..xmlsec.xmldsig import ID_ATTR, XmlSignature
from ..xmlsec.xmlenc import ENC_TAG, EncryptedValue
from .sections import (
    CER_TAG,
    KIND_DEFINITION,
    KIND_INTERMEDIATE,
    KIND_STANDARD,
    KIND_TFC,
    RESULT_TAG,
    TIMESTAMP_TAG,
)

__all__ = ["CER", "CerKey"]

#: (activity_id, iteration, kind) — the unique key of a CER in a document.
CerKey = tuple[str, int, str]

#: CER Kind for run-time amendments (see repro.document.amendments).
KIND_AMENDMENT = "amendment"

_VALID_KINDS = (KIND_DEFINITION, KIND_STANDARD, KIND_INTERMEDIATE,
                KIND_TFC, KIND_AMENDMENT)


class CER:
    """Typed view over one ``<CER>`` element."""

    def __init__(self, element: ET.Element) -> None:
        if element.tag != CER_TAG:
            raise DocumentFormatError(f"expected <CER>, got <{element.tag}>")
        if element.get("Kind") not in _VALID_KINDS:
            raise DocumentFormatError(
                f"CER has invalid Kind {element.get('Kind')!r}"
            )
        self.element = element

    # -- identity ------------------------------------------------------------

    @property
    def cer_id(self) -> str:
        """The element id."""
        value = self.element.get(ID_ATTR)
        if value is None:
            raise DocumentFormatError("CER has no Id")
        return value

    @property
    def activity_id(self) -> str:
        """Activity this CER belongs to."""
        value = self.element.get("Activity")
        if value is None:
            raise DocumentFormatError(f"CER {self.cer_id!r} has no Activity")
        return value

    @property
    def iteration(self) -> int:
        """Loop iteration index (0 for the first execution).

        The attribute is mandatory: defaulting a missing value would
        let a single corrupted byte in the attribute *name* silently
        relabel a CER (found by the byte-flip fuzzer).
        """
        raw = self.element.get("Iteration")
        if raw is None:
            raise DocumentFormatError(f"CER {self.cer_id!r} has no Iteration")
        try:
            return int(raw)
        except ValueError:
            raise DocumentFormatError(
                f"CER {self.cer_id!r} has non-integer Iteration"
            ) from None

    @property
    def kind(self) -> str:
        """One of ``definition``/``standard``/``intermediate``/``tfc``."""
        return self.element.get("Kind", "")

    @property
    def key(self) -> CerKey:
        """The (activity, iteration, kind) tuple identifying this CER."""
        return (self.activity_id, self.iteration, self.kind)

    @property
    def participant(self) -> str:
        """Identity that produced (and signed) this CER."""
        value = self.element.get("Participant")
        if value is None:
            raise DocumentFormatError(f"CER {self.cer_id!r} has no Participant")
        return value

    # -- content -------------------------------------------------------------

    @property
    def result_element(self) -> ET.Element | None:
        """The ``<ExecutionResult>`` child (None for definition CERs)."""
        return self.element.find(RESULT_TAG)

    def encrypted_fields(self) -> list[EncryptedValue]:
        """All element-wise-encrypted fields of the execution result."""
        result = self.result_element
        if result is None:
            return []
        return [EncryptedValue(node) for node in result.findall(ENC_TAG)]

    def encrypted_field(self, name: str) -> EncryptedValue:
        """Look up one encrypted field by logical name."""
        for value in self.encrypted_fields():
            if value.name == name:
                return value
        raise DocumentFormatError(
            f"CER {self.cer_id!r} has no field {name!r}"
        )

    @property
    def timestamp(self) -> float | None:
        """The TFC timestamp, if present."""
        node = self.element.find(TIMESTAMP_TAG)
        if node is None:
            return None
        try:
            return float(node.get("Time", ""))
        except ValueError:
            raise DocumentFormatError(
                f"CER {self.cer_id!r} has a malformed timestamp"
            ) from None

    @property
    def signature(self) -> XmlSignature:
        """The signature embedded in this CER."""
        node = self.element.find("Signature")
        if node is None:
            raise DocumentFormatError(f"CER {self.cer_id!r} has no Signature")
        return XmlSignature(node)

    @property
    def signature_id(self) -> str:
        """Id of this CER's signature element (cascade reference target)."""
        return self.signature.signature_id

    def signed_ids(self) -> list[str]:
        """Ids of every element this CER's signature covers."""
        return self.signature.referenced_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CER({self.activity_id}^{self.iteration} kind={self.kind} "
                f"by {self.participant})")
