"""The DRA4WfMS document: a self-protecting workflow process instance.

A :class:`Dra4wfmsDocument` wraps the XML tree and provides typed access
to the header, the (possibly encrypted) workflow definition, and the
list of CERs.  The document *is* the process instance — there is no
server-side state anywhere in the basic model.
"""

from __future__ import annotations

import copy
import uuid
import xml.etree.ElementTree as ET

from ..errors import DocumentFormatError, TamperDetected
from ..model.definition import WorkflowDefinition
from ..model.xpdl import definition_from_xml
from ..xmlsec.canonical import CanonicalMemo, canonicalize, parse_xml
from ..xmlsec.xmldsig import ID_ATTR, index_by_id
from ..xmlsec.xmlenc import ENC_TAG, EncryptedValue
from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pure.rsa import RsaPrivateKey
from .cer import CER, CerKey
from .sections import (
    APPDEF_TAG,
    CER_TAG,
    DOC_TAG,
    HEADER_TAG,
    KIND_DEFINITION,
    KIND_INTERMEDIATE,
    KIND_STANDARD,
    KIND_TFC,
    RESULTS_TAG,
    WFDEF_TAG,
)

__all__ = ["Dra4wfmsDocument", "new_process_id"]


def new_process_id() -> str:
    """Fresh globally-unique process id (replay-attack resistance, §2.1)."""
    return uuid.uuid4().hex


class Dra4wfmsDocument:
    """Typed wrapper around a ``<DRA4WfMSDocument>`` XML tree."""

    def __init__(self, root: ET.Element) -> None:
        if root.tag != DOC_TAG:
            raise DocumentFormatError(
                f"expected <{DOC_TAG}>, got <{root.tag}>"
            )
        self.root = root
        # Per-document canonical-bytes memo.  The documented mutation
        # surface is append_cer/merge (which invalidate the stale
        # entries); code that mutates ``self.root`` behind the
        # document's back must call drop_canonical_cache() before the
        # next serialization.
        self._memo = CanonicalMemo()

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte serialization (what gets routed and stored).

        Memoised per subtree: on a document with n CERs only the CERs
        appended since the last serialization are re-escaped; everything
        unchanged is spliced from the canonical memo, making the hot
        serialize-after-append path O(new CER) instead of O(document).
        """
        return canonicalize(self.root, self._memo)

    def drop_canonical_cache(self) -> None:
        """Invalidate every memoised serialization of this document.

        Required after any direct mutation of ``self.root`` that
        bypasses :meth:`append_cer`/:meth:`merge` (tamper-simulation
        harnesses, tests).
        """
        self._memo.clear()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Dra4wfmsDocument":
        """Parse a routed/stored document."""
        return cls(parse_xml(data))

    @property
    def size_bytes(self) -> int:
        """Size of the canonical serialization (the paper's Σ column)."""
        return len(self.to_bytes())

    def clone(self) -> "Dra4wfmsDocument":
        """Deep, independent copy (routing must never share mutable trees).

        The clone starts with a *cold* canonical memo: clones are the
        designated way to obtain a mutable copy (tamper simulations,
        branch documents), and inherited cache entries would go stale
        under direct tree edits.  The clone rebuilds its memo on first
        serialization.
        """
        return Dra4wfmsDocument(copy.deepcopy(self.root))

    def clone_for_append(self) -> "Dra4wfmsDocument":
        """Deep copy that inherits this document's canonical memo.

        For the hot hop path (execute → append CER → serialize), where
        the copy is only ever mutated through :meth:`append_cer`/
        :meth:`merge` — which maintain the memo invalidation contract —
        a cold memo would force an O(document) re-serialization per hop.
        ``copy.deepcopy`` preserves tree structure, so the memo is
        transferred by :meth:`CanonicalMemo.remap` at zero serialization
        cost.  Code that mutates the copy's tree directly must use
        :meth:`clone` (or call :meth:`drop_canonical_cache`).
        """
        copied = Dra4wfmsDocument(copy.deepcopy(self.root))
        copied._memo = self._memo.remap(self.root, copied.root)
        return copied

    # -- header -----------------------------------------------------------------

    @property
    def header(self) -> ET.Element:
        """The ``<Header>`` element."""
        node = self.root.find(HEADER_TAG)
        if node is None:
            raise DocumentFormatError("document has no Header")
        return node

    @property
    def process_id(self) -> str:
        """The unique process id (distinguishes instances, resists replay)."""
        value = self.header.get("ProcessId")
        if not value:
            raise DocumentFormatError("header has no ProcessId")
        return value

    @property
    def process_name(self) -> str:
        """Human-readable workflow name."""
        return self.header.get("ProcessName", "")

    # -- workflow definition ------------------------------------------------------

    @property
    def definition_cer(self) -> CER:
        """The definition CER (the paper's ``CER(A0)``)."""
        node = self.root.find(f"{APPDEF_TAG}/{CER_TAG}")
        if node is None:
            raise DocumentFormatError("document has no definition CER")
        return CER(node)

    @property
    def designer(self) -> str:
        """Identity of the workflow designer."""
        return self.definition_cer.participant

    def _wfdef_section(self) -> ET.Element:
        node = self.definition_cer.element.find(WFDEF_TAG)
        if node is None:
            raise DocumentFormatError(
                "definition CER has no WorkflowDefinitionSection"
            )
        return node

    @property
    def definition_is_encrypted(self) -> bool:
        """True when the workflow definition is element-wise encrypted."""
        section = self._wfdef_section()
        return section.find(ENC_TAG) is not None

    def definition(self, identity: str | None = None,
                   private_key: RsaPrivateKey | None = None,
                   backend: CryptoBackend | None = None) -> WorkflowDefinition:
        """Parse (decrypting if necessary) the workflow definition.

        For an encrypted definition the caller must supply the identity
        and private key of an authorised reader.
        """
        section = self._wfdef_section()
        encrypted = section.find(ENC_TAG)
        if encrypted is None:
            node = section.find("WorkflowDefinition")
            if node is None:
                raise DocumentFormatError(
                    "WorkflowDefinitionSection holds neither a plaintext "
                    "nor an encrypted definition"
                )
            return definition_from_xml(node)
        if identity is None or private_key is None:
            raise DocumentFormatError(
                "the workflow definition is encrypted; pass the identity "
                "and private key of an authorised reader"
            )
        backend = backend or default_backend()
        plaintext = EncryptedValue(encrypted).decrypt(
            identity, private_key, backend
        )
        return definition_from_xml(parse_xml(plaintext))

    # -- CERs -------------------------------------------------------------------

    @property
    def results_section(self) -> ET.Element:
        """The ``<ActivityExecutionResults>`` element."""
        node = self.root.find(RESULTS_TAG)
        if node is None:
            raise DocumentFormatError(
                "document has no ActivityExecutionResults section"
            )
        return node

    def cers(self, include_definition: bool = True) -> list[CER]:
        """All CERs in document order (the paper's ``Set_of_CER``)."""
        out: list[CER] = []
        if include_definition:
            out.append(self.definition_cer)
        out.extend(CER(node) for node in self.results_section.findall(CER_TAG))
        return out

    def cer_index(self) -> dict[CerKey, CER]:
        """Index CERs by (activity, iteration, kind); rejects duplicates."""
        index: dict[CerKey, CER] = {}
        for cer in self.cers():
            if cer.key in index:
                raise DocumentFormatError(
                    f"duplicate CER for {cer.key}"
                )
            index[cer.key] = cer
        return index

    def find_cer(self, activity_id: str, iteration: int,
                 kind: str = KIND_STANDARD) -> CER | None:
        """Look up one CER, or ``None``."""
        return self.cer_index().get((activity_id, iteration, kind))

    def execution_count(self, activity_id: str) -> int:
        """How many times *activity_id* has completed (max iteration + 1).

        Counts standard and TFC CERs — intermediate CERs mean the TFC
        has not finalised the step yet.
        """
        iterations = [
            cer.iteration for cer in self.cers(include_definition=False)
            if cer.activity_id == activity_id
            and cer.kind in (KIND_STANDARD, KIND_TFC)
        ]
        return max(iterations, default=-1) + 1

    def cascade_signature_of(self, activity_id: str,
                             iteration: int) -> CER | None:
        """The CER whose signature successors must countersign.

        In the basic model that is the standard CER; in the advanced
        model the TFC CER supersedes the intermediate one.
        """
        index = self.cer_index()
        tfc = index.get((activity_id, iteration, KIND_TFC))
        if tfc is not None:
            return tfc
        return index.get((activity_id, iteration, KIND_STANDARD))

    def pending_intermediate(self) -> list[CER]:
        """Intermediate CERs not yet finalised by a TFC server."""
        index = self.cer_index()
        return [
            cer for cer in self.cers(include_definition=False)
            if cer.kind == KIND_INTERMEDIATE
            and (cer.activity_id, cer.iteration, KIND_TFC) not in index
        ]

    def append_cer(self, cer: CER) -> None:
        """Append a new CER, rejecting id collisions."""
        existing = index_by_id(self.root)
        for elem in cer.element.iter():
            eid = elem.get(ID_ATTR)
            if eid is not None and eid in existing:
                raise DocumentFormatError(
                    f"cannot append CER: id {eid!r} already present"
                )
        results = self.results_section
        # Appending stales the serialization of every ancestor of the
        # insertion point — the results section and the document root —
        # but of no sibling CER: their cached chunks stay valid.
        self._memo.discard(self.root)
        self._memo.discard(results)
        results.append(cer.element)

    # -- AND-join merge --------------------------------------------------------------

    def merge(self, other: "Dra4wfmsDocument") -> "Dra4wfmsDocument":
        """Union of two documents of the same process instance (AND-join).

        Paper §2.1: at an AND-join the receiving AEA holds one routed
        document per branch; the sets of CERs are unioned.  CERs present
        in both copies must be byte-identical — a divergence means one
        branch was altered.
        """
        if self.process_id != other.process_id:
            raise DocumentFormatError(
                f"cannot merge documents of different process instances "
                f"({self.process_id} vs {other.process_id})"
            )
        merged = self.clone_for_append()
        own = {cer.key: cer for cer in merged.cers()}
        results = merged.results_section
        for cer in other.cers(include_definition=False):
            mine = own.get(cer.key)
            if mine is None:
                merged._memo.discard(merged.root)
                merged._memo.discard(results)
                results.append(copy.deepcopy(cer.element))
            # Shared CERs must be byte-identical; both serializations
            # come from (and populate) the respective document's memo,
            # so a k-way join compares cached chunks instead of
            # re-escaping every shared CER pairwise.
            elif (canonicalize(mine.element, merged._memo)
                    != canonicalize(cer.element, other._memo)):
                raise TamperDetected(
                    f"CER {cer.cer_id!r} differs between branch documents"
                )
        # Definition sections must agree too.
        own_def = canonicalize(self.definition_cer.element, self._memo)
        other_def = canonicalize(other.definition_cer.element, other._memo)
        if own_def != other_def:
            raise TamperDetected(
                "workflow definitions differ between branch documents"
            )
        return merged
