"""Content-addressed chunking of DRA4WfMS documents (delta routing).

A DRA4WfMS document is append-only: every hop adds one CER and changes
nothing else.  Routed naively, an n-activity instance therefore moves
O(n²) bytes — hop k re-transfers the k-1 CERs the receiver (or the
portal) already holds.  This module splits the canonical serialization
into **content-addressed chunks** at CER boundaries:

* each CER subtree becomes one chunk (its exact canonical bytes — the
  same bytes its signature digests cover);
* the glue between CERs (document/header/section markup) becomes
  interstitial chunks;
* a :class:`Manifest` records the ordered chunk digests plus the digest
  of the whole document.

Concatenating the chunks in manifest order reproduces the canonical
serialization **byte for byte** (:func:`canonicalize_segments`
guarantees segment concatenation equals ``canonicalize(root)``), so a
reassembled document is indistinguishable from a full transfer — the
verifier runs over identical bytes, which is the entire security
argument (see ``docs/ROUTING.md``).

Chunks are keyed by their SHA-256; two hops (or two fleet instances
sharing a workflow definition) that produce the same bytes share one
stored chunk.  A peer that already holds version k of a document needs
only the chunks it has never seen — one CER per hop — plus the new
manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..errors import DeltaError, DeltaMismatch
from ..xmlsec.canonical import canonicalize_boundaries
from .document import Dra4wfmsDocument
from .sections import CER_TAG

__all__ = [
    "Chunk",
    "ChunkCache",
    "DeltaDocument",
    "Manifest",
    "assemble",
    "chunk_bytes",
    "chunk_digest",
    "chunk_document",
    "decode_delta",
    "encode_delta",
    "seed_chunks",
]

#: Format tag embedded in every serialized manifest (versioned so a
#: future chunking change cannot be confused with this one).
MANIFEST_FORMAT = "dra4wfms-manifest/1"


def chunk_digest(data: bytes) -> str:
    """Content address of a chunk: lowercase SHA-256 hex."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Chunk:
    """One manifest entry: a content-addressed slice of the document."""

    digest: str
    length: int
    is_cer: bool


@dataclass(frozen=True)
class Manifest:
    """Ordered chunk list reconstituting one document version.

    ``doc_digest`` is the SHA-256 of the full canonical serialization;
    reassembly always re-checks it, so a wrong, missing, or reordered
    chunk can never silently produce an accepted document.
    """

    process_id: str
    doc_digest: str
    doc_bytes: int
    chunks: tuple[Chunk, ...]

    @property
    def chunk_digests(self) -> list[str]:
        return [c.digest for c in self.chunks]

    @property
    def cer_digests(self) -> list[str]:
        """Digests of the CER chunks only, in document order."""
        return [c.digest for c in self.chunks if c.is_cer]

    def to_bytes(self) -> bytes:
        """Deterministic JSON serialization (sorted keys, no spaces)."""
        payload = {
            "format": MANIFEST_FORMAT,
            "process_id": self.process_id,
            "doc_digest": self.doc_digest,
            "doc_bytes": self.doc_bytes,
            "chunks": [[c.digest, c.length, c.is_cer] for c in self.chunks],
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise DeltaError(f"malformed manifest: {exc}") from exc
        if not isinstance(payload, dict):
            raise DeltaError("malformed manifest: not a JSON object")
        if payload.get("format") != MANIFEST_FORMAT:
            raise DeltaError(
                f"unsupported manifest format {payload.get('format')!r}"
            )
        try:
            chunks = tuple(
                Chunk(digest=str(d), length=int(n), is_cer=bool(c))
                for d, n, c in payload["chunks"]
            )
            return cls(
                process_id=str(payload["process_id"]),
                doc_digest=str(payload["doc_digest"]),
                doc_bytes=int(payload["doc_bytes"]),
                chunks=chunks,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError(f"malformed manifest: {exc}") from exc


def chunk_bytes(document: Dra4wfmsDocument) -> list[tuple[Chunk, bytes]]:
    """Split *document* into ordered (chunk, bytes) pairs.

    Uses the document's canonical memo, so on the hot append-then-ship
    path only the newly appended CER is actually re-serialized — and
    only its digest is actually re-hashed: CER chunk digests are cached
    on the memo under the same invalidation contract as the bytes
    themselves (a mutation discards both).
    """
    memo = document._memo
    pairs: list[tuple[Chunk, bytes]] = []
    for is_cer, data, node in canonicalize_boundaries(document.root,
                                                      CER_TAG, memo):
        digest = None
        if node is not None and memo is not None:
            digest = memo.chunk_digest_of(node)
        if digest is None:
            digest = chunk_digest(data)
            if node is not None and memo is not None:
                memo.store_chunk_digest(node, digest)
        pairs.append((Chunk(digest=digest, length=len(data),
                            is_cer=is_cer), data))
    return pairs


def chunk_document(
    document: Dra4wfmsDocument,
) -> tuple[Manifest, dict[str, bytes]]:
    """Manifest plus digest-keyed chunk payloads for *document*."""
    pairs = chunk_bytes(document)
    digest = hashlib.sha256()
    total = 0
    for chunk, data in pairs:
        digest.update(data)
        total += chunk.length
    manifest = Manifest(
        process_id=document.process_id,
        doc_digest=digest.hexdigest(),
        doc_bytes=total,
        chunks=tuple(chunk for chunk, _ in pairs),
    )
    return manifest, {chunk.digest: data for chunk, data in pairs}


def assemble(manifest: Manifest, lookup) -> bytes:
    """Reassemble the full document bytes described by *manifest*.

    *lookup* maps a chunk digest to its bytes (raising ``KeyError`` for
    unknown digests — callers translate that into their own fallback).
    The result is verified against both the per-chunk digests and the
    whole-document digest before being returned; any corruption raises
    :class:`~repro.errors.DeltaMismatch`.
    """
    parts: list[bytes] = []
    for chunk in manifest.chunks:
        data = lookup[chunk.digest]
        if len(data) != chunk.length or chunk_digest(data) != chunk.digest:
            raise DeltaMismatch(
                f"chunk {chunk.digest[:12]}… does not match its content "
                f"address"
            )
        parts.append(data)
    blob = b"".join(parts)
    if (len(blob) != manifest.doc_bytes
            or hashlib.sha256(blob).hexdigest() != manifest.doc_digest):
        raise DeltaMismatch(
            f"reassembled document does not match manifest digest "
            f"{manifest.doc_digest[:12]}… (process {manifest.process_id})"
        )
    return blob


class ChunkCache:
    """Digest-keyed chunk bytes a routing peer has already seen.

    Chunks are immutable by construction (the digest *is* the key), so
    the cache needs no invalidation — only insert/lookup, plus counters
    for the benchmark reports.  With *max_bytes* set the cache is
    **LRU-bounded**: once the stored payloads exceed the byte budget the
    least-recently-used chunks are evicted (a long-lived routing peer
    touching thousands of instances must not accumulate the fleet's
    whole chunk history).  Eviction is safe by construction — a digest
    the peer no longer holds is re-requested or triggers the full-
    transfer fallback, never a wrong document.

    Both membership probes (``in``) and lookups count toward the
    hit/miss counters: callers commonly probe before reading, and a
    cache report that ignored probes would undercount traffic.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise DeltaError("chunk cache byte budget must be >= 0")
        #: Insertion/access ordered: first key = least recently used.
        self._chunks: dict[str, bytes] = {}
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        #: Incremental byte counter — ``total_bytes`` must stay O(1),
        #: it is probed on every bounded insert.
        self._total_bytes = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def _touch(self, digest: str) -> None:
        """Mark *digest* most recently used."""
        self._chunks[digest] = self._chunks.pop(digest)

    def __contains__(self, digest: str) -> bool:
        if digest in self._chunks:
            self.hits += 1
            self._touch(digest)
            return True
        self.misses += 1
        return False

    def __getitem__(self, digest: str) -> bytes:
        data = self._chunks.get(digest)
        if data is None:
            self.misses += 1
            raise KeyError(digest)
        self.hits += 1
        self._touch(digest)
        return data

    def _evict_to_budget(self) -> None:
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes and len(self._chunks) > 1:
            # Oldest entry first; the just-inserted chunk is never
            # evicted ahead of colder ones (it is the newest), and a
            # single chunk larger than the whole budget stays resident
            # — evicting the bytes currently in use would only force an
            # immediate refetch.
            digest, data = next(iter(self._chunks.items()))
            del self._chunks[digest]
            self._total_bytes -= len(data)
            self.evictions += 1
            self.evicted_bytes += len(data)

    def add(self, digest: str, data: bytes) -> None:
        if chunk_digest(data) != digest:
            raise DeltaMismatch(
                f"refusing to cache chunk under wrong digest "
                f"{digest[:12]}…"
            )
        if digest in self._chunks:
            self._touch(digest)
            return
        self._chunks[digest] = data
        self._total_bytes += len(data)
        self._evict_to_budget()

    def add_all(self, chunks: dict[str, bytes]) -> None:
        for digest, data in chunks.items():
            self.add(digest, data)

    @property
    def total_bytes(self) -> int:
        """Stored payload bytes (maintained incrementally, O(1))."""
        return self._total_bytes

    def audit_total_bytes(self) -> int:
        """Full O(n) recount — tests assert it equals :attr:`total_bytes`."""
        return sum(len(data) for data in self._chunks.values())


@dataclass(frozen=True)
class DeltaDocument:
    """What actually crosses the wire in delta mode.

    The manifest describes the complete document; ``chunks`` carries
    only the payloads the receiver is not known to hold.  ``wire_bytes``
    is the transfer size the network layer charges for.
    """

    manifest: Manifest
    chunks: dict[str, bytes] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        return (len(self.manifest.to_bytes())
                + sum(len(data) for data in self.chunks.values()))

    @property
    def full_bytes(self) -> int:
        """Size of the document a full transfer would have moved."""
        return self.manifest.doc_bytes


def encode_delta(document: Dra4wfmsDocument,
                 known: "ChunkCache | set[str] | None" = None,
                 ) -> DeltaDocument:
    """Encode *document* for a receiver that already holds *known* chunks."""
    manifest, payloads = chunk_document(document)
    if known is None:
        missing = payloads
    else:
        missing = {digest: data for digest, data in payloads.items()
                   if digest not in known}
    return DeltaDocument(manifest=manifest, chunks=missing)


def _boundary_nodes(root, boundary_tag):
    """Maximal *boundary_tag* subtrees of *root*, in document order."""
    nodes = []

    def walk(node):
        if not isinstance(node.tag, str):
            return
        if node.tag == boundary_tag:
            nodes.append(node)
            return
        for child in node:
            walk(child)

    walk(root)
    return nodes


def seed_chunks(document: Dra4wfmsDocument, manifest: Manifest,
                chunks) -> None:
    """Warm *document*'s canonical memo from already-verified chunks.

    *document* must have been parsed from the byte concatenation the
    *manifest* describes (i.e. the output of :func:`assemble`, which
    checked every chunk digest and the whole-document digest).  Each CER
    chunk is then **exactly** the canonical serialization of the
    corresponding parsed CER subtree — round-trip stability
    (``canonicalize(parse(canonicalize(e))) == canonicalize(e)``)
    guarantees it — so the memo can be pre-loaded with the chunk string,
    its encoded bytes, and its content digest at zero serialization
    cost.  Without this, every ``from_bytes`` on the portal/store path
    starts cold and re-serializes the whole history on its next
    chunking or merge.

    This is a producer-side optimisation only: verification never reads
    the memo.  *chunks* is any digest→bytes mapping (``dict`` or
    :class:`ChunkCache`); missing digests just leave those entries cold.
    Structural mismatch (CER count differs from the manifest) silently
    seeds nothing.
    """
    memo = document._memo
    nodes = _boundary_nodes(document.root, CER_TAG)
    cer_chunks = [c for c in manifest.chunks if c.is_cer]
    if len(nodes) != len(cer_chunks):
        return
    for node, chunk in zip(nodes, cer_chunks):
        try:
            data = chunks[chunk.digest]
        except KeyError:
            continue
        if len(data) != chunk.length:
            continue
        memo.store(node, data.decode("utf-8"))
        memo.store_chunk(node, data, chunk.digest)


class _ChunkOverlay:
    """Lookup view: freshly received chunks first, then the cache.

    Assembly must never depend on the cache *retaining* bytes the
    receiver literally holds in hand — an LRU-bounded cache may evict
    one received chunk while inserting the next.
    """

    def __init__(self, fresh: dict[str, bytes], cache: ChunkCache) -> None:
        self._fresh = fresh
        self._cache = cache

    def __getitem__(self, digest: str) -> bytes:
        data = self._fresh.get(digest)
        if data is not None:
            return data
        return self._cache[digest]


def decode_delta(delta: DeltaDocument, cache: ChunkCache) -> bytes:
    """Reassemble a received :class:`DeltaDocument` against *cache*.

    Newly received chunks are verified and added to *cache* first, so
    repeated decodes of a growing document stay O(new CER) in received
    payload.  Raises ``KeyError`` when the sender assumed a chunk this
    cache does not hold, and :class:`~repro.errors.DeltaMismatch` when
    any byte fails its content address.
    """
    cache.add_all(delta.chunks)
    return assemble(delta.manifest, _ChunkOverlay(delta.chunks, cache))
