"""Whole-document verification.

This is the check every AEA runs *before* trusting a received
DRA4WfMS document (paper §2.1 step 1), and the check any third party —
an auditor resolving a repudiation dispute — runs offline:

1. **Well-formedness**: unique element ids, required sections present.
2. **Designer signature**: the definition CER's signature must cover
   the definition section *and* the header (binding the unique process
   id), and verify under the designer's PKI-resolved key.
3. **Every embedded signature** verifies cryptographically against the
   current document content (any altered element breaks a digest).
4. **Cascade structure**: each CER signs its own execution result (and
   timestamp, for TFC CERs), and its scope reaches the definition CER —
   every result is transitively bound to this process instance.
5. **Authorization** (when the definition is readable): each CER's
   signer is the participant the definition designates, and TFC CERs
   are signed by the TFC the policy expects.
6. **Timestamps** are monotone along the cascade.

Any failure raises :class:`~repro.errors.TamperDetected` (for
cryptographic mismatches) or :class:`~repro.errors.VerificationError`
(for structural violations); success returns a
:class:`VerificationReport`.
"""

from __future__ import annotations

from contextlib import suppress
from dataclasses import dataclass, field

from ..crypto.backend import (
    CryptoBackend,
    VerifyJob,
    default_backend,
    dispatch_verify_batch,
)
from ..crypto.pki import KeyDirectory
from ..crypto.pure.rsa import RsaPrivateKey, RsaPublicKey
from ..errors import (
    CertificateError,
    ReproError,
    TamperDetected,
    VerificationError,
    XmlSignatureError,
)
from ..model.definition import WorkflowDefinition
from ..xmlsec.xmldsig import ID_ATTR, XmlSignature, index_by_id
from .cer import CER, KIND_AMENDMENT
from .document import Dra4wfmsDocument
from .nonrepudiation import all_scopes, signature_owner_map
from .vcache import VerificationCache
from .sections import (
    DESIGNER_ACTIVITY,
    HEADER_ID,
    KIND_DEFINITION,
    KIND_INTERMEDIATE,
    KIND_STANDARD,
    KIND_TFC,
    WFDEF_ID,
    cer_id as make_cer_id,
    signature_id as make_signature_id,
)

__all__ = ["VerificationReport", "verify_document"]


@dataclass
class VerificationReport:
    """Outcome of a successful verification.

    The cache counters carry ``compare=False`` deliberately: a warm
    (incremental) verification must produce a report *equal* to the
    cold one — same signatures checked, same CERs, same warnings — and
    only the accounting of how the signatures were checked may differ.
    """

    process_id: str
    signatures_verified: int
    cers_checked: int
    definition_checked: bool
    warnings: list[str] = field(default_factory=list)
    #: Signature checks answered by the shared cache (0 on cold verifies).
    cache_hits: int = field(default=0, compare=False)
    #: Signature checks that needed fresh RSA work despite a cache.
    cache_misses: int = field(default=0, compare=False)

    def __bool__(self) -> bool:
        return True


def _resolve_key(directory: KeyDirectory, identity: str):
    try:
        return directory.public_key_of(identity)
    except CertificateError as exc:
        raise VerificationError(
            f"cannot resolve public key of {identity!r}: {exc}"
        ) from exc


class _SignatureChecker:
    """Runs the cryptographic signature checks for one verification.

    Wraps the three execution strategies behind one ``verify`` call:
    plain sequential checking, cache-backed incremental checking (skip
    the RSA work for byte-identical, previously verified signatures),
    and a thread-pool pre-pass that fans independent checks across
    workers for cold verifies.  Structural checks are untouched — only
    the expensive cryptographic step is cached or parallelised.
    """

    def __init__(self, root, backend: CryptoBackend,
                 id_index, cache: VerificationCache | None,
                 report: VerificationReport) -> None:
        self.root = root
        self.backend = backend
        self.id_index = id_index
        self.cache = cache
        self.report = report
        #: signature id → ("hit" | "fresh", exception or None)
        self._memo: dict[str, tuple[str, XmlSignatureError | None]] = {}
        #: element identity → canonical digest, scoped to this pass
        #: (predecessor signatures are referenced by every successor).
        self._digests: dict[int, bytes] = {}

    def prefetch(self, pairs: list[tuple[XmlSignature, RsaPublicKey]],
                 workers: int | None) -> None:
        """Pre-verify *pairs* in one batch, memoising per-signature outcomes.

        The digest phase (reference comparisons, structural checks) runs
        sequentially — it is cheap and shares the digest memo without
        contention — then every surviving RSA check goes through a
        single :func:`dispatch_verify_batch` call, which the backend may
        fan across *workers* threads.

        Failures are *not* raised here: the sequential pass re-raises
        them at the same point in document order a serial verification
        would, so error reporting is identical with and without the
        batch.
        """
        rsa_jobs: list[VerifyJob] = []
        pending: list[tuple[str, XmlSignature, bytes | None]] = []
        for signature, public_key in pairs:
            sid = signature.element.get(ID_ATTR)
            if sid is None or sid in self._memo:
                continue
            key = None
            if self.cache is not None:
                key = self.cache.key_for(signature, public_key,
                                         self.id_index, self._digests)
                if key is not None and self.cache.seen(key):
                    self._memo[sid] = ("hit", None)
                    continue
            try:
                message, sig_value, mode = signature.prepare_verify(
                    self.root, self.backend, self.id_index,
                    digest_memo=self._digests,
                )
            except XmlSignatureError as exc:
                self._memo[sid] = ("fresh", exc)
                continue
            rsa_jobs.append((public_key, message, sig_value, mode))
            pending.append((sid, signature, key))
        if not rsa_jobs:
            return
        results = dispatch_verify_batch(self.backend, rsa_jobs,
                                        workers=workers)
        for (sid, signature, key), error in zip(pending, results):
            if error is None:
                self._memo[sid] = ("fresh", None)
                if key is not None:
                    self.cache.record(key)
            else:
                self._memo[sid] = ("fresh",
                                   signature.wrap_rsa_failure(error))

    def verify(self, signature: XmlSignature,
               public_key: RsaPublicKey) -> None:
        """Check one signature, consulting the memo and cache first.

        Raises :class:`~repro.errors.XmlSignatureError` exactly as
        :meth:`XmlSignature.verify` would.
        """
        sid = signature.element.get(ID_ATTR)
        outcome = self._memo.pop(sid, None) if sid is not None else None
        if outcome is None:
            outcome = self._check(signature, public_key)
        kind, error = outcome
        if self.cache is not None:
            if kind == "hit":
                self.report.cache_hits += 1
            else:
                self.report.cache_misses += 1
        if error is not None:
            raise error

    def _check(self, signature: XmlSignature, public_key: RsaPublicKey,
               ) -> tuple[str, XmlSignatureError | None]:
        key = None
        if self.cache is not None:
            key = self.cache.key_for(signature, public_key,
                                     self.id_index, self._digests)
            if key is not None and self.cache.seen(key):
                return ("hit", None)
        try:
            signature.verify(public_key, self.root, self.backend,
                             self.id_index, digest_memo=self._digests)
        except XmlSignatureError as exc:
            return ("fresh", exc)
        if key is not None:
            self.cache.record(key)
        return ("fresh", None)


def verify_document(
    document: Dra4wfmsDocument,
    directory: KeyDirectory,
    backend: CryptoBackend | None = None,
    definition: WorkflowDefinition | None = None,
    definition_reader: tuple[str, RsaPrivateKey] | None = None,
    tfc_identities: set[str] | None = None,
    cache: VerificationCache | None = None,
    workers: int | None = None,
    batch: bool | None = None,
) -> VerificationReport:
    """Verify *document* end to end.

    Parameters
    ----------
    directory:
        PKI directory used to resolve every signer's public key.
    definition:
        Pre-parsed definition (skips re-parsing).  When the embedded
        definition is encrypted and neither *definition* nor
        *definition_reader* is supplied, authorization checks are
        skipped and a warning recorded — signatures still verify, since
        they cover ciphertext.
    definition_reader:
        ``(identity, private_key)`` of an authorised definition reader.
    tfc_identities:
        Identities accepted as TFC servers for TFC CERs.
    cache:
        Opt-in :class:`~repro.document.vcache.VerificationCache`: skip
        the RSA check for signatures whose exact bytes (and the exact
        bytes of everything they reference) verified before.  Every
        structural check still runs; any byte-level change misses the
        cache and takes the full cryptographic path.  Omit for a cold
        (trust-nothing) verification — the default.
    workers:
        When > 1, fan the independent RSA signature checks across a
        thread pool of this size (useful for cold auditor/offline
        verifies of long cascades).  Error behaviour is unchanged: the
        first failure in document order is raised.
    batch:
        Force the batched pre-verification path even with one worker:
        all fresh RSA checks go through one
        :meth:`~repro.crypto.backend.CryptoBackend.verify_batch`
        dispatch.  Verdicts, failing-CER attribution, and cache
        accounting are identical to the sequential path (the
        differential suite in ``tests/document/test_batch_differential``
        pins this).  Defaults to following *workers*.
    """
    backend = backend or default_backend()
    report = VerificationReport(
        process_id="", signatures_verified=0, cers_checked=0,
        definition_checked=False,
    )

    # (1) structure + unique ids
    try:
        id_index = index_by_id(document.root)
    except XmlSignatureError as exc:
        raise TamperDetected(str(exc)) from exc
    checker = _SignatureChecker(document.root, backend, id_index, cache,
                                report)
    if (workers is not None and workers > 1) or batch:
        # Pre-verify every resolvable signature in one batch; outcomes
        # surface below at the same point serial verification would
        # reach them.  Unresolvable signers/signatures are left for the
        # sequential pass so their errors keep their document position.
        pairs: list[tuple[XmlSignature, RsaPublicKey]] = []
        with suppress(ReproError):
            for cer in document.cers():
                with suppress(ReproError):
                    signature = cer.signature
                    pairs.append((signature,
                                  directory.public_key_of(signature.signer)))
        checker.prefetch(pairs, workers)
    report.process_id = document.process_id
    if HEADER_ID not in id_index or WFDEF_ID not in id_index:
        raise VerificationError("header or definition section missing")
    version = document.root.get("Version")
    if version != "1.0":
        raise VerificationError(
            f"unsupported document version {version!r}"
        )

    # (2) designer signature binds definition + header
    def_cer = document.definition_cer
    designer_sig = def_cer.signature
    if designer_sig.signer != def_cer.participant:
        raise VerificationError(
            "definition CER participant does not match its signature's KeyName"
        )
    referenced = set(designer_sig.referenced_ids)
    if not {WFDEF_ID, HEADER_ID} <= referenced:
        raise VerificationError(
            "designer signature must cover the definition section and the "
            "header (process id binding)"
        )
    try:
        checker.verify(designer_sig,
                       _resolve_key(directory, designer_sig.signer))
    except XmlSignatureError as exc:
        raise TamperDetected(f"designer signature invalid: {exc}") from exc
    report.signatures_verified += 1

    # Obtain the definition if we can.
    if definition is None:
        if not document.definition_is_encrypted:
            definition = document.definition()
        elif definition_reader is not None:
            identity, private_key = definition_reader
            definition = document.definition(identity, private_key, backend)
        else:
            report.warnings.append(
                "definition encrypted and no reader credentials supplied; "
                "authorization checks skipped"
            )

    owners = signature_owner_map(document)
    all_cers = document.cers()
    def_scope_target = def_cer.cer_id
    # One-pass Algorithm 1 over the whole document (used by the cascade
    # binding check and timestamp monotonicity below).
    scopes = all_scopes(document)

    # (3)+(4) per-CER checks
    _CER_ATTRIBUTES = {"Id", "Kind", "Activity", "Iteration",
                       "Participant"}
    for cer in all_cers:
        report.cers_checked += 1
        # Exactly the known attributes — a stray attribute is either a
        # corrupted attribute name (its real counterpart then falls
        # back to defaults) or smuggled data outside every signature.
        actual_attributes = set(cer.element.keys())
        if actual_attributes != _CER_ATTRIBUTES:
            raise VerificationError(
                f"CER {cer.element.get('Id')!r} has unexpected "
                f"attributes {sorted(actual_attributes ^ _CER_ATTRIBUTES)}"
            )
        if cer.kind == KIND_DEFINITION:
            # Unsigned attributes of the definition CER are fixed by
            # the format (everything signed lives in its children).
            if (cer.cer_id != "cer-def"
                    or cer.activity_id != DESIGNER_ACTIVITY
                    or cer.iteration != 0):
                raise VerificationError(
                    "definition CER attributes violate the format"
                )
            continue

        # CER element attributes are not themselves signed; they must
        # be *derivable* from signed content.  The id scheme enforces
        # that: Id and the signature id are both functions of
        # (kind, activity, iteration), and the signature id is covered
        # by every countersigning successor.
        if cer.kind == KIND_AMENDMENT:
            expected_cer_id = f"cer-amd-{cer.iteration}"
            if cer.activity_id != "__amendment__":
                raise VerificationError(
                    f"amendment CER {cer.cer_id!r} has Activity "
                    f"{cer.activity_id!r}"
                )
        else:
            expected_cer_id = make_cer_id(cer.kind, cer.activity_id,
                                          cer.iteration)
        if cer.cer_id != expected_cer_id:
            raise VerificationError(
                f"CER id {cer.cer_id!r} violates the id scheme "
                f"(expected {expected_cer_id!r})"
            )

        signature = cer.signature
        if signature.signer != cer.participant:
            raise VerificationError(
                f"CER {cer.cer_id!r}: Participant attribute "
                f"({cer.participant!r}) does not match signature KeyName "
                f"({signature.signer!r})"
            )
        if cer.kind == KIND_AMENDMENT:
            expected_sig_id = f"sig-amd-{cer.iteration}"
        else:
            expected_sig_id = make_signature_id(cer.kind, cer.activity_id,
                                                cer.iteration)
        if signature.signature_id != expected_sig_id:
            raise VerificationError(
                f"CER {cer.cer_id!r}: signature id "
                f"{signature.signature_id!r} violates the id scheme "
                f"(expected {expected_sig_id!r})"
            )

        referenced = signature.referenced_ids
        if cer.kind == KIND_AMENDMENT:
            spec = cer.element.find("AmendmentSpec")
            if spec is None:
                raise VerificationError(
                    f"amendment CER {cer.cer_id!r} has no AmendmentSpec"
                )
            if spec.get("Id") not in referenced:
                raise VerificationError(
                    f"amendment CER {cer.cer_id!r}: signature does not "
                    f"cover its spec"
                )
        else:
            result = cer.result_element
            if result is None:
                raise VerificationError(f"CER {cer.cer_id!r} has no result")
            result_ref = result.get("Id")
            if result_ref not in referenced:
                raise VerificationError(
                    f"CER {cer.cer_id!r}: signature does not cover its own "
                    f"execution result"
                )
        if cer.kind == KIND_TFC:
            ts_node = cer.element.find("Timestamp")
            if ts_node is None:
                raise VerificationError(
                    f"TFC CER {cer.cer_id!r} has no timestamp"
                )
            if ts_node.get("Id") not in referenced:
                raise VerificationError(
                    f"TFC CER {cer.cer_id!r}: signature does not cover its "
                    f"timestamp"
                )

        # Cascade: at least one *other* CER's signature must be covered.
        cascade_refs = [
            rid for rid in referenced
            if rid in owners and owners[rid].cer_id != cer.cer_id
        ]
        if not cascade_refs:
            raise VerificationError(
                f"CER {cer.cer_id!r} does not countersign any predecessor "
                f"(cascade broken)"
            )
        if cer.kind == KIND_TFC:
            want = make_signature_id(KIND_INTERMEDIATE, cer.activity_id,
                                     cer.iteration)
            if want not in referenced:
                raise VerificationError(
                    f"TFC CER {cer.cer_id!r} does not countersign its "
                    f"intermediate CER"
                )

        try:
            checker.verify(signature,
                           _resolve_key(directory, signature.signer))
        except XmlSignatureError as exc:
            raise TamperDetected(
                f"signature of CER {cer.cer_id!r} invalid: {exc}"
            ) from exc
        report.signatures_verified += 1

        # The cascade must transitively reach the definition CER.
        scope = scopes.get(cer.cer_id, {cer.cer_id})
        if def_scope_target not in scope:
            raise VerificationError(
                f"CER {cer.cer_id!r} is not bound to this process instance "
                f"(its scope does not reach the definition CER)"
            )

    # (5) authorization against the definition — replayed in document
    # order so run-time amendments (delegation, ad-hoc activities,
    # reader grants) are honoured *from their position onwards* and
    # checked against the definition as amended so far.
    if definition is not None:
        from .amendments import (
            amendment_from_xml,
            apply_amendment,
            check_authorized,
        )

        report.definition_checked = True
        current = definition
        for cer in all_cers:
            if cer.kind == KIND_AMENDMENT:
                spec = cer.element.find("AmendmentSpec")
                try:
                    amendment = amendment_from_xml(spec)
                    check_authorized(amendment, cer.participant, current)
                    current = apply_amendment(current, amendment)
                except VerificationError:
                    raise
                except Exception as exc:
                    raise VerificationError(
                        f"amendment CER {cer.cer_id!r} cannot be applied: "
                        f"{exc}"
                    ) from exc
            elif cer.kind in (KIND_STANDARD, KIND_INTERMEDIATE):
                try:
                    designated = current.activity(cer.activity_id).participant
                except Exception as exc:
                    raise VerificationError(
                        f"CER {cer.cer_id!r} references activity "
                        f"{cer.activity_id!r} not in the definition"
                    ) from exc
                if cer.participant != designated:
                    raise VerificationError(
                        f"CER {cer.cer_id!r} signed by {cer.participant!r} "
                        f"but the definition designates {designated!r}"
                    )
            elif cer.kind == KIND_TFC and tfc_identities is not None:
                if cer.participant not in tfc_identities:
                    raise VerificationError(
                        f"TFC CER {cer.cer_id!r} signed by unexpected "
                        f"identity {cer.participant!r}"
                    )

    # (6) timestamp monotonicity along the cascade
    ts_by_id: dict[str, float] = {}
    for cer in all_cers:
        ts = cer.timestamp
        if ts is not None:
            ts_by_id[cer.cer_id] = ts
    if ts_by_id:
        for cer in all_cers:
            own_ts = ts_by_id.get(cer.cer_id)
            if own_ts is None:
                continue
            scope = scopes.get(cer.cer_id, {cer.cer_id})
            for other_id in scope:
                other_ts = ts_by_id.get(other_id)
                if other_ts is not None and other_id != cer.cer_id:
                    if other_ts > own_ts + 1e-9:
                        report.warnings.append(
                            f"timestamp of {cer.cer_id} ({own_ts}) precedes "
                            f"a CER it covers ({other_id}: {other_ts})"
                        )
    return report
