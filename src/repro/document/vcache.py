"""Content-addressed signature-verification cache (incremental verify).

Every hop in DRA4WfMS re-runs whole-document verification: the AEA, the
TFC notary, the portal, and the auditor each re-check every signature in
the cascade from the definition CER forward — O(n) RSA verifies per
hop, O(n²) per process instance.  But a hop only ever *appends* CERs;
the prefix a receiver already verified arrives byte-identical.  The
cache remembers exactly which bytes each successful RSA check covered,
so an unchanged prefix costs hashing instead of modular exponentiation
and only the suffix appended since the last hop needs cryptographic
work.

A cache entry's key is a SHA-256 over

* the signer's public key ``(n, e)``,
* the canonical bytes of the ``<Signature>`` element itself (SignedInfo
  with all reference digests, SignatureValue, KeyInfo), and
* the canonical digest of every element the signature references, in
  reference order.

Any byte-level change to a cached CER — its result, its signature, a
covered predecessor signature, the header — changes the key, so a
tampered document can never hit the cache: it misses and falls through
to the full cryptographic check, which rejects it.  The tamper matrix
in ``tests/document/test_tamper_matrix.py`` proves this for every
section × mutation combination, warm and cold.

Keys are computed with :mod:`hashlib` rather than the pluggable crypto
backend, so entries are backend-independent: a document verified under
:class:`~repro.crypto.backend.PureBackend` warms the cache for
:class:`~repro.crypto.fast.FastBackend` and vice versa
(``tests/document/test_cross_backend_verify.py``).

The cache is **opt-in** everywhere (``verify_document(..., cache=…)``):
the trust model is unchanged, and a receiver that does not want to rely
on its own history — an auditor, a portal doing a cold re-check —
simply omits it and gets the original O(n) verification.
"""

from __future__ import annotations

import hashlib
import threading
import xml.etree.ElementTree as ET
from collections import OrderedDict
from dataclasses import dataclass

from ..crypto.pure.rsa import RsaPublicKey
from ..errors import ReproError
from ..xmlsec.canonical import canonicalize

__all__ = ["CacheStats", "VerificationCache"]

#: Domain separator, bumped whenever the key derivation changes so stale
#: persisted keys can never alias a newer scheme.
_KEY_VERSION = b"repro.vcache.v1\x00"


def _sized(chunk: bytes) -> bytes:
    """Length-prefix *chunk* so concatenated fields cannot alias."""
    return len(chunk).to_bytes(8, "big") + chunk


@dataclass
class CacheStats:
    """Counters surfaced through :class:`repro.core.monitor.WorkflowMonitor`."""

    #: A probed signature was found already verified for these exact bytes.
    hits: int = 0
    #: A probed signature needed (or failed) the full cryptographic check.
    misses: int = 0
    #: Fresh verifications recorded into the cache.
    stores: int = 0
    #: Entries dropped — LRU eviction or explicit :meth:`VerificationCache.clear`.
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def snapshot(self) -> dict[str, int | float]:
        """Plain-dict view for monitoring dashboards."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class VerificationCache:
    """Bounded, thread-safe set of successfully verified signature keys.

    Safe to share between components (AEAs, the TFC, portals) and across
    threads: entries are content-addressed facts ("this signature
    verified over exactly these bytes under this key"), never document
    state, so sharing cannot leak one process instance's trust into
    another.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, None] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- key derivation ------------------------------------------------------

    @staticmethod
    def key_for(signature, public_key: RsaPublicKey,
                id_index: dict[str, ET.Element],
                digests: dict[int, bytes] | None = None) -> bytes | None:
        """Content key of *signature* in its current document context.

        Returns ``None`` when the signature cannot be keyed (malformed
        references, missing targets) — such signatures take the full
        verification path, which rejects them with a precise error.

        *digests* is an optional per-verification memo (element identity
        → canonical digest): within one document, predecessor signatures
        are referenced by every successor in the cascade, so memoising
        keeps each element's canonicalization to one per verify pass.
        The memo must never outlive the element tree it indexes.
        """

        def element_digest(element: ET.Element) -> bytes:
            if digests is not None:
                cached = digests.get(id(element))
                if cached is not None:
                    return cached
            digest = hashlib.sha256(canonicalize(element)).digest()
            if digests is not None:
                digests[id(element)] = digest
            return digest

        hasher = hashlib.sha256(_KEY_VERSION)
        n = public_key.n
        hasher.update(_sized(n.to_bytes((n.bit_length() + 7) // 8, "big")))
        hasher.update(_sized(public_key.e.to_bytes(8, "big")))
        try:
            hasher.update(_sized(element_digest(signature.element)))
            referenced = signature.referenced_ids
        except ReproError:
            return None
        for ref_id in referenced:
            target = id_index.get(ref_id)
            if target is None:
                return None
            try:
                hasher.update(element_digest(target))
            except ReproError:
                return None
        return hasher.digest()

    # -- lookup / insert -----------------------------------------------------

    def seen(self, key: bytes) -> bool:
        """Probe for *key*; counts a hit or a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            return False

    def record(self, key: bytes) -> None:
        """Remember a freshly verified key, evicting LRU past the bound."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = None
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.invalidations += 1

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
