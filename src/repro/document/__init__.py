"""DRA4WfMS documents: self-protecting workflow process instances.

The document is the paper's central artifact: an XML file carrying the
signed workflow definition, every activity's element-wise encrypted
execution result, and the cascade of digital signatures that yields
authentication, confidentiality, integrity, and nonrepudiation without
any trusted server.
"""

from .archive import (
    ARCHIVE_FORMAT,
    ArchiveBundle,
    ArchiveVerification,
    build_archive,
    export_archive,
    verify_archive,
)
from .amendments import (
    AddActivity,
    Amendment,
    DelegateActivity,
    GrantReader,
    amendment_cers,
    apply_amendment,
    effective_definition,
    make_amendment_cer,
)
from .builder import (
    INTERMEDIATE_BUNDLE_FIELD,
    build_initial_document,
    make_intermediate_cer,
    make_result_element,
    make_standard_cer,
    make_tfc_cer,
    parse_result_bundle,
    serialize_result_bundle,
)
from .cer import CER, CerKey
from .document import Dra4wfmsDocument, new_process_id
from .nonrepudiation import (
    covers_whole_document,
    frontier_cers,
    nonrepudiation_scope,
    nonrepudiation_scope_ids,
    signature_owner_map,
    signs_relation,
)
from .sections import (
    DESIGNER_ACTIVITY,
    KIND_DEFINITION,
    KIND_INTERMEDIATE,
    KIND_STANDARD,
    KIND_TFC,
)
from .vcache import CacheStats, VerificationCache
from .verify import VerificationReport, verify_document

__all__ = [
    "ARCHIVE_FORMAT",
    "AddActivity",
    "ArchiveBundle",
    "ArchiveVerification",
    "build_archive",
    "export_archive",
    "verify_archive",
    "Amendment",
    "CER",
    "DelegateActivity",
    "GrantReader",
    "amendment_cers",
    "apply_amendment",
    "effective_definition",
    "make_amendment_cer",
    "CerKey",
    "DESIGNER_ACTIVITY",
    "Dra4wfmsDocument",
    "INTERMEDIATE_BUNDLE_FIELD",
    "KIND_DEFINITION",
    "KIND_INTERMEDIATE",
    "KIND_STANDARD",
    "KIND_TFC",
    "CacheStats",
    "VerificationCache",
    "VerificationReport",
    "build_initial_document",
    "covers_whole_document",
    "frontier_cers",
    "make_intermediate_cer",
    "make_result_element",
    "make_standard_cer",
    "make_tfc_cer",
    "new_process_id",
    "nonrepudiation_scope",
    "nonrepudiation_scope_ids",
    "parse_result_bundle",
    "serialize_result_bundle",
    "signature_owner_map",
    "signs_relation",
    "verify_document",
]
