"""Nonrepudiation scopes — Algorithm 1 of the paper.

Each CER has a *nonrepudiation scope* Γ: the set of CERs whose receipt
the signing participant cannot deny, because their signature
(transitively) covers those CERs' signatures.  Algorithm 1 computes Γ as
the closure of the "signs" relation:

    (1) Γ = {α}
    (2) while changes: for each β ∈ Γ, add every CER whose signature β
        signs.

Because every participant signs the signatures of all predecessor
activities (§2.1), and those signed their predecessors in turn, the
scope of the last CER of a terminated process covers the entire
document — the recursive argument of §2.3.2.
"""

from __future__ import annotations

from .cer import CER
from .document import Dra4wfmsDocument
from ..errors import DocumentFormatError

__all__ = [
    "signature_owner_map",
    "signs_relation",
    "nonrepudiation_scope",
    "nonrepudiation_scope_ids",
    "all_scopes",
    "frontier_cers",
    "covers_whole_document",
]


def signature_owner_map(document: Dra4wfmsDocument) -> dict[str, CER]:
    """Map each signature element id to the CER owning it."""
    owners: dict[str, CER] = {}
    for cer in document.cers():
        sid = cer.signature_id
        if sid in owners:
            raise DocumentFormatError(f"duplicate signature id {sid!r}")
        owners[sid] = cer
    return owners


def signs_relation(document: Dra4wfmsDocument) -> dict[str, set[str]]:
    """The direct "signs" relation between CERs.

    Maps each CER id to the ids of the CERs whose *signatures* it
    signs.  References to non-signature elements (the CER's own result,
    timestamp, header…) are not part of the relation.
    """
    owners = signature_owner_map(document)
    relation: dict[str, set[str]] = {}
    for cer in document.cers():
        signed: set[str] = set()
        for ref_id in cer.signed_ids():
            owner = owners.get(ref_id)
            if owner is not None and owner.cer_id != cer.cer_id:
                signed.add(owner.cer_id)
        relation[cer.cer_id] = signed
    return relation


def nonrepudiation_scope(document: Dra4wfmsDocument,
                         alpha: CER) -> list[CER]:
    """Algorithm 1: the nonrepudiation scope Γ of CER *alpha*.

    Returns the CERs (including *alpha* itself, matching step (2) of
    the paper's listing) that *alpha*'s signer is bound to: they cannot
    deny having received a document containing every CER in Γ when they
    produced *alpha*.
    """
    by_id = {cer.cer_id: cer for cer in document.cers()}
    if alpha.cer_id not in by_id:
        raise DocumentFormatError(
            f"CER {alpha.cer_id!r} is not part of this document"
        )
    relation = signs_relation(document)

    gamma: set[str] = {alpha.cer_id}
    changed = True
    while changed:
        changed = False
        for beta_id in list(gamma):
            delta = relation.get(beta_id, set())
            missing = delta - gamma
            if missing:
                gamma |= missing
                changed = True
    # Preserve document order for stable output.
    return [cer for cer in document.cers() if cer.cer_id in gamma]


def nonrepudiation_scope_ids(document: Dra4wfmsDocument,
                             alpha: CER) -> set[str]:
    """Scope as a set of CER ids (cheaper when order is irrelevant)."""
    return {cer.cer_id for cer in nonrepudiation_scope(document, alpha)}


def all_scopes(document: Dra4wfmsDocument) -> dict[str, set[str]]:
    """Nonrepudiation scopes of **every** CER in one pass.

    Computing Algorithm 1 independently per CER re-parses the signs
    relation n times (O(n²) XML walks — measurable on long chains, see
    ``benchmarks/test_verify_scaling.py``).  The relation is a DAG
    (each signature covers only previously-embedded signatures), so all
    closures follow from one relation extraction plus memoised DFS.
    """
    relation = signs_relation(document)
    scopes: dict[str, set[str]] = {}

    def closure(cer_id: str, stack: set[str]) -> set[str]:
        cached = scopes.get(cer_id)
        if cached is not None:
            return cached
        if cer_id in stack:
            # A cycle is impossible for honestly-built documents; fall
            # back to self-only rather than recursing forever on a
            # malicious one (verification rejects it elsewhere).
            return {cer_id}
        stack.add(cer_id)
        gamma = {cer_id}
        for signed_id in relation.get(cer_id, ()):
            gamma |= closure(signed_id, stack)
        stack.discard(cer_id)
        scopes[cer_id] = gamma
        return gamma

    for cer_id in relation:
        closure(cer_id, set())
    return scopes


def frontier_cers(document: Dra4wfmsDocument) -> list[CER]:
    """CERs whose signature no other CER has countersigned yet.

    These are the "latest" results; the next activity's signature must
    cover them to extend the cascade.
    """
    relation = signs_relation(document)
    signed_by_someone: set[str] = set()
    for signed in relation.values():
        signed_by_someone |= signed
    return [
        cer for cer in document.cers()
        if cer.cer_id not in signed_by_someone
    ]


def covers_whole_document(document: Dra4wfmsDocument, alpha: CER) -> bool:
    """True when Γ(alpha) includes every CER of the document.

    For a terminated workflow this holds for the final activity's CER —
    the property §2.3.2 calls "each participant cannot repudiate the
    execution of all his ancestors".
    """
    scope = nonrepudiation_scope_ids(document, alpha)
    return scope == {cer.cer_id for cer in document.cers()}
