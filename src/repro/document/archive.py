"""Cold-verifiable archival bundles for completed process instances.

A retired instance leaves hot storage (see
:meth:`~repro.cloud.pool.DocumentPool.retire`), but the paper's
nonrepudiation promise is long-lived: years later, a court or auditor
must still be able to check every signature with **no** pool, HBase,
or network access.  An :class:`ArchiveBundle` is that sealed evidence
package — one self-contained JSON blob holding

* the full canonical document bytes,
* the sealed manifest (ordered chunk digests + document digest),
* every chunk payload, content-addressed by SHA-256,
* a verification-only trust snapshot (CA public keys + certificates),
* the TFC identities accepted for TFC-signed CERs, if any.

:func:`verify_archive` consumes nothing but the bundle bytes: it
re-hashes every chunk, reassembles the document, cross-checks the
shipped bytes against the assembly and the manifest digest, rebuilds a
verification-only PKI from the embedded trust snapshot, and runs the
full signature-cascade verification.  Anything less than byte-perfect
raises; there is no "partially valid" archive.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field

from ..errors import ArchiveError, ReproError
from .delta import Manifest, assemble, chunk_digest, chunk_document
from .document import Dra4wfmsDocument
from .verify import verify_document

__all__ = [
    "ARCHIVE_FORMAT",
    "ArchiveBundle",
    "ArchiveVerification",
    "build_archive",
    "export_archive",
    "verify_archive",
]

ARCHIVE_FORMAT = "dra4wfms-archive/1"


@dataclass(frozen=True)
class ArchiveBundle:
    """One sealed, self-contained evidence package."""

    process_id: str
    manifest: Manifest
    chunks: dict[str, bytes]
    document: bytes
    trust: dict[str, object]
    tfc_identities: tuple[str, ...] = ()

    def to_bytes(self) -> bytes:
        """Deterministic JSON serialization (sorted keys)."""
        payload = {
            "format": ARCHIVE_FORMAT,
            "process_id": self.process_id,
            "manifest": base64.b64encode(
                self.manifest.to_bytes()
            ).decode("ascii"),
            "chunks": {
                digest: base64.b64encode(data).decode("ascii")
                for digest, data in sorted(self.chunks.items())
            },
            "document": base64.b64encode(self.document).decode("ascii"),
            "trust": self.trust,
            "tfc_identities": sorted(self.tfc_identities),
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArchiveBundle":
        """Parse a serialized bundle (structure only — no verification)."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ArchiveError(f"malformed archive bundle: {exc}") from exc
        if not isinstance(payload, dict):
            raise ArchiveError("malformed archive bundle: not a JSON object")
        if payload.get("format") != ARCHIVE_FORMAT:
            raise ArchiveError(
                f"unsupported archive format {payload.get('format')!r}"
            )
        try:
            manifest = Manifest.from_bytes(
                base64.b64decode(str(payload["manifest"]))
            )
            chunks = {
                str(digest): base64.b64decode(str(encoded))
                for digest, encoded in payload["chunks"].items()
            }
            document = base64.b64decode(str(payload["document"]))
            trust = payload["trust"]
            tfc = tuple(str(t) for t in payload.get("tfc_identities", ()))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ArchiveError(
                f"malformed archive bundle: {exc}"
            ) from exc
        if not isinstance(trust, dict):
            raise ArchiveError(
                "malformed archive bundle: trust snapshot is not an object"
            )
        return cls(
            process_id=str(payload.get("process_id", "")),
            manifest=manifest,
            chunks=chunks,
            document=document,
            trust=trust,
            tfc_identities=tfc,
        )


def build_archive(document: Dra4wfmsDocument, trust,
                  tfc_identities=()) -> ArchiveBundle:
    """Seal *document* into an archival bundle.

    *trust* is either a :class:`~repro.workloads.participants.World`
    (its verification-only public snapshot is embedded — never any
    private key) or an already-public trust dict as produced by
    ``World.to_public_dict()``.
    """
    if hasattr(trust, "to_public_dict"):
        trust = trust.to_public_dict()
    if not isinstance(trust, dict):
        raise ArchiveError(
            "trust must be a World or a public trust snapshot dict"
        )
    manifest, payloads = chunk_document(document)
    return ArchiveBundle(
        process_id=document.process_id,
        manifest=manifest,
        chunks=payloads,
        document=document.to_bytes(),
        trust=trust,
        tfc_identities=tuple(sorted(tfc_identities)),
    )


def export_archive(pool, process_id: str, trust,
                   tfc_identities=()) -> ArchiveBundle:
    """Seal the latest pooled version of *process_id* into a bundle.

    Must run **before** :meth:`~repro.cloud.pool.DocumentPool.retire`
    — afterwards the pool no longer holds the document.
    """
    return build_archive(pool.latest(process_id), trust,
                         tfc_identities=tfc_identities)


@dataclass(frozen=True)
class ArchiveVerification:
    """Outcome of a successful cold verification of a bundle."""

    process_id: str
    chunks_checked: int
    chunk_bytes: int
    doc_bytes: int
    doc_digest: str
    signatures_verified: int
    cers_checked: int
    warnings: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe summary (for the CLI)."""
        return {
            "process_id": self.process_id,
            "chunks_checked": self.chunks_checked,
            "chunk_bytes": self.chunk_bytes,
            "doc_bytes": self.doc_bytes,
            "doc_digest": self.doc_digest,
            "signatures_verified": self.signatures_verified,
            "cers_checked": self.cers_checked,
            "warnings": list(self.warnings),
        }


def verify_archive(data: bytes, backend=None) -> ArchiveVerification:
    """Cold-verify a serialized bundle with no external state.

    Raises on the first failure; returns the verification summary when
    every check passes:

    1. every chunk payload re-hashes to its content address,
    2. the manifest's chunk list is fully covered by the bundle,
    3. reassembly reproduces the manifest's document digest,
    4. the shipped document bytes equal the reassembled bytes,
    5. the embedded trust snapshot rebuilds a verification-only PKI,
    6. the full signature cascade verifies against that PKI.
    """
    from ..workloads.participants import World

    bundle = ArchiveBundle.from_bytes(data)
    manifest = bundle.manifest
    for digest, payload in bundle.chunks.items():
        if chunk_digest(payload) != digest:
            raise ArchiveError(
                f"archived chunk {digest[:12]}… does not hash to its "
                f"content address"
            )
    missing = [d for d in manifest.chunk_digests if d not in bundle.chunks]
    if missing:
        raise ArchiveError(
            f"archive bundle is missing {len(missing)} chunk(s) named "
            f"by its manifest"
        )
    assembled = assemble(manifest, bundle.chunks)
    if assembled != bundle.document:
        raise ArchiveError(
            "archived document bytes differ from the manifest reassembly"
        )
    document = Dra4wfmsDocument.from_bytes(assembled)
    if bundle.process_id and document.process_id != bundle.process_id:
        raise ArchiveError(
            f"bundle names process {bundle.process_id!r} but the "
            f"document belongs to {document.process_id!r}"
        )
    try:
        world = World.from_public_dict(bundle.trust, backend=backend)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ArchiveError(
            f"embedded trust snapshot is unusable: {exc}"
        ) from exc
    tfc = set(bundle.tfc_identities) if bundle.tfc_identities else None
    report = verify_document(document, world.directory, backend=backend,
                             tfc_identities=tfc)
    return ArchiveVerification(
        process_id=document.process_id,
        chunks_checked=len(bundle.chunks),
        chunk_bytes=sum(len(c) for c in bundle.chunks.values()),
        doc_bytes=len(assembled),
        doc_digest=manifest.doc_digest,
        signatures_verified=report.signatures_verified,
        cers_checked=report.cers_checked,
        warnings=list(report.warnings),
    )
