"""Structure constants and id conventions for DRA4WfMS documents.

A DRA4WfMS document (paper Fig. 8) has three sections::

    <DRA4WfMSDocument Version="1.0">
      <Header Id="hdr" ProcessId="…" ProcessName="…" CreatedAt="…"/>
      <ApplicationDefinition>
        <WorkflowDefinitionSection Id="wfdef"> …definition… </…>
        <Signature Id="sig-def"> …designer's signature… </Signature>
      </ApplicationDefinition>
      <ActivityExecutionResults>
        <CER …/> <CER …/> …
      </ActivityExecutionResults>
    </DRA4WfMSDocument>

Every signable element carries an ``Id`` attribute; the deterministic id
scheme below is what lets a verifier reconstruct which element each
signature *must* reference.
"""

from __future__ import annotations

__all__ = [
    "DOC_TAG", "HEADER_TAG", "APPDEF_TAG", "WFDEF_TAG", "RESULTS_TAG",
    "CER_TAG", "RESULT_TAG", "TIMESTAMP_TAG",
    "HEADER_ID", "WFDEF_ID", "DESIGNER_SIG_ID", "DESIGNER_ACTIVITY",
    "KIND_DEFINITION", "KIND_STANDARD", "KIND_INTERMEDIATE", "KIND_TFC",
    "cer_id", "result_id", "signature_id", "timestamp_id", "field_id",
]

DOC_TAG = "DRA4WfMSDocument"
HEADER_TAG = "Header"
APPDEF_TAG = "ApplicationDefinition"
WFDEF_TAG = "WorkflowDefinitionSection"
RESULTS_TAG = "ActivityExecutionResults"
CER_TAG = "CER"
RESULT_TAG = "ExecutionResult"
TIMESTAMP_TAG = "Timestamp"

HEADER_ID = "hdr"
WFDEF_ID = "wfdef"
DESIGNER_SIG_ID = "sig-def"

#: Pseudo activity id for the workflow designer's CER (the paper's A0).
DESIGNER_ACTIVITY = "__designer__"

KIND_DEFINITION = "definition"
#: Basic operational model: produced directly by the participant's AEA.
KIND_STANDARD = "standard"
#: Advanced model: the AEA's result encrypted to the TFC server.
KIND_INTERMEDIATE = "intermediate"
#: Advanced model: the TFC server's re-encrypted, timestamped CER.
KIND_TFC = "tfc"

_KIND_PREFIX = {
    KIND_STANDARD: "",
    KIND_INTERMEDIATE: "it",
    KIND_TFC: "tfc",
}


def cer_id(kind: str, activity_id: str, iteration: int) -> str:
    """Deterministic id of a CER element."""
    return f"cer{_KIND_PREFIX[kind]}-{activity_id}-{iteration}"


def result_id(kind: str, activity_id: str, iteration: int) -> str:
    """Deterministic id of an ExecutionResult element."""
    return f"res{_KIND_PREFIX[kind]}-{activity_id}-{iteration}"


def signature_id(kind: str, activity_id: str, iteration: int) -> str:
    """Deterministic id of a CER's Signature element."""
    return f"sig{_KIND_PREFIX[kind]}-{activity_id}-{iteration}"


def timestamp_id(activity_id: str, iteration: int) -> str:
    """Deterministic id of a TFC Timestamp element."""
    return f"ts-{activity_id}-{iteration}"


def field_id(kind: str, activity_id: str, iteration: int, name: str) -> str:
    """Deterministic id of one encrypted field inside an ExecutionResult."""
    return f"enc{_KIND_PREFIX[kind]}-{activity_id}-{iteration}-{name}"
