"""Constructing DRA4WfMS documents and CER elements.

Two layers of factories live here:

* :func:`build_initial_document` — what the workflow *designer* runs
  once: serialize the definition (optionally element-wise encrypted),
  embed it in a fresh document, and sign it (the paper's
  ``X''_A0 = [{Def}_ee, {{Def}_ee}_Pri(A0)]``).
* ``make_*_cer`` — the raw element factories used by the AEA and the
  TFC server to append execution results with cascaded signatures.
"""

from __future__ import annotations

import time as _time
import xml.etree.ElementTree as ET
from typing import Callable, Mapping

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pure.rsa import RsaPublicKey
from ..errors import DocumentFormatError
from ..model.definition import WorkflowDefinition
from ..model.validate import validate_definition
from ..model.xpdl import definition_to_xml
from ..xmlsec.canonical import canonicalize
from ..xmlsec.xmldsig import sign_references
from ..xmlsec.xmlenc import encrypt_value
from .cer import CER
from .document import Dra4wfmsDocument, new_process_id
from .sections import (
    APPDEF_TAG,
    CER_TAG,
    DESIGNER_ACTIVITY,
    DESIGNER_SIG_ID,
    DOC_TAG,
    HEADER_ID,
    HEADER_TAG,
    KIND_DEFINITION,
    KIND_INTERMEDIATE,
    KIND_STANDARD,
    KIND_TFC,
    RESULT_TAG,
    RESULTS_TAG,
    TIMESTAMP_TAG,
    WFDEF_ID,
    WFDEF_TAG,
    cer_id,
    field_id,
    result_id,
    signature_id,
    timestamp_id,
)

__all__ = [
    "build_initial_document",
    "make_result_element",
    "make_standard_cer",
    "make_intermediate_cer",
    "make_tfc_cer",
    "serialize_result_bundle",
    "parse_result_bundle",
    "INTERMEDIATE_BUNDLE_FIELD",
]

#: Field name of the TFC-addressed bundle inside an intermediate CER.
INTERMEDIATE_BUNDLE_FIELD = "__bundle__"


def build_initial_document(
    definition: WorkflowDefinition,
    designer: KeyPair,
    process_id: str | None = None,
    encrypt_definition_for: Mapping[str, RsaPublicKey] | None = None,
    backend: CryptoBackend | None = None,
    created_at: float | None = None,
) -> Dra4wfmsDocument:
    """Create and sign the secured initial DRA4WfMS document.

    Parameters
    ----------
    definition:
        The workflow definition; validated before signing.
    designer:
        The designer's key pair.  Its identity must match
        ``definition.designer`` — a definition signed by someone else
        would be rejected by every AEA anyway.
    process_id:
        Unique instance id; generated when omitted.
    encrypt_definition_for:
        When given, the definition XML is element-wise encrypted to
        exactly these readers (identity → public key).  Omit for a
        plaintext (but still signed) definition.
    """
    backend = backend or default_backend()
    validate_definition(definition)
    if designer.identity != definition.designer:
        raise DocumentFormatError(
            f"definition names designer {definition.designer!r} but the "
            f"signing key belongs to {designer.identity!r}"
        )

    root = ET.Element(DOC_TAG, {"Version": "1.0"})
    header = ET.SubElement(root, HEADER_TAG, {
        "Id": HEADER_ID,
        "ProcessId": process_id or new_process_id(),
        "ProcessName": definition.process_name,
        "CreatedAt": repr(created_at if created_at is not None else _time.time()),
    })

    appdef = ET.SubElement(root, APPDEF_TAG)
    def_cer = ET.SubElement(appdef, CER_TAG, {
        "Id": "cer-def",
        "Kind": KIND_DEFINITION,
        "Activity": DESIGNER_ACTIVITY,
        "Iteration": "0",
        "Participant": designer.identity,
    })
    section = ET.SubElement(def_cer, WFDEF_TAG, {"Id": WFDEF_ID})
    def_xml = definition_to_xml(definition)
    if encrypt_definition_for:
        section.append(encrypt_value(
            element_id="enc-wfdef",
            name="WorkflowDefinition",
            plaintext=canonicalize(def_xml),
            recipients=dict(encrypt_definition_for),
            backend=backend,
        ))
    else:
        section.append(def_xml)

    # The designer signs the definition section *and* the header, binding
    # the unique process id to the definition (replay resistance).
    signature = sign_references(
        signature_id=DESIGNER_SIG_ID,
        signer=designer.identity,
        private_key=designer.private_key,
        targets=[section, header],
        backend=backend,
    )
    def_cer.append(signature.element)

    ET.SubElement(root, RESULTS_TAG)
    return Dra4wfmsDocument(root)


def make_result_element(
    kind: str,
    activity_id: str,
    iteration: int,
    values: Mapping[str, str],
    readers_for: Callable[[str], Mapping[str, RsaPublicKey]],
    backend: CryptoBackend | None = None,
) -> ET.Element:
    """Build an ``<ExecutionResult>`` with element-wise encrypted fields.

    *readers_for* maps a field name to its authorised readers
    (identity → public key) — the policy resolution happens in the
    caller (AEA in the basic model, TFC server in the advanced model).
    """
    backend = backend or default_backend()
    result = ET.Element(RESULT_TAG, {
        "Id": result_id(kind, activity_id, iteration),
    })
    for name in sorted(values):
        recipients = readers_for(name)
        result.append(encrypt_value(
            element_id=field_id(kind, activity_id, iteration, name),
            name=name,
            plaintext=values[name].encode("utf-8"),
            recipients=dict(recipients),
            backend=backend,
        ))
    return result


def _make_cer(
    kind: str,
    activity_id: str,
    iteration: int,
    participant: KeyPair,
    result: ET.Element,
    predecessor_signatures: list[ET.Element],
    backend: CryptoBackend | None,
    timestamp: float | None = None,
) -> CER:
    element = ET.Element(CER_TAG, {
        "Id": cer_id(kind, activity_id, iteration),
        "Kind": kind,
        "Activity": activity_id,
        "Iteration": str(iteration),
        "Participant": participant.identity,
    })
    element.append(result)
    targets = [result]
    if timestamp is not None:
        ts = ET.SubElement(element, TIMESTAMP_TAG, {
            "Id": timestamp_id(activity_id, iteration),
            "Time": repr(timestamp),
        })
        targets.append(ts)
    targets.extend(predecessor_signatures)
    signature = sign_references(
        signature_id=signature_id(kind, activity_id, iteration),
        signer=participant.identity,
        private_key=participant.private_key,
        targets=targets,
        backend=backend,
    )
    element.append(signature.element)
    return CER(element)


def make_standard_cer(
    activity_id: str,
    iteration: int,
    participant: KeyPair,
    values: Mapping[str, str],
    readers_for: Callable[[str], Mapping[str, RsaPublicKey]],
    predecessor_signatures: list[ET.Element],
    backend: CryptoBackend | None = None,
) -> CER:
    """Basic-model CER: encrypted result + cascade signature (§2.1).

    The signature covers the new execution result *and* the signature
    elements of every predecessor —
    ``[{R_Aq}_ee, Sig(X''_Ap1), …, Sig(X''_Apn)]_Pri(Aq)``.
    """
    backend = backend or default_backend()
    result = make_result_element(
        KIND_STANDARD, activity_id, iteration, values, readers_for, backend
    )
    return _make_cer(
        KIND_STANDARD, activity_id, iteration, participant, result,
        predecessor_signatures, backend,
    )


def serialize_result_bundle(values: Mapping[str, str]) -> bytes:
    """Canonical byte encoding of a raw execution result (TFC transport)."""
    bundle = ET.Element("Result")
    for name in sorted(values):
        node = ET.SubElement(bundle, "Field", {"Name": name})
        node.text = values[name]
    return canonicalize(bundle)


def parse_result_bundle(data: bytes) -> dict[str, str]:
    """Inverse of :func:`serialize_result_bundle`."""
    from ..xmlsec.canonical import parse_xml

    bundle = parse_xml(data)
    if bundle.tag != "Result":
        raise DocumentFormatError("malformed result bundle")
    return {
        node.get("Name", ""): node.text or ""
        for node in bundle.findall("Field")
    }


def make_intermediate_cer(
    activity_id: str,
    iteration: int,
    participant: KeyPair,
    values: Mapping[str, str],
    tfc_identity: str,
    tfc_public_key: RsaPublicKey,
    predecessor_signatures: list[ET.Element],
    backend: CryptoBackend | None = None,
) -> CER:
    """Advanced-model intermediate CER (§2.2).

    The raw execution result is encrypted *to the TFC server only*
    (``{R_Aq}_P(TFC)``) because the participant may not know — or may
    not be allowed to know — the correct element-wise reader sets.
    """
    backend = backend or default_backend()
    result = ET.Element(RESULT_TAG, {
        "Id": result_id(KIND_INTERMEDIATE, activity_id, iteration),
    })
    result.append(encrypt_value(
        element_id=field_id(KIND_INTERMEDIATE, activity_id, iteration,
                            INTERMEDIATE_BUNDLE_FIELD),
        name=INTERMEDIATE_BUNDLE_FIELD,
        plaintext=serialize_result_bundle(values),
        recipients={tfc_identity: tfc_public_key},
        backend=backend,
    ))
    return _make_cer(
        KIND_INTERMEDIATE, activity_id, iteration, participant, result,
        predecessor_signatures, backend,
    )


def make_tfc_cer(
    activity_id: str,
    iteration: int,
    tfc: KeyPair,
    values: Mapping[str, str],
    readers_for: Callable[[str], Mapping[str, RsaPublicKey]],
    intermediate_signature: ET.Element,
    timestamp: float,
    backend: CryptoBackend | None = None,
) -> CER:
    """Advanced-model final CER produced by the TFC server (§2.2).

    ``[{R_Aq}_ee, t, Sig(X_Aq^it)]_Pri(TFC)`` — the TFC signs the
    re-encrypted result, its timestamp, and the participant's
    intermediate signature, chaining the cascade through itself.
    """
    backend = backend or default_backend()
    result = make_result_element(
        KIND_TFC, activity_id, iteration, values, readers_for, backend
    )
    return _make_cer(
        KIND_TFC, activity_id, iteration, tfc, result,
        [intermediate_signature], backend, timestamp=timestamp,
    )
