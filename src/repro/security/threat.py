"""Threat model for the cross-enterprise WfMS comparison.

Paper §1 enumerates the adversaries a cloud-hosted WfMS faces; the
attack harness instantiates each capability against all three
architectures (centralized engine, distributed engines, DRA4WfMS) so
the security claims become executable assertions rather than prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Capability", "Adversary", "AttackOutcome"]


class Capability(enum.Enum):
    """What an adversary can do."""

    #: Read traffic on the public network between sites.
    EAVESDROP_NETWORK = "eavesdrop-network"
    #: Modify traffic on the public network (man in the middle).
    ALTER_NETWORK = "alter-network"
    #: Administrator access to a server's storage and logs (the cloud
    #: provider's superuser, §1).
    SUPERUSER_STORAGE = "superuser-storage"
    #: Re-send previously captured messages (replay).
    REPLAY = "replay"
    #: A *legitimate participant* lying about their own past actions.
    REPUDIATE = "repudiate"


@dataclass(frozen=True)
class Adversary:
    """A named adversary with a capability set."""

    name: str
    capabilities: frozenset[Capability]

    def can(self, capability: Capability) -> bool:
        """Capability check."""
        return capability in self.capabilities


#: The network attacker of §1 ("eavesdropped … intercept the process
#: instances and then alter their contents").
NETWORK_ATTACKER = Adversary(
    "network-attacker",
    frozenset({Capability.EAVESDROP_NETWORK, Capability.ALTER_NETWORK,
               Capability.REPLAY}),
)

#: The cloud/DB administrator ("the associated existence of superusers
#: represents a serious threat").
MALICIOUS_ADMIN = Adversary(
    "malicious-admin",
    frozenset({Capability.SUPERUSER_STORAGE}),
)

#: A dishonest participant trying to deny their own execution (§1).
REPUDIATING_PARTICIPANT = Adversary(
    "repudiating-participant",
    frozenset({Capability.REPUDIATE}),
)


@dataclass(frozen=True)
class AttackOutcome:
    """Result of running one attack against one system."""

    attack: str
    system: str
    #: Did the adversary achieve their goal?  For integrity attacks:
    #: the alteration was accepted / went unnoticed.  For
    #: confidentiality: the plaintext was disclosed.  For repudiation:
    #: the denial could not be rebutted.
    succeeded: bool
    #: Did the system (or any honest offline verifier) detect it?
    detected: bool
    detail: str

    @property
    def secure(self) -> bool:
        """The system behaved securely against this attack."""
        return not self.succeeded
