"""Security evaluation: threat model and executable attacks.

Turns the paper's §1 security arguments into runnable experiments: the
same adversary capabilities are exercised against the centralized
engine, the distributed engines, and DRA4WfMS.
"""

from .attacks import (
    AttackSuite,
    eavesdrop_distributed,
    eavesdrop_dra_field,
    mitm_distributed,
    repudiate_centralized,
    repudiate_dra_execution,
    rollback_dra_document,
    superuser_tamper_centralized,
    swap_dra_ciphertexts,
    tamper_dra_field,
)
from .threat import (
    MALICIOUS_ADMIN,
    NETWORK_ATTACKER,
    REPUDIATING_PARTICIPANT,
    Adversary,
    AttackOutcome,
    Capability,
)

__all__ = [
    "Adversary",
    "AttackOutcome",
    "AttackSuite",
    "Capability",
    "MALICIOUS_ADMIN",
    "NETWORK_ATTACKER",
    "REPUDIATING_PARTICIPANT",
    "eavesdrop_distributed",
    "eavesdrop_dra_field",
    "mitm_distributed",
    "repudiate_centralized",
    "repudiate_dra_execution",
    "rollback_dra_document",
    "superuser_tamper_centralized",
    "swap_dra_ciphertexts",
    "tamper_dra_field",
]
